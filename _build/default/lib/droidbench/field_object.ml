(** DROIDBENCH category "Field and Object Sensitivity": the cases that
    separate whole-object taint models from access-path-based ones,
    and context-insensitive heap models from object-sensitive ones. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

let datacls = "de.ecspride.DataStore"
let f_secret = B.fld ~ty:str_t datacls "secret"
let f_pub = B.fld ~ty:str_t datacls "publicData"

let data_store =
  B.cls datacls
    ~fields:[ ("secret", str_t); ("publicData", str_t) ]
    [
      B.meth "<init>" (fun m ->
          let this = B.this m in
          B.store m this f_pub (B.s "public"));
      B.meth "setSecret" ~params:[ str_t ] (fun m ->
          let this = B.this m in
          let p = B.param m 0 "p" in
          B.store m this f_secret (B.v p));
      B.meth "getSecret" ~ret:str_t (fun m ->
          let this = B.this m in
          let r = B.local m "r" in
          B.load m r this f_secret;
          B.retv m (B.v r));
      B.meth "getPublic" ~ret:str_t (fun m ->
          let this = B.this m in
          let r = B.local m "r" in
          B.load m r this f_pub;
          B.retv m (B.v r));
    ]

(* FieldSensitivity1: taint one field, leak the other (directly).
   No leak. *)
let field_sensitivity1 =
  let cls = "de.ecspride.FieldSensitivity1" in
  make "FieldSensitivity1" ~category:"Field and Object Sensitivity"
    ~comment:"Taint ds.secret, leak ds.publicData: field-insensitive \
              (whole-object) models report a false positive."
    ~expected:[]
    (activity_app "FieldSensitivity1" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let ds = B.local m "ds" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m ds datacls [];
                 get_imei m imei;
                 B.store m ds f_secret (B.v imei);
                 B.load m out ds f_pub;
                 send_sms m (B.v out));
           ];
       ])

(* FieldSensitivity2: same but through setter/getter methods.
   No leak. *)
let field_sensitivity2 =
  let cls = "de.ecspride.FieldSensitivity2" in
  make "FieldSensitivity2" ~category:"Field and Object Sensitivity"
    ~comment:"Setter taints one field; the getter for the other field \
              is leaked: needs interprocedural field sensitivity."
    ~expected:[]
    (activity_app "FieldSensitivity2" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let ds = B.local m "ds" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m ds datacls [];
                 get_imei m imei;
                 B.vcall m ds datacls "setSecret" [ B.v imei ];
                 B.vcall m ~ret:out ds datacls "getPublic" [];
                 send_sms m (B.v out));
           ];
       ])

(* FieldSensitivity3: taint and leak the same field (directly).
   1 leak. *)
let field_sensitivity3 =
  let cls = "de.ecspride.FieldSensitivity3" in
  make "FieldSensitivity3" ~category:"Field and Object Sensitivity"
    ~comment:"The tainted field itself is leaked: the true-positive \
              control for the category."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "FieldSensitivity3" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let ds = B.local m "ds" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m ds datacls [];
                 get_imei m imei;
                 B.store m ds f_secret (B.v imei);
                 B.load m out ds f_secret;
                 send_sms m (B.v out));
           ];
       ])

(* FieldSensitivity4: taint and leak the same field through accessor
   methods. 1 leak. *)
let field_sensitivity4 =
  let cls = "de.ecspride.FieldSensitivity4" in
  make "FieldSensitivity4" ~category:"Field and Object Sensitivity"
    ~comment:"Setter/getter round trip of the tainted field."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "FieldSensitivity4" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let ds = B.local m "ds" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m ds datacls [];
                 get_imei m imei;
                 B.vcall m ds datacls "setSecret" [ B.v imei ];
                 B.vcall m ~ret:out ds datacls "getSecret" [];
                 send_sms m (B.v out));
           ];
       ])

(* InheritedObjects1: virtual dispatch decides whether the returned
   value is tainted; with the concrete type created it is. 1 leak. *)
let inherited_objects1 =
  let cls = "de.ecspride.InheritedObjects1" in
  let base = "de.ecspride.General" in
  let varA = "de.ecspride.VarA" in
  let varB = "de.ecspride.VarB" in
  make "InheritedObjects1" ~category:"Field and Object Sensitivity"
    ~comment:"The runtime type (VarA, which leaks) is chosen by a \
              condition; the call goes through the superclass type."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "InheritedObjects1" cls
       [
         B.cls base [ B.meth "getInfo" ~ret:str_t (fun m ->
             let _ = B.this m in
             let r = B.local m "r" in
             B.const m r (B.s "generic");
             B.retv m (B.v r)) ];
         B.cls varA ~super:base
           [
             B.meth "getInfo" ~ret:str_t (fun m ->
                 let _ = B.this m in
                 let r = B.local m "r" in
                 get_imei m r;
                 B.retv m (B.v r));
           ];
         B.cls varB ~super:base
           [
             B.meth "getInfo" ~ret:str_t (fun m ->
                 let _ = B.this m in
                 let r = B.local m "r" in
                 B.const m r (B.s "harmless");
                 B.retv m (B.v r));
           ];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let g = B.local m "g" ~ty:(T.Ref base) in
                 let cond = B.local m "cond" ~ty:T.Int in
                 let out = B.local m "out" in
                 B.binop m cond "+" (B.i 1) (B.i 1);
                 B.ifgoto m (B.v cond) Stmt.Ceq (B.i 0) "elseB";
                 B.newc m g varA [];
                 B.goto m "call";
                 B.label m "elseB";
                 B.newc m g varB [];
                 B.label m "call";
                 B.vcall m ~ret:out g base "getInfo" [];
                 send_sms m (B.v out));
           ];
       ])

(* ObjectSensitivity1: two distinct instances; the clean one is leaked.
   No leak. *)
let object_sensitivity1 =
  let cls = "de.ecspride.ObjectSensitivity1" in
  make "ObjectSensitivity1" ~category:"Field and Object Sensitivity"
    ~comment:"ds1.secret is tainted; ds2.secret is leaked: allocation \
              sites must stay apart."
    ~expected:[]
    (activity_app "ObjectSensitivity1" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let d1 = B.local m "d1" ~ty:(T.Ref datacls) in
                 let d2 = B.local m "d2" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m d1 datacls [];
                 B.newc m d2 datacls [];
                 get_imei m imei;
                 B.store m d1 f_secret (B.v imei);
                 B.load m out d2 f_secret;
                 send_sms m (B.v out));
           ];
       ])

(* ObjectSensitivity2: both instances flow through the same setter
   (one tainted, one clean); the clean one is leaked.  This is the
   Listing 2 situation: context injection must keep the contexts
   apart.  No leak. *)
let object_sensitivity2 =
  let cls = "de.ecspride.ObjectSensitivity2" in
  make "ObjectSensitivity2" ~category:"Field and Object Sensitivity"
    ~comment:"Both objects pass through the same setter under \
              different contexts; a context-insensitive heap merges \
              them (the Listing 2 false positive)."
    ~expected:[]
    (activity_app "ObjectSensitivity2" cls
       [
         data_store;
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let d1 = B.local m "d1" ~ty:(T.Ref datacls) in
                 let d2 = B.local m "d2" ~ty:(T.Ref datacls) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m d1 datacls [];
                 B.newc m d2 datacls [];
                 get_imei m imei;
                 B.vcall m d1 datacls "setSecret" [ B.v imei ];
                 B.vcall m d2 datacls "setSecret" [ B.s "clean" ];
                 B.vcall m ~ret:out d2 datacls "getSecret" [];
                 send_sms m (B.v out));
           ];
       ])

let all =
  [
    field_sensitivity1; field_sensitivity2; field_sensitivity3;
    field_sensitivity4; inherited_objects1; object_sensitivity1;
    object_sensitivity2;
  ]
