lib/droidbench/bench_app.ml: Build Fd_frontend Fd_ir Types
