lib/droidbench/callbacks_apps.ml: Bench_app Build Fd_frontend Fd_ir List Types
