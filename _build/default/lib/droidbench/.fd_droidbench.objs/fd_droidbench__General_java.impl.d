lib/droidbench/general_java.ml: Bench_app Build Fd_ir Stmt Types
