lib/droidbench/field_object.ml: Bench_app Build Fd_ir Stmt Types
