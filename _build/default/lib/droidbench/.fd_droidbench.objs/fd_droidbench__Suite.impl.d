lib/droidbench/suite.ml: Arrays Bench_app Callbacks_apps Extensions Field_object General_java Implicit_flows Interapp Lifecycle_apps List Misc_apps
