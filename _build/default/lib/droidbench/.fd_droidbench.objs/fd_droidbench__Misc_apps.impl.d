lib/droidbench/misc_apps.ml: Bench_app Build Fd_frontend Fd_ir Types
