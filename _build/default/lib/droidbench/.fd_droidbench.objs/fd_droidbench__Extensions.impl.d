lib/droidbench/extensions.ml: Bench_app Build Fd_frontend Fd_ir Types
