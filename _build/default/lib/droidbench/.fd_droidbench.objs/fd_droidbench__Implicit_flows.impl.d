lib/droidbench/implicit_flows.ml: Bench_app Build Fd_ir Stmt Types
