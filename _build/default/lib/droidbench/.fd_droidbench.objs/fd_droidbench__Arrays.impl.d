lib/droidbench/arrays.ml: Bench_app Build Fd_ir Types
