lib/droidbench/lifecycle_apps.ml: Bench_app Build Fd_frontend Fd_ir Printf Stmt Types
