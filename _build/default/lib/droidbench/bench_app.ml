(** Benchmark-app infrastructure for the DROIDBENCH reproduction.

    Each benchmark is an in-memory APK plus its ground truth: the
    source/sink statement-tag pairs a correct analysis should report.
    The evaluation harness (Fd_eval) runs the engines and scores
    findings against these expectations.

    Ground-truth convention: source statements carry tags starting
    with ["src"], sink statements tags starting with ["sink"]; an
    expectation names the pair (the source side is optional for
    parameter sources whose identity statements are synthesised). *)

open Fd_ir
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

type expectation = {
  exp_src : string option;  (** source tag; [None] matches any source *)
  exp_sink : string;  (** sink tag *)
}

type t = {
  app_name : string;
  app_category : string;
  app_apk : Apk.t;
  app_expected : expectation list;
  app_comment : string;  (** the analysis challenge this case poses *)
  app_excluded : bool;
      (** excluded from Table 1 scoring — the implicit-flow cases the
          paper's footnote 1 sets aside ("none of the tools, including
          FlowDroid, was designed to analyze such flows") *)
}

let expect ?src sink = { exp_src = src; exp_sink = sink }

(** [make name ~category ~comment ~expected apk] assembles a benchmark
    case. *)
let make name ~category ~comment ~expected ?(excluded = false) apk =
  { app_name = name; app_category = category; app_apk = apk;
    app_expected = expected; app_comment = comment; app_excluded = excluded }

(** [activity_app name cls ?extra ?layouts classes] bundles an APK with
    a single launcher activity [cls] (plus [extra] components). *)
let activity_app name cls ?(extra = []) ?(layouts = []) classes =
  let manifest =
    Apk.simple_manifest ~package:"de.ecspride"
      ((FW.Activity, cls, []) :: extra)
  in
  Apk.make name ~manifest ~layouts classes

(* ---------------- code-emission helpers ---------------- *)

let str_t = T.Ref "java.lang.String"

(** [get_imei m ~tag ret] emits the canonical IMEI source:
    [tm = new TelephonyManager; ret = tm.getDeviceId()]. *)
let get_imei m ?(tag = "src-imei") ret =
  let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag ~ret tm "android.telephony.TelephonyManager" "getDeviceId" []

(** [send_sms m ~tag data] emits the SMS sink. *)
let send_sms m ?(tag = "sink-sms") data =
  let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
  B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
  B.vcall m ~tag sms "android.telephony.SmsManager" "sendTextMessage"
    [ B.s "+49 1234"; B.nul; data; B.nul; B.nul ]

(** [log m ~tag data] emits the logging sink. *)
let log m ?(tag = "sink-log") data =
  B.scall m ~tag "android.util.Log" "i" [ B.s "TAG"; data ]

(** [write_file m ~tag data] emits the file-write sink. *)
let write_file m ?(tag = "sink-file") data =
  let fos = B.local m "fos" ~ty:(T.Ref "java.io.FileOutputStream") in
  B.newc m fos "java.io.FileOutputStream" [ B.s "out.bin" ];
  B.vcall m ~tag fos "java.io.FileOutputStream" "write" [ data ]

(** [on_create ?extra body] declares an [onCreate(Bundle)] that binds
    [this] and the bundle and then runs [body this]. *)
let on_create ?(params_used = false) body =
  B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
      let this = B.this m in
      let b = B.param m 0 "savedState" in
      if not params_used then ignore b;
      body m this)

(** [simple_lifecycle_meth name body] declares a no-argument lifecycle
    method. *)
let simple_lifecycle_meth name body =
  B.meth name (fun m ->
      let this = B.this m in
      body m this)
