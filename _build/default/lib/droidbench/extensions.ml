(** DROIDBENCH extension cases.

    The paper reports external groups contributing further micro
    benchmarks to the suite (Section 6.1); this category collects the
    kinds of cases that landed after 1.0, plus corners of this
    implementation worth pinning.  They are kept outside Table 1's
    scoring (the paper evaluates version 1.0) and exercised by their
    own tests and benchmarks. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types
module FW = Fd_frontend.Framework

let ext = "Extensions"

(* deep nested field chains with a clean sibling *)
let field_sensitivity5 =
  let cls = "ext.FieldSensitivity5" in
  let node = "ext.FS5Node" in
  let fa = B.fld ~ty:(T.Ref node) node "a" in
  let fb = B.fld ~ty:str_t node "b" in
  let fc = B.fld ~ty:str_t node "c" in
  make "FieldSensitivity5" ~category:ext ~excluded:true
    ~comment:"three-level path o.a.a.b tainted; sibling o.a.a.c clean"
    ~expected:[ expect ~src:"src-imei" "sink-deep" ]
    (activity_app "FieldSensitivity5" cls
       [
         B.cls node ~fields:[ ("a", T.Ref node); ("b", str_t); ("c", str_t) ] [];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let o = B.local m "o" and m1 = B.local m "m1" and m2 = B.local m "m2" in
                 let x = B.local m "x" in
                 let r1 = B.local m "r1" and r2 = B.local m "r2" in
                 let vb = B.local m "vb" and vc = B.local m "vc" in
                 B.newobj m o node;
                 B.newobj m m1 node;
                 B.newobj m m2 node;
                 B.store m o fa (B.v m1);
                 B.store m m1 fa (B.v m2);
                 get_imei m x;
                 B.store m m2 fb (B.v x);
                 B.store m m2 fc (B.s "clean");
                 B.load m r1 o fa;
                 B.load m r2 r1 fa;
                 B.load m vb r2 fb;
                 send_sms m ~tag:"sink-deep" (B.v vb);
                 B.load m vc r2 fc;
                 send_sms m ~tag:"sink-clean" (B.v vc));
           ];
       ])

(* objects from a shared factory; only one instance is tainted *)
let object_sensitivity3 =
  let cls = "ext.ObjectSensitivity3" in
  let node = "ext.OS3Box" in
  let fv = B.fld ~ty:str_t node "v" in
  make "ObjectSensitivity3" ~category:ext ~excluded:true
    ~comment:"factory-created siblings must not merge"
    ~expected:[]
    (activity_app "ObjectSensitivity3" cls
       [
         B.cls node ~fields:[ ("v", str_t) ] [];
         B.cls "ext.OS3Factory"
           [
             B.meth "mk" ~static:true ~ret:(T.Ref node) (fun m ->
                 let n = B.local m "n" ~ty:(T.Ref node) in
                 B.newobj m n node;
                 B.retv m (B.v n));
           ];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let a = B.local m "a" ~ty:(T.Ref node) in
                 let b = B.local m "b" ~ty:(T.Ref node) in
                 let x = B.local m "x" and out = B.local m "out" in
                 B.scall m ~ret:a "ext.OS3Factory" "mk" [];
                 B.scall m ~ret:b "ext.OS3Factory" "mk" [];
                 get_imei m x;
                 B.store m a fv (B.v x);
                 B.load m out b fv;
                 send_sms m (B.v out));
           ];
       ])

(* a leak placed after an unconditional throw: dead at runtime *)
let exceptions1 =
  let cls = "ext.Exceptions1" in
  make "Exceptions1" ~category:ext ~excluded:true
    ~comment:"the sink sits behind an unconditional throw"
    ~expected:[]
    (activity_app "Exceptions1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let x = B.local m "x" and e = B.local m "e" in
                 get_imei m x;
                 B.newc m e "java.lang.RuntimeException" [];
                 B.throw m (B.v e);
                 send_sms m (B.v x));
           ];
       ])

(* registration later removed: the over-approximation keeps the leak *)
let location_leak3 =
  let cls = "ext.LocationLeak3" in
  make "LocationLeak3" ~category:ext ~excluded:true
    ~comment:"listener unregistered again; the analysis soundly keeps \
              the callback"
    ~expected:[ expect "sink-log" ]
    (activity_app "LocationLeak3" cls
       [
         B.cls cls ~super:"android.app.Activity"
           ~interfaces:[ "android.location.LocationListener" ]
           ~fields:[ ("lat", str_t) ]
           [
             on_create (fun m this ->
                 let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
                 B.newobj m lm "android.location.LocationManager";
                 B.vcall m lm "android.location.LocationManager"
                   "requestLocationUpdates" [ B.v this ];
                 B.vcall m lm "android.location.LocationManager" "removeUpdates"
                   [ B.v this ]);
             B.meth "onLocationChanged"
               ~params:[ T.Ref "android.location.Location" ] (fun m ->
                 let this = B.this m in
                 let loc = B.param m 0 ~tag:"src-loc" "loc" in
                 let lat = B.local m "lat" in
                 B.vcall m ~ret:lat loc "android.location.Location"
                   "getLatitude" [];
                 B.store m this (B.fld cls "lat") (B.v lat));
             simple_lifecycle_meth "onStop" (fun m this ->
                 let v = B.local m "v" in
                 B.load m v this (B.fld cls "lat");
                 log m (B.v v));
           ];
       ])

(* reflection with a constant method name: a documented miss of this
   reproduction (FlowDroid resolves constant-string reflection; we do
   not implement reflective call edges at all) *)
let reflection1 =
  let cls = "ext.Reflection1" in
  make "Reflection1" ~category:ext ~excluded:true
    ~comment:"constant-string reflective sink invocation — a known \
              gap of this reproduction (DESIGN.md limitations)"
    ~expected:[ expect ~src:"src-imei" "sink-reflect" ]
    (activity_app "Reflection1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let x = B.local m "x" in
                 let mth = B.local m "mth" ~ty:(T.Ref "java.lang.reflect.Method") in
                 get_imei m x;
                 B.vcall m ~ret:mth this "java.lang.Class" "getMethod"
                   [ B.s "leakViaSms" ];
                 B.vcall m ~tag:"sink-reflect" mth "java.lang.reflect.Method"
                   "invoke" [ B.v this; B.v x ]);
             B.meth "leakViaSms" ~params:[ str_t ] (fun m ->
                 let _this = B.this m in
                 let p = B.param m 0 "p" in
                 send_sms m (B.v p));
           ];
       ])

(* a service stages data that an activity later leaks: inter-component
   flow through app-global state *)
let service_communication1 =
  let act = "ext.SC1Activity" in
  let svc = "ext.SC1Service" in
  let g = B.fld ~ty:str_t "ext.SC1Globals" "stash" in
  make "ServiceCommunication1" ~category:ext ~excluded:true
    ~comment:"service-to-activity flow via app-global state; needs the \
              all-orders component model"
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (Fd_frontend.Apk.make "ServiceCommunication1"
       ~manifest:
         (Fd_frontend.Apk.simple_manifest ~package:"ext"
            [ (FW.Activity, act, []); (FW.Service, svc, []) ])
       [
         B.cls "ext.SC1Globals" ~fields:[ ("stash", str_t) ] [];
         B.cls svc ~super:"android.app.Service"
           [
             B.meth "onStartCommand"
               ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ]
               ~ret:T.Int (fun m ->
                 let _this = B.this m in
                 let _i = B.param m 0 "i" in
                 let x = B.local m "x" in
                 get_imei m x;
                 B.storestatic m g (B.v x);
                 let r = B.local m "r" ~ty:T.Int in
                 B.const m r (B.i 2);
                 B.retv m (B.v r));
           ];
         B.cls act ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let v = B.local m "v" in
                 B.loadstatic m v g;
                 send_sms m (B.v v));
           ];
       ])

(* data through a Bundle parcel *)
let parcel1 =
  let cls = "ext.Parcel1" in
  make "Parcel1" ~category:ext ~excluded:true
    ~comment:
      "round trip through a Bundle (wrapper-modelled parcel); the \
       Bundle read is additionally an ICC reception source under the \
       over-approximate intent model, so the same sink reports twice"
    ~expected:[ expect ~src:"src-imei" "sink-log"; expect "sink-log" ]
    (activity_app "Parcel1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let b = B.local m "b" ~ty:(T.Ref "android.os.Bundle") in
                 let x = B.local m "x" and y = B.local m "y" in
                 B.newc m b "android.os.Bundle" [];
                 get_imei m x;
                 B.vcall m b "android.os.Bundle" "putString" [ B.s "k"; B.v x ];
                 B.vcall m ~ret:y b "android.os.Bundle" "getString" [ B.s "k" ];
                 log m (B.v y));
           ];
       ])

(* a Runnable posted to a handler: threading sequentialised *)
let threading1 =
  let cls = "ext.Threading1" in
  let run_cls = "ext.T1Task" in
  make "Threading1" ~category:ext ~excluded:true
    ~comment:"leak inside a posted Runnable; threads are modelled as \
              sequentially scheduled callbacks"
    ~expected:[ expect ~src:"src-imei" "sink-log" ]
    (activity_app "Threading1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           ~fields:[ ("imei", str_t) ]
           [
             on_create (fun m this ->
                 let x = B.local m "x" in
                 let h = B.local m "h" ~ty:(T.Ref "android.os.Handler") in
                 let r = B.local m "r" ~ty:(T.Ref run_cls) in
                 get_imei m x;
                 B.store m this (B.fld cls "imei") (B.v x);
                 B.newobj m h "android.os.Handler";
                 B.newc m r run_cls [ B.v this ];
                 B.vcall m h "android.os.Handler" "post" [ B.v r ]);
           ];
         B.cls run_cls ~interfaces:[ "java.lang.Runnable" ]
           ~fields:[ ("outer", T.Ref cls) ]
           [
             B.meth "<init>" ~params:[ T.Ref cls ] (fun m ->
                 let this = B.this m in
                 let o = B.param m 0 "o" in
                 B.store m this (B.fld run_cls "outer") (B.v o));
             B.meth "run" (fun m ->
                 let this = B.this m in
                 let o = B.local m "o" ~ty:(T.Ref cls) in
                 let v = B.local m "v" in
                 B.load m o this (B.fld run_cls "outer");
                 B.load m v o (B.fld cls "imei");
                 log m (B.v v));
           ];
       ])

(* an instantiated but never-registered listener: its handler is not a
   framework entry point *)
let unregistered_callback1 =
  let cls = "ext.UnregisteredCallback1" in
  let lst = "ext.UC1Listener" in
  make "UnregisteredCallback1" ~category:ext ~excluded:true
    ~comment:"listener allocated but never registered: the handler \
              must not become an entry point"
    ~expected:[]
    (activity_app "UnregisteredCallback1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let l = B.local m "l" ~ty:(T.Ref lst) in
                 B.newc m l lst [ B.v this ]);
           ];
         B.cls lst ~interfaces:[ "android.view.View$OnClickListener" ]
           [
             B.meth "<init>" ~params:[ T.Ref cls ] (fun m ->
                 let _ = B.this m in
                 let _ = B.param m 0 "o" in
                 B.ret m);
             B.meth "onClick" ~params:[ T.Ref "android.view.View" ] (fun m ->
                 let _ = B.this m in
                 let _ = B.param m 0 "v" in
                 let x = B.local m "x" in
                 get_imei m x;
                 send_sms m (B.v x));
           ];
       ])

(* an even deeper variant of Figure 2's aliasing through helpers *)
let deep_alias1 =
  let cls = "ext.DeepAlias1" in
  let node = "ext.DA1Node" in
  let fn = B.fld ~ty:(T.Ref node) node "next" in
  let fv = B.fld ~ty:str_t node "v" in
  make "DeepAlias1" ~category:ext ~excluded:true
    ~comment:"Figure 2 aliasing stretched over helper calls and a \
              three-hop heap path"
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "DeepAlias1" cls
       [
         B.cls node ~fields:[ ("next", T.Ref node); ("v", str_t) ] [];
         B.cls "ext.DA1Helper"
           [
             B.meth "taint" ~static:true ~params:[ T.Ref node; str_t ] (fun m ->
                 let n = B.param m 0 "n" in
                 let s = B.param m 1 "s" in
                 let inner = B.local m "inner" ~ty:(T.Ref node) in
                 B.load m inner n fn;
                 B.store m inner fv (B.v s));
             B.meth "alias" ~static:true ~params:[ T.Ref node ]
               ~ret:(T.Ref node) (fun m ->
                 let n = B.param m 0 "n" in
                 let r = B.local m "r" ~ty:(T.Ref node) in
                 B.load m r n fn;
                 B.retv m (B.v r));
           ];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let a = B.local m "a" ~ty:(T.Ref node) in
                 let inner = B.local m "inner" ~ty:(T.Ref node) in
                 let b = B.local m "b" ~ty:(T.Ref node) in
                 let x = B.local m "x" and out = B.local m "out" in
                 B.newobj m a node;
                 B.newobj m inner node;
                 B.store m a fn (B.v inner);
                 (* alias of a.next taken BEFORE the taint *)
                 B.scall m ~ret:b "ext.DA1Helper" "alias" [ B.v a ];
                 get_imei m x;
                 B.scall m "ext.DA1Helper" "taint" [ B.v a; B.v x ];
                 B.load m out b fv;
                 send_sms m (B.v out));
           ];
       ])

(* AsyncTask: the background result feeds onPostExecute — the linked
   lifecycle the extended dummy main models *)
let async_task1 =
  let cls = "ext.AsyncTask1" in
  let task = "ext.AT1Fetch" in
  make "AsyncTask1" ~category:ext ~excluded:true
    ~comment:
      "doInBackground fetches the IMEI; its result reaches        onPostExecute, which logs it — the AsyncTask result link"
    ~expected:[ expect ~src:"src-imei" "sink-log" ]
    (activity_app "AsyncTask1" cls
       [
         B.cls task ~super:"android.os.AsyncTask"
           [
             B.meth "<init>" ~params:[ T.Ref cls ] (fun m ->
                 let _ = B.this m in
                 let _ = B.param m 0 "o" in
                 B.ret m);
             B.meth "doInBackground" ~params:[ T.Ref "java.lang.Object" ]
               ~ret:str_t (fun m ->
                 let _ = B.this m in
                 let _ = B.param m 0 "args" in
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 B.retv m (B.v imei));
             B.meth "onPostExecute" ~params:[ T.Ref "java.lang.Object" ]
               (fun m ->
                 let _ = B.this m in
                 let r = B.param m 0 "result" in
                 log m (B.v r));
           ];
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let t = B.local m "t" ~ty:(T.Ref task) in
                 B.newc m t task [ B.v this ];
                 B.vcall m t task "execute" [ B.nul ]);
           ];
       ])

(* Fragment lifecycle: the fragment stages data in its attached
   activity, which later leaks it *)
let fragment_lifecycle1 =
  let act = "ext.FragmentLifecycle1" in
  let frag = "ext.FL1Fragment" in
  let f_host = B.fld ~ty:(T.Ref act) frag "host" in
  let f_stash = B.fld ~ty:str_t act "stash" in
  make "FragmentLifecycle1" ~category:ext ~excluded:true
    ~comment:
      "the fragment stores the IMEI in its host activity during        onCreate; the activity leaks it from onDestroy — needs the        fragment lifecycle attached to the component"
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "FragmentLifecycle1" act
       [
         B.cls frag ~super:"android.app.Fragment"
           ~fields:[ ("host", T.Ref act) ]
           [
             B.meth "onAttach" ~params:[ T.Ref "android.app.Activity" ]
               (fun m ->
                 let this = B.this m in
                 let a = B.param m 0 "a" in
                 let cast = B.local m "cast" ~ty:(T.Ref act) in
                 B.cast m cast (T.Ref act) (B.v a);
                 B.store m this f_host (B.v cast));
             B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                 let this = B.this m in
                 let _ = B.param m 0 "b" in
                 let h = B.local m "h" ~ty:(T.Ref act) in
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 B.load m h this f_host;
                 B.store m h f_stash (B.v imei));
           ];
         B.cls act ~super:"android.app.Activity"
           ~fields:[ ("stash", str_t) ]
           [
             on_create (fun m _this ->
                 let f = B.local m "f" ~ty:(T.Ref frag) in
                 B.newc m f frag [];
                 (* attach via a fragment transaction (framework call) *)
                 let tr = B.local m "tr"
                     ~ty:(T.Ref "android.app.FragmentTransaction") in
                 B.newobj m tr "android.app.FragmentTransaction";
                 B.vcall m tr "android.app.FragmentTransaction" "add"
                   [ B.i 1; B.v f ]);
             simple_lifecycle_meth "onDestroy" (fun m this ->
                 let v = B.local m "v" in
                 B.load m v this f_stash;
                 send_sms m (B.v v));
           ];
       ])

let all =
  [
    field_sensitivity5; object_sensitivity3; exceptions1; location_leak3;
    reflection1; service_communication1; parcel1; threading1;
    unregistered_callback1; deep_alias1; async_task1; fragment_lifecycle1;
  ]
