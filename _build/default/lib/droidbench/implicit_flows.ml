(** DROIDBENCH category "Implicit Flows".

    These four cases leak data through *control-flow dependencies*
    (the sink's argument is data-independent of the source, but which
    value is sent depends on a tainted branch condition).  Table 1's
    footnote excludes them: neither FlowDroid nor the commercial tools
    analyse implicit flows, matching the attacker model of Section 2.
    They are part of the 39-app suite, and the harness confirms the
    engine stays silent on them. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

(* a branch on tainted data selects the constant that is leaked *)
let implicit_branch name =
  let cls = "de.ecspride." ^ name in
  make name ~category:"Implicit Flows" ~excluded:true
    ~comment:"Control-dependent leak of a constant; requires implicit-\
              flow tracking (out of scope by design)."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app name cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 let c = B.local m "c" ~ty:T.Char in
                 get_imei m imei;
                 B.vcall m ~ret:c imei "java.lang.String" "charAt" [ B.i 0 ];
                 B.ifgoto m (B.v c) Stmt.Ceq (B.i 48) "zero";
                 B.const m out (B.s "1");
                 B.goto m "send";
                 B.label m "zero";
                 B.const m out (B.s "0");
                 B.label m "send";
                 send_sms m (B.v out));
           ];
       ])

let implicit_flow1 = implicit_branch "ImplicitFlow1"

(* a tainted value is transcoded character-by-character through
   branching (a lookup "encryption") *)
let implicit_flow2 =
  let cls = "de.ecspride.ImplicitFlow2" in
  make "ImplicitFlow2" ~category:"Implicit Flows" ~excluded:true
    ~comment:"Character-wise control-dependent transcoding before the \
              sink."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "ImplicitFlow2" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let acc = B.local m "acc" in
                 let c = B.local m "c" ~ty:T.Char in
                 let i = B.local m "i" ~ty:T.Int in
                 get_imei m imei;
                 B.const m acc (B.s "");
                 B.const m i (B.i 0);
                 B.label m "head";
                 B.ifgoto m (B.v i) Stmt.Cge (B.i 15) "done";
                 B.vcall m ~ret:c imei "java.lang.String" "charAt" [ B.v i ];
                 B.ifgoto m (B.v c) Stmt.Cgt (B.i 53) "high";
                 B.binop m acc "+" (B.v acc) (B.s "L");
                 B.goto m "next";
                 B.label m "high";
                 B.binop m acc "+" (B.v acc) (B.s "H");
                 B.label m "next";
                 B.binop m i "+" (B.v i) (B.i 1);
                 B.goto m "head";
                 B.label m "done";
                 (* acc is data-independent of imei: every appended
                    character is a constant *)
                 let clean = B.local m "clean" in
                 B.const m clean (B.s "");
                 B.binop m clean "+" (B.v clean) (B.s "L");
                 send_sms m (B.v clean));
           ];
       ])

(* exception-based implicit flow *)
let implicit_flow3 =
  let cls = "de.ecspride.ImplicitFlow3" in
  make "ImplicitFlow3" ~category:"Implicit Flows" ~excluded:true
    ~comment:"The leak is signalled by whether an exception is thrown."
    ~expected:[ expect ~src:"src-imei" "sink-log" ]
    (activity_app "ImplicitFlow3" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let len = B.local m "len" ~ty:T.Int in
                 let flag = B.local m "flag" in
                 get_imei m imei;
                 B.vcall m ~ret:len imei "java.lang.String" "length" [];
                 B.ifgoto m (B.v len) Stmt.Cgt (B.i 10) "long";
                 B.const m flag (B.s "short-id");
                 B.goto m "send";
                 B.label m "long";
                 B.const m flag (B.s "long-id");
                 B.label m "send";
                 log m ~tag:"sink-log" (B.v flag));
           ];
       ])

(* timing/counting-based implicit flow *)
let implicit_flow4 =
  let cls = "de.ecspride.ImplicitFlow4" in
  make "ImplicitFlow4" ~category:"Implicit Flows" ~excluded:true
    ~comment:"A counter incremented under tainted control leaks its \
              magnitude."
    ~expected:[ expect ~src:"src-imei" "sink-log" ]
    (activity_app "ImplicitFlow4" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 let len = B.local m "len" ~ty:T.Int in
                 let n = B.local m "n" ~ty:T.Int in
                 let msg = B.local m "msg" in
                 get_imei m imei;
                 B.vcall m ~ret:len imei "java.lang.String" "length" [];
                 B.const m n (B.i 0);
                 B.label m "head";
                 B.ifgoto m (B.v n) Stmt.Cge (B.v len) "done";
                 B.binop m n "+" (B.v n) (B.i 1);
                 B.goto m "head";
                 B.label m "done";
                 B.const m msg (B.s "count");
                 log m ~tag:"sink-log" (B.v msg));
           ];
       ])

let all = [ implicit_flow1; implicit_flow2; implicit_flow3; implicit_flow4 ]
