(** The full DROIDBENCH 1.0 reproduction: 39 hand-crafted apps in the
    categories of Table 1 (35 scored rows plus the four implicit-flow
    cases the paper's footnote excludes from scoring). *)

(** All benchmark apps, in Table 1's category order, plus the
    post-1.0 extension cases. *)
let all : Bench_app.t list =
  Arrays.all @ Callbacks_apps.all @ Field_object.all @ Interapp.all
  @ Lifecycle_apps.all @ General_java.all @ Misc_apps.all
  @ Implicit_flows.all @ Extensions.all

(** The scored subset (Table 1's rows). *)
let scored = List.filter (fun a -> not a.Bench_app.app_excluded) all

(** [categories] in display order. *)
let categories =
  [
    "Arrays and Lists";
    "Callbacks";
    "Field and Object Sensitivity";
    "Inter-App Communication";
    "Lifecycle";
    "General Java";
    "Miscellaneous Android-Specific";
    "Implicit Flows";
    "Extensions";
  ]

(** [by_category cat] is the apps of one category, in declaration
    order. *)
let by_category cat =
  List.filter (fun a -> a.Bench_app.app_category = cat) all

(** [find name] looks an app up by name. *)
let find name = List.find_opt (fun a -> a.Bench_app.app_name = name) all

(** [total_expected_leaks] across the scored suite — 28 in this
    reproduction, matching Table 1's ground truth (26 found + 2 missed
    by FlowDroid). *)
let total_expected_leaks =
  List.fold_left
    (fun acc a -> acc + List.length a.Bench_app.app_expected)
    0 scored
