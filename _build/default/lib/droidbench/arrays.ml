(** DROIDBENCH category "Arrays and Lists".

    All three cases are precision traps: the tainted value is stored at
    one index and a *different* index (or element) is leaked, so a
    correct analysis should stay silent.  FlowDroid's conservative
    whole-array/whole-collection abstraction (Section 4.1) reports all
    three — the false positives visible in Table 1's first category. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

let array_access1 =
  let cls = "de.ecspride.ArrayAccess1" in
  make "ArrayAccess1" ~category:"Arrays and Lists"
    ~comment:
      "IMEI stored in arr[0]; arr[1] is leaked. No real leak; \
       index-insensitive array handling reports one."
    ~expected:[]
    (activity_app "ArrayAccess1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let arr = B.local m "arr" ~ty:(T.Array str_t) in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newarray m arr str_t (B.i 2);
                 B.astore m arr (B.i 1) (B.s "no taint");
                 get_imei m imei;
                 B.astore m arr (B.i 0) (B.v imei);
                 B.aload m out arr (B.i 1);
                 send_sms m (B.v out));
           ];
       ])

let array_access2 =
  let cls = "de.ecspride.ArrayAccess2" in
  make "ArrayAccess2" ~category:"Arrays and Lists"
    ~comment:
      "Like ArrayAccess1 but the indices are computed; still no real \
       leak."
    ~expected:[]
    (activity_app "ArrayAccess2" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let arr = B.local m "arr" ~ty:(T.Array str_t) in
                 let imei = B.local m "imei" in
                 let i = B.local m "i" ~ty:T.Int in
                 let j = B.local m "j" ~ty:T.Int in
                 let out = B.local m "out" in
                 B.newarray m arr str_t (B.i 10);
                 get_imei m imei;
                 B.binop m i "*" (B.i 2) (B.i 2);
                 B.astore m arr (B.v i) (B.v imei);
                 B.binop m j "+" (B.i 1) (B.i 1);
                 B.aload m out arr (B.v j);
                 send_sms m (B.v out));
           ];
       ])

let list_access1 =
  let cls = "de.ecspride.ListAccess1" in
  make "ListAccess1" ~category:"Arrays and Lists"
    ~comment:
      "IMEI added to a list after a clean element; element 0 is \
       leaked. The whole-container collection model reports it."
    ~expected:[]
    (activity_app "ListAccess1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let l = B.local m "l" ~ty:(T.Ref "java.util.LinkedList") in
                 let imei = B.local m "imei" in
                 let out = B.local m "out" in
                 B.newc m l "java.util.LinkedList" [];
                 B.vcall m l "java.util.LinkedList" "add" [ B.s "clean" ];
                 get_imei m imei;
                 B.vcall m l "java.util.LinkedList" "add" [ B.v imei ];
                 B.vcall m ~ret:out l "java.util.LinkedList" "get" [ B.i 0 ];
                 send_sms m (B.v out));
           ];
       ])

let all = [ array_access1; array_access2; list_access1 ]
