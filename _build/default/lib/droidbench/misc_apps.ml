(** DROIDBENCH category "Miscellaneous Android-Specific". *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

(* PrivateDataLeak1: a password field read from the UI leaks via SMS —
   the Listing 1 scenario. 1 leak. *)
let private_data_leak1 =
  let cls = "de.ecspride.PrivateDataLeak1" in
  let layout =
    {|<LinearLayout>
        <EditText android:id="@+id/username" android:inputType="text"/>
        <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
        <Button android:id="@+id/b" android:onClick="sendMessage"/>
      </LinearLayout>|}
  in
  let f_pwd = B.fld ~ty:str_t cls "pwd" in
  make "PrivateDataLeak1" ~category:"Miscellaneous Android-Specific"
    ~comment:
      "The password field's sensitivity exists only in the layout XML \
       (inputType); the leak crosses onRestart -> button callback."
    ~expected:[ expect ~src:"src-pwd" "sink-sms" ]
    (activity_app "PrivateDataLeak1" cls
       ~layouts:[ ("main", layout) ]
       [
         B.cls cls ~super:"android.app.Activity"
           ~fields:[ ("pwd", str_t) ]
           [
             on_create (fun m this ->
                 B.vcall m this "android.app.Activity" "setContentView"
                   [ B.i Fd_frontend.Layout.layout_id_base ]);
             simple_lifecycle_meth "onRestart" (fun m this ->
                 let et =
                   B.local m "et" ~ty:(T.Ref "android.widget.EditText")
                 in
                 let p = B.local m "p" in
                 B.vcall m ~tag:"src-pwd" ~ret:et this "android.app.Activity"
                   "findViewById"
                   [ B.i (Fd_frontend.Layout.id_base + 1) ];
                 B.vcall m ~ret:p et "android.widget.EditText" "toString" [];
                 B.store m this f_pwd (B.v p));
             B.meth "sendMessage" ~params:[ T.Ref "android.view.View" ]
               (fun m ->
                 let this = B.this m in
                 let _v = B.param m 0 "v" in
                 let p = B.local m "p" in
                 B.load m p this f_pwd;
                 send_sms m (B.v p));
           ];
       ])

(* PrivateDataLeak2: device id written to a file. 1 leak. *)
let private_data_leak2 =
  let cls = "de.ecspride.PrivateDataLeak2" in
  make "PrivateDataLeak2" ~category:"Miscellaneous Android-Specific"
    ~comment:"IMEI converted and written to a file output stream."
    ~expected:[ expect ~src:"src-imei" "sink-file" ]
    (activity_app "PrivateDataLeak2" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" ~ty:str_t in
                 let bytes = B.local m "bytes" ~ty:(T.Array T.Char) in
                 get_imei m imei;
                 B.vcall m ~ret:bytes imei "java.lang.String" "getBytes" [];
                 write_file m (B.v bytes));
           ];
       ])

(* DirectLeak1: straight-line source-to-sink. 1 leak. *)
let direct_leak1 =
  let cls = "de.ecspride.DirectLeak1" in
  make "DirectLeak1" ~category:"Miscellaneous Android-Specific"
    ~comment:"The sanity-check case: source and sink in one method."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "DirectLeak1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 send_sms m (B.v imei));
           ];
       ])

(* InactiveActivity: the leaking activity is disabled in the manifest.
   0 leaks. *)
let inactive_activity =
  let main = "de.ecspride.MainActivity" in
  let dead = "de.ecspride.InactiveActivity" in
  make "InactiveActivity" ~category:"Miscellaneous Android-Specific"
    ~comment:"The leaking component is android:enabled=\"false\": it \
              can never run."
    ~expected:[]
    (Fd_frontend.Apk.make "InactiveActivity"
       ~manifest:
         (Fd_frontend.Apk.simple_manifest ~package:"de.ecspride"
            [
              (Fd_frontend.Framework.Activity, main, []);
              (Fd_frontend.Framework.Activity, dead,
               [ ("android:enabled", "false") ]);
            ])
       [
         B.cls main ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let x = B.local m "x" in
                 B.const m x (B.s "hello");
                 log m (B.v x));
           ];
         B.cls dead ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 send_sms m (B.v imei));
           ];
       ])

(* LogNoLeak: logging non-sensitive data only. 0 leaks. *)
let log_no_leak =
  let cls = "de.ecspride.LogNoLeak" in
  make "LogNoLeak" ~category:"Miscellaneous Android-Specific"
    ~comment:"A sink is called, but never with sensitive data."
    ~expected:[]
    (activity_app "LogNoLeak" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let x = B.local m "x" in
                 let y = B.local m "y" in
                 B.const m x (B.s "app started");
                 B.binop m y "+" (B.v x) (B.s "!");
                 log m (B.v y));
           ];
       ])

let all =
  [
    private_data_leak1; private_data_leak2; direct_leak1; inactive_activity;
    log_no_leak;
  ]
