(** DROIDBENCH category "Callbacks": handlers registered in layout XML,
    imperatively, as separate (anonymous-style) listener classes, and
    by overriding framework methods. *)

open Bench_app
open Fd_ir
module B = Build
module T = Types

let loc_t = T.Ref "android.location.Location"

(* AnonymousClass1: a LocationListener registered in onCreate as a
   separate class (modelling Java's anonymous inner class) receives the
   location and sends it out directly. 1 leak. *)
let anonymous_class1 =
  let cls = "de.ecspride.AnonymousClass1" in
  let lst = "de.ecspride.AnonymousClass1$1" in
  make "AnonymousClass1" ~category:"Callbacks"
    ~comment:
      "An anonymous-class LocationListener leaks its parameter; the \
       callback must be associated with the registering activity."
    ~expected:[ expect ~src:"src-loc" "sink-sms" ]
    (activity_app "AnonymousClass1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m this ->
                 let lm =
                   B.local m "lm" ~ty:(T.Ref "android.location.LocationManager")
                 in
                 let l = B.local m "l" ~ty:(T.Ref lst) in
                 B.newobj m lm "android.location.LocationManager";
                 B.newc m l lst [ B.v this ];
                 B.vcall m lm "android.location.LocationManager"
                   "requestLocationUpdates" [ B.v l ]);
           ];
         B.cls lst ~interfaces:[ "android.location.LocationListener" ]
           ~fields:[ ("this$0", T.Ref cls) ]
           [
             B.meth "<init>" ~params:[ T.Ref cls ] (fun m ->
                 let this = B.this m in
                 let o = B.param m 0 "o" in
                 B.store m this (B.fld lst "this$0") (B.v o));
             B.meth "onLocationChanged" ~params:[ loc_t ] (fun m ->
                 let _this = B.this m in
                 let loc = B.param m 0 ~tag:"src-loc" "loc" in
                 let lat = B.local m "lat" in
                 B.vcall m ~ret:lat loc "android.location.Location"
                   "getLatitude" [];
                 send_sms m (B.v lat));
           ];
       ])

(* Button1: XML-declared onClick handler leaks the IMEI stored by
   onCreate. 1 leak. *)
let button1 =
  let cls = "de.ecspride.Button1" in
  let layout =
    {|<LinearLayout><Button android:id="@+id/button1" android:onClick="clickButton"/></LinearLayout>|}
  in
  make "Button1" ~category:"Callbacks"
    ~comment:
      "The click handler exists only in the layout XML; code-only \
       analyses miss the component-callback association."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "Button1" cls
       ~layouts:[ ("main", layout) ]
       [
         B.cls cls ~super:"android.app.Activity"
           ~fields:[ ("imei", str_t) ]
           [
             on_create (fun m this ->
                 let imei = B.local m "imei" in
                 B.vcall m this "android.app.Activity" "setContentView"
                   [ B.i Fd_frontend.Layout.layout_id_base ];
                 get_imei m imei;
                 B.store m this (B.fld cls "imei") (B.v imei));
             B.meth "clickButton" ~params:[ T.Ref "android.view.View" ]
               (fun m ->
                 let this = B.this m in
                 let _v = B.param m 0 "v" in
                 let d = B.local m "d" in
                 B.load m d this (B.fld cls "imei");
                 send_sms m (B.v d));
           ];
       ])

(* Button2: two real leaks through two handlers plus a would-be-killed
   field overwrite that only a strong-update analysis can dismiss.
   2 expected leaks; FlowDroid additionally reports the overwritten
   field (the Table 1 false positive). *)
let button2 =
  let cls = "de.ecspride.Button2" in
  let layout =
    {|<LinearLayout>
        <Button android:id="@+id/b1" android:onClick="clickA"/>
        <Button android:id="@+id/b2" android:onClick="clickB"/>
        <Button android:id="@+id/b3" android:onClick="clickC"/>
      </LinearLayout>|}
  in
  make "Button2" ~category:"Callbacks"
    ~comment:
      "Three handlers: two leak for real; the third overwrites the \
       tainted field with a constant before leaking it — dismissing it \
       needs strong updates (must-alias), which FlowDroid forgoes."
    ~expected:
      [ expect ~src:"src-imei" "sink-sms-a"; expect ~src:"src-imei2" "sink-log-b" ]
    (activity_app "Button2" cls
       ~layouts:[ ("main", layout) ]
       [
         B.cls cls ~super:"android.app.Activity"
           ~fields:[ ("imei", str_t); ("tmp", str_t) ]
           [
             on_create (fun m this ->
                 let imei = B.local m "imei" in
                 B.vcall m this "android.app.Activity" "setContentView"
                   [ B.i Fd_frontend.Layout.layout_id_base ];
                 get_imei m imei;
                 B.store m this (B.fld cls "imei") (B.v imei));
             B.meth "clickA" ~params:[ T.Ref "android.view.View" ] (fun m ->
                 let this = B.this m in
                 let _v = B.param m 0 "v" in
                 let d = B.local m "d" in
                 B.load m d this (B.fld cls "imei");
                 send_sms m ~tag:"sink-sms-a" (B.v d));
             B.meth "clickB" ~params:[ T.Ref "android.view.View" ] (fun m ->
                 let _this = B.this m in
                 let _v = B.param m 0 "v" in
                 let d = B.local m "d" in
                 get_imei m ~tag:"src-imei2" d;
                 log m ~tag:"sink-log-b" (B.v d));
             B.meth "clickC" ~params:[ T.Ref "android.view.View" ] (fun m ->
                 let this = B.this m in
                 let _v = B.param m 0 "v" in
                 let d = B.local m "d" in
                 let clean = B.local m "clean" in
                 B.load m d this (B.fld cls "imei");
                 B.store m this (B.fld cls "tmp") (B.v d);
                 B.const m clean (B.s "clean");
                 B.store m this (B.fld cls "tmp") (B.v clean);
                 let out = B.local m "out" in
                 B.load m out this (B.fld cls "tmp");
                 send_sms m ~tag:"sink-sms-c" (B.v out));
           ];
       ])

(* LocationLeak1: the activity itself is the LocationListener; latitude
   and longitude are stored in fields and leaked when the activity is
   paused. 2 leaks. *)
let location_leak ~name ~separate_listener =
  let cls = "de.ecspride." ^ name in
  let lst = "de.ecspride." ^ name ^ "$Handler" in
  let listener_classes =
    if separate_listener then
      [
        B.cls lst ~interfaces:[ "android.location.LocationListener" ]
          ~fields:[ ("this$0", T.Ref cls) ]
          [
            B.meth "<init>" ~params:[ T.Ref cls ] (fun m ->
                let this = B.this m in
                let o = B.param m 0 "o" in
                B.store m this (B.fld lst "this$0") (B.v o));
            B.meth "onLocationChanged" ~params:[ loc_t ] (fun m ->
                let this = B.this m in
                let loc = B.param m 0 ~tag:"src-loc" "loc" in
                let o = B.local m "o" ~ty:(T.Ref cls) in
                let lat = B.local m "lat" in
                let lon = B.local m "lon" in
                B.load m o this (B.fld lst "this$0");
                B.vcall m ~ret:lat loc "android.location.Location"
                  "getLatitude" [];
                B.vcall m ~ret:lon loc "android.location.Location"
                  "getLongitude" [];
                B.store m o (B.fld cls "lat") (B.v lat);
                B.store m o (B.fld cls "lon") (B.v lon));
          ];
      ]
    else []
  in
  let activity_extra_ifaces =
    if separate_listener then [] else [ "android.location.LocationListener" ]
  in
  let own_handler =
    if separate_listener then []
    else
      [
        B.meth "onLocationChanged" ~params:[ loc_t ] (fun m ->
            let this = B.this m in
            let loc = B.param m 0 ~tag:"src-loc" "loc" in
            let lat = B.local m "lat" in
            let lon = B.local m "lon" in
            B.vcall m ~ret:lat loc "android.location.Location" "getLatitude" [];
            B.vcall m ~ret:lon loc "android.location.Location" "getLongitude" [];
            B.store m this (B.fld cls "lat") (B.v lat);
            B.store m this (B.fld cls "lon") (B.v lon));
      ]
  in
  make name ~category:"Callbacks"
    ~comment:
      "Location data arrives as a callback parameter, is stored in \
       activity state and leaked from onPause: needs both the \
       parameter-source model and the lifecycle ordering."
    ~expected:[ expect ~src:"src-loc" "sink-lat"; expect ~src:"src-loc" "sink-lon" ]
    (activity_app name cls
       (List.concat
          [
            [
              B.cls cls ~super:"android.app.Activity"
                ~interfaces:activity_extra_ifaces
                ~fields:[ ("lat", str_t); ("lon", str_t) ]
                (List.concat
                   [
                     [
                       on_create (fun m this ->
                           let lm =
                             B.local m "lm"
                               ~ty:(T.Ref "android.location.LocationManager")
                           in
                           B.newobj m lm "android.location.LocationManager";
                           if separate_listener then begin
                             let l = B.local m "l" ~ty:(T.Ref lst) in
                             B.newc m l lst [ B.v this ];
                             B.vcall m lm "android.location.LocationManager"
                               "requestLocationUpdates" [ B.v l ]
                           end
                           else
                             B.vcall m lm "android.location.LocationManager"
                               "requestLocationUpdates" [ B.v this ]);
                       simple_lifecycle_meth "onPause" (fun m this ->
                           let a = B.local m "a" in
                           let o = B.local m "o" in
                           B.load m a this (B.fld cls "lat");
                           log m ~tag:"sink-lat" (B.v a);
                           B.load m o this (B.fld cls "lon");
                           log m ~tag:"sink-lon" (B.v o));
                     ];
                     own_handler;
                   ]);
            ];
            listener_classes;
          ]))

let location_leak1 = location_leak ~name:"LocationLeak1" ~separate_listener:false
let location_leak2 = location_leak ~name:"LocationLeak2" ~separate_listener:true

(* MethodOverride1: the activity overrides a framework-driven method
   (onLowMemory) that is registered nowhere; source and sink live
   inside the overridden method, so the test isolates whether the
   method is treated as framework-callable at all. 1 leak. *)
let method_override1 =
  let cls = "de.ecspride.MethodOverride1" in
  make "MethodOverride1" ~category:"Callbacks"
    ~comment:
      "An overridden framework method (onLowMemory) acts as an \
       undocumented callback; analyses must treat it as an entry."
    ~expected:[ expect ~src:"src-imei" "sink-sms" ]
    (activity_app "MethodOverride1" cls
       [
         B.cls cls ~super:"android.app.Activity"
           [
             on_create (fun m _this ->
                 let x = B.local m "x" in
                 B.const m x (B.s "created");
                 log m ~tag:"sink-unused" (B.v x));
             simple_lifecycle_meth "onLowMemory" (fun m _this ->
                 let imei = B.local m "imei" in
                 get_imei m imei;
                 send_sms m (B.v imei));
           ];
       ])

let all =
  [
    anonymous_class1; button1; button2; location_leak1; location_leak2;
    method_override1;
  ]
