lib/frontend/rules.ml: Fun Hashtbl List Option Printf String
