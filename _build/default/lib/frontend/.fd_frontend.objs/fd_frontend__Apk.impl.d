lib/frontend/apk.ml: Array Buffer Fd_ir Fd_xml Filename Framework Fun Jclass Layout Lexer List Manifest Parser Printf Scene String Sys
