lib/frontend/layout.mli:
