lib/frontend/apk.mli: Fd_ir Framework Jclass Layout Manifest Scene
