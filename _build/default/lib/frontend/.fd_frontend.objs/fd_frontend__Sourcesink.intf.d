lib/frontend/sourcesink.mli:
