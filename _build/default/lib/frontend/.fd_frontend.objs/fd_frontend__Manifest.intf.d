lib/frontend/manifest.mli: Framework
