lib/frontend/framework.ml: Fd_ir Jclass List Option Scene Types
