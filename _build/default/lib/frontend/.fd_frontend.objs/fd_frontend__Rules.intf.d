lib/frontend/rules.mli:
