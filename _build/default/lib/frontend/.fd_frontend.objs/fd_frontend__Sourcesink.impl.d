lib/frontend/sourcesink.ml: Fun Hashtbl List String
