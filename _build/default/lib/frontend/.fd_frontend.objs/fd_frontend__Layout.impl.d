lib/frontend/layout.ml: Fd_xml Framework List Printf String
