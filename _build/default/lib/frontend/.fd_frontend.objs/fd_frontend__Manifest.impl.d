lib/frontend/manifest.ml: Fd_xml Framework List Printf String
