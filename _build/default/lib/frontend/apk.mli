(** The APK model.

    A real APK is a zip archive holding [AndroidManifest.xml], layout
    resources and Dalvik bytecode; this model is the same bundle with
    µJimple in place of Dalvik.  {!load} runs the whole frontend of
    Figure 4's first stage: XML parsing, resource-id assignment, scene
    construction with the framework skeleton installed, and
    component-consistency checks. *)

open Fd_ir

type t = {
  apk_name : string;
  apk_manifest : string;  (** manifest XML source *)
  apk_layouts : (string * string) list;  (** (layout name, XML source) *)
  apk_classes : Jclass.t list;
}

type loaded = {
  name : string;
  manifest : Manifest.t;
  layout : Layout.t;
  scene : Scene.t;
  components : Manifest.component list;  (** enabled components only *)
}

exception Load_error of string

val make :
  string -> manifest:string -> ?layouts:(string * string) list ->
  Jclass.t list -> t
(** [make name ~manifest ?layouts classes] bundles an in-memory app. *)

val make_text :
  string -> manifest:string -> ?layouts:(string * string) list ->
  string list -> t
(** [make_text name ~manifest ?layouts sources] bundles an app whose
    code is textual µJimple compilation units.
    @raise Load_error on parse errors (with the line number). *)

val of_dir : string -> t
(** [of_dir dir] reads an app from disk: [AndroidManifest.xml], every
    [res/layout/*.xml] and every [*.jimple] file (recursively,
    alphabetical).
    @raise Load_error when the manifest is missing or code is
    malformed. *)

val load : t -> loaded
(** [load apk] runs the frontend and validates that every enabled
    manifest component resolves to a class with the right framework
    superclass.
    @raise Load_error on inconsistencies. *)

val res_id : loaded -> string -> int
(** the integer resource id of the layout control with the given
    symbolic id.  @raise Load_error when no layout declares it. *)

val layout_id : loaded -> string -> int
(** the [R.layout] integer for a layout file name *)

val simple_manifest :
  package:string ->
  (Framework.component_kind * string * (string * string) list) list ->
  string
(** [simple_manifest ~package comps] renders a minimal manifest
    declaring [comps] as [(kind, class, extra-attributes)], with the
    first activity as the MAIN/LAUNCHER entry. *)
