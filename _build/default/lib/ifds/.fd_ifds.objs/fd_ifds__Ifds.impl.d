lib/ifds/ifds.ml: Hashtbl List Queue
