(** Result reporting: FlowDroid-style XML output and text summaries.

    Reports "include full path information" (Section 5): each result
    carries the sink, the source, and the reconstructed chain of
    propagation statements, in the XML shape FlowDroid's result files
    use ([DataFlowResults]/[Results]/[Result]/[Sink]+[Sources]). *)

val finding_to_xml : Bidi.finding -> Fd_xml.Xml.t
val to_xml : Infoflow.result -> Fd_xml.Xml.t

val to_xml_string : Infoflow.result -> string
(** the rendered document, with XML declaration; parses back with
    {!Fd_xml.Xml.parse_string} *)

val summary : Infoflow.result -> string
(** one-line digest: flow count by sink category, time, reachable
    methods, propagations *)
