(** EPICC-lite: inter-component communication resolution — the paper's
    stated future work ("we plan to integrate FlowDroid with EPICC").

    A constant-propagation-style intent analysis resolves each
    intent-send site's possible target components (explicit constant
    targets, or constant action strings matched against the manifest's
    intent filters); flow composition then stitches a sending-side
    flow [src → send(i)] to every receiving-side flow
    [reception → sink] inside the resolved target, yielding transitive
    leaks spanning components. *)

open Fd_callgraph

type target =
  | Explicit of string  (** target component class *)
  | Action of string  (** implicit: intent action string *)

type send_site = {
  ss_node : Icfg.node;  (** the startActivity / sendBroadcast call *)
  ss_targets : string list;  (** resolved in-app receiving components *)
}

val send_sites : Icfg.t -> Fd_frontend.Manifest.t -> send_site list
(** every intent-send call site in the analysed code, with its
    resolved in-app targets *)

type composed = {
  comp_source : Taint.source_info;  (** the original sending-side source *)
  comp_via : Icfg.node;  (** the resolved intent-send site *)
  comp_target : string;  (** receiving component *)
  comp_sink_node : Icfg.node;
  comp_sink_tag : string option;
  comp_sink_cat : Fd_frontend.Sourcesink.category;
  comp_path : Icfg.node list;  (** concatenated sending+receiving path *)
}

val compose :
  icfg:Icfg.t ->
  scene:Fd_ir.Scene.t ->
  manifest:Fd_frontend.Manifest.t ->
  Bidi.finding list ->
  composed list
(** [compose findings] resolves intent sends among [findings] and
    stitches them to reception-sourced flows.  The caller decides
    whether to keep the raw send-as-sink findings (FlowDroid's
    over-approximation) alongside. *)

val composed_to_findings : composed list -> Bidi.finding list
(** view composed flows as ordinary findings for uniform
    scoring/reporting *)
