lib/core/access_path.mli: Fd_ir Format Stmt Types
