lib/core/config.mli: Fd_callgraph
