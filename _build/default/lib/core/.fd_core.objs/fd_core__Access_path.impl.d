lib/core/access_path.ml: Fd_ir Format Hashtbl List Stmt Types
