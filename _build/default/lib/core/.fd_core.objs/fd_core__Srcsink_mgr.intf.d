lib/core/srcsink_mgr.mli: Body Fd_frontend Fd_ir Scene Stmt
