lib/core/report.ml: Bidi Fd_callgraph Fd_frontend Fd_xml Icfg Infoflow List Option Printf String Taint
