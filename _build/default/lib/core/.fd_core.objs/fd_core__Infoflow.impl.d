lib/core/infoflow.ml: Bidi Callgraph Config Fd_callgraph Fd_frontend Fd_ir Fd_lifecycle Icfg Jclass List Logs Mkey Scene Srcsink_mgr Sys Types
