lib/core/bidi.ml: Access_path Body Callgraph Config Fd_callgraph Fd_frontend Fd_ir Hashtbl Icfg Jclass List Mkey Option Printf Queue Scene Srcsink_mgr Stmt Taint Types
