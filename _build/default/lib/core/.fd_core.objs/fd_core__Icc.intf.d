lib/core/icc.mli: Bidi Fd_callgraph Fd_frontend Fd_ir Icfg Taint
