lib/core/icc.ml: Bidi Body Callgraph Fd_callgraph Fd_frontend Fd_ir Hashtbl Icfg List Mkey Option Scene Stmt String Taint Types
