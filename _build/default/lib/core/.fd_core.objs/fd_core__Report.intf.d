lib/core/report.mli: Bidi Fd_xml Infoflow
