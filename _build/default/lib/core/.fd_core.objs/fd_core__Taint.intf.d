lib/core/taint.mli: Access_path Fd_callgraph Fd_frontend Icfg
