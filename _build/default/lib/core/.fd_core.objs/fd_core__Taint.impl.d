lib/core/taint.ml: Access_path Fd_callgraph Fd_frontend Hashtbl Icfg Printf
