lib/core/bidi.mli: Config Fd_callgraph Fd_frontend Fd_ir Icfg Mkey Scene Srcsink_mgr Taint
