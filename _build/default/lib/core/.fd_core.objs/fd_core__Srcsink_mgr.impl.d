lib/core/srcsink_mgr.ml: Fd_frontend Fd_ir Scene Stmt Types
