lib/core/config.ml: Fd_callgraph
