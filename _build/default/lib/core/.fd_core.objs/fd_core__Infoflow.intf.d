lib/core/infoflow.mli: Bidi Config Fd_callgraph Fd_frontend Fd_ir Icfg Logs Mkey
