(** Result reporting: FlowDroid-style XML output and text summaries.

    The reports "include full path information" (Section 5): each
    result carries the sink, the source, and the reconstructed chain
    of propagation statements, serialised in the XML shape FlowDroid's
    result files use ([DataFlowResults]/[Results]/[Result]/
    [Sink]+[Sources]). *)

open Fd_callgraph
module X = Fd_xml.Xml
module SS = Fd_frontend.Sourcesink

let node_attr n = Icfg.string_of_node n

(** [finding_to_xml fd] serialises one flow. *)
let finding_to_xml (fd : Bidi.finding) =
  X.Element
    ( "Result",
      [],
      [
        X.Element
          ( "Sink",
            [
              ("Statement", node_attr fd.Bidi.f_sink_node);
              ("Category", SS.string_of_category fd.Bidi.f_sink_cat);
            ]
            @ (match fd.Bidi.f_sink_tag with
              | Some t -> [ ("Tag", t) ]
              | None -> []),
            [] );
        X.Element
          ( "Sources",
            [],
            [
              X.Element
                ( "Source",
                  [
                    ("Statement", node_attr fd.Bidi.f_source.Taint.si_node);
                    ( "Category",
                      SS.string_of_category fd.Bidi.f_source.Taint.si_category );
                    ("Description", fd.Bidi.f_source.Taint.si_desc);
                  ]
                  @ (match fd.Bidi.f_source.Taint.si_tag with
                    | Some t -> [ ("Tag", t) ]
                    | None -> []),
                  [
                    X.Element
                      ( "TaintPath",
                        [],
                        List.map
                          (fun n ->
                            X.Element
                              ("PathElement", [ ("Statement", node_attr n) ], []))
                          fd.Bidi.f_path );
                  ] );
            ] );
      ] )

(** [to_xml result] serialises a whole analysis result. *)
let to_xml (result : Infoflow.result) =
  let stats = result.Infoflow.r_stats in
  X.Element
    ( "DataFlowResults",
      [ ("FileFormatVersion", "100"); ("TerminationState",
         if stats.Infoflow.st_budget_exhausted then "DataFlowIncomplete"
         else "Success") ],
      [
        X.Element
          ( "Results",
            [],
            List.map finding_to_xml result.Infoflow.r_findings );
        X.Element
          ( "PerformanceData",
            [],
            [
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "TotalRuntimeSeconds");
                    ("Value", Printf.sprintf "%.4f" stats.Infoflow.st_time) ],
                  [] );
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "ReachableMethods");
                    ("Value", string_of_int stats.Infoflow.st_reachable) ],
                  [] );
              X.Element
                ( "PerformanceEntry",
                  [ ("Name", "PathEdgePropagations");
                    ("Value", string_of_int stats.Infoflow.st_propagations) ],
                  [] );
            ] );
      ] )

(** [to_xml_string result] renders the XML document. *)
let to_xml_string result =
  "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n" ^ X.to_string (to_xml result)

(** [summary result] is a short human-readable digest. *)
let summary (result : Infoflow.result) =
  let n = List.length result.Infoflow.r_findings in
  let by_cat =
    List.fold_left
      (fun acc (fd : Bidi.finding) ->
        let c = SS.string_of_category fd.Bidi.f_sink_cat in
        let prev = Option.value (List.assoc_opt c acc) ~default:0 in
        (c, prev + 1) :: List.remove_assoc c acc)
      [] result.Infoflow.r_findings
  in
  Printf.sprintf "%d flow(s)%s; %.3f s, %d reachable methods, %d propagations"
    n
    (if by_cat = [] then ""
     else
       " ("
       ^ String.concat ", "
           (List.map (fun (c, k) -> Printf.sprintf "%s: %d" c k) by_cat)
       ^ ")")
    result.Infoflow.r_stats.Infoflow.st_time
    result.Infoflow.r_stats.Infoflow.st_reachable
    result.Infoflow.r_stats.Infoflow.st_propagations
