(** Pretty-printing of µJimple programs in the textual format.

    Output from this module parses back with {!Parser} (round-trip
    tested), and is also how Figure 1's dummy-main control-flow graph
    is rendered for inspection. *)

open Jclass

let pp_body buf (b : Body.t) =
  (* emit labels for every branch target *)
  let is_target = Array.make (Body.length b) false in
  Body.iter b (fun s ->
      match s.Stmt.s_kind with
      | Stmt.If (_, t) -> is_target.(t) <- true
      | Stmt.Goto t -> is_target.(t) <- true
      | _ -> ());
  let label i = Printf.sprintf "L%d" i in
  let declared =
    List.filter
      (fun (l : Stmt.local) -> l.Stmt.l_name <> "this")
      b.Body.locals
  in
  List.iter
    (fun (l : Stmt.local) ->
      Buffer.add_string buf
        (Printf.sprintf "    local %s : %s;\n" l.Stmt.l_name
           (Types.string_of_typ l.Stmt.l_type)))
    declared;
  Body.iter b (fun s ->
      let i = s.Stmt.s_idx in
      if is_target.(i) then Buffer.add_string buf (Printf.sprintf "   %s:\n" (label i));
      let line =
        match s.Stmt.s_kind with
        | Stmt.If (c, t) ->
            Printf.sprintf "if %s goto %s" (Stmt.string_of_cond c) (label t)
        | Stmt.Goto t -> Printf.sprintf "goto %s" (label t)
        | k -> Stmt.string_of_kind k
      in
      let tag =
        match s.Stmt.s_tag with
        | Some t -> Printf.sprintf " @%S" t
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "    %s%s;\n" line tag))

let pp_method buf (m : jmethod) =
  let sig_ = m.jm_sig in
  let mods =
    (if m.jm_static then "static " else "")
    ^ (if m.jm_abstract then "abstract " else "")
    ^ if m.jm_native then "native " else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "  %smethod %s %s(%s)" mods
       (Types.string_of_typ sig_.Types.m_ret)
       sig_.Types.m_name
       (String.concat ", " (List.map Types.string_of_typ sig_.Types.m_params)));
  match m.jm_body with
  | None -> Buffer.add_string buf ";\n"
  | Some b ->
      Buffer.add_string buf " {\n";
      pp_body buf b;
      Buffer.add_string buf "  }\n"

(** [class_to_string c] renders a full class declaration. *)
let class_to_string (c : Jclass.t) =
  let buf = Buffer.create 1024 in
  let kw = if c.c_is_interface then "interface" else "class" in
  Buffer.add_string buf (Printf.sprintf "%s %s" kw c.c_name);
  (match c.c_super with
  | Some s when s <> Types.object_class ->
      Buffer.add_string buf (" extends " ^ s)
  | _ -> ());
  if c.c_interfaces <> [] then
    Buffer.add_string buf (" implements " ^ String.concat ", " c.c_interfaces);
  Buffer.add_string buf " {\n";
  List.iter
    (fun (f : Types.field_sig) ->
      Buffer.add_string buf
        (Printf.sprintf "  field %s : %s;\n" f.Types.f_name
           (Types.string_of_typ f.Types.f_type)))
    c.c_fields;
  List.iter (fun m -> pp_method buf m) c.c_methods;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** [method_to_string m] renders one method. *)
let method_to_string m =
  let buf = Buffer.create 256 in
  pp_method buf m;
  Buffer.contents buf

(** [body_to_string b] renders one body (no header). *)
let body_to_string b =
  let buf = Buffer.create 256 in
  pp_body buf b;
  Buffer.contents buf

(** [cfg_to_string b] renders the control-flow graph of [b] as
    [idx: stmt  -> succs] lines — the format used to display Figure 1's
    dummy-main CFG. *)
let cfg_to_string (b : Body.t) =
  let buf = Buffer.create 256 in
  Body.iter b (fun s ->
      let succs = Body.succs b s.Stmt.s_idx in
      Buffer.add_string buf
        (Printf.sprintf "%3d: %-60s -> [%s]\n" s.Stmt.s_idx
           (Stmt.string_of_kind s.Stmt.s_kind)
           (String.concat "; " (List.map string_of_int succs))));
  Buffer.contents buf

(** [scene_to_string scene] renders all application (non-phantom)
    classes. *)
let scene_to_string scene =
  Scene.application_classes scene
  |> List.sort (fun a b -> String.compare a.c_name b.c_name)
  |> List.map class_to_string
  |> String.concat "\n"
