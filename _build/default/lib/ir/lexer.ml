(** Lexer for the textual µJimple format.

    Hand-written; tokens carry their line number for error reporting.
    Identifiers include dots (fully-qualified class names are single
    tokens) and the pseudo-name [<init>] is lexed as one identifier. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COLON
  | COMMA
  | HASH
  | AT
  | DOT
  | ASSIGN  (** [=] *)
  | IDENTITY  (** [:=] *)
  | OP of string  (** comparison or arithmetic operator *)
  | EOF

exception Lex_error of int * string

type t = { src : string; mutable pos : int; mutable line : int }

let create src = { src; pos = 0; line = 1 }
let fail t msg = raise (Lex_error (t.line, msg))
let eof t = t.pos >= String.length t.src
let peek t = if eof t then '\000' else t.src.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.src then '\000' else t.src.[t.pos + 1]

let advance t =
  if peek t = '\n' then t.line <- t.line + 1;
  t.pos <- t.pos + 1

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let rec skip_ws t =
  if eof t then ()
  else
    match peek t with
    | ' ' | '\t' | '\r' | '\n' ->
        advance t;
        skip_ws t
    | '/' when peek2 t = '/' ->
        while (not (eof t)) && peek t <> '\n' do
          advance t
        done;
        skip_ws t
    | '/' when peek2 t = '*' ->
        advance t;
        advance t;
        let rec go () =
          if eof t then fail t "unterminated comment"
          else if peek t = '*' && peek2 t = '/' then begin
            advance t;
            advance t
          end
          else begin
            advance t;
            go ()
          end
        in
        go ();
        skip_ws t
    | _ -> ()

let read_string t =
  (* opening quote consumed by caller *)
  let buf = Buffer.create 16 in
  let rec go () =
    if eof t then fail t "unterminated string literal"
    else
      match peek t with
      | '"' -> advance t
      | '\\' ->
          advance t;
          (match peek t with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | '0' .. '9' ->
              (* decimal escape \ddd as produced by OCaml's %S *)
              let d = Buffer.create 3 in
              let rec digits n =
                if n > 0 && (match peek t with '0' .. '9' -> true | _ -> false)
                then begin
                  Buffer.add_char d (peek t);
                  advance t;
                  digits (n - 1)
                end
              in
              Buffer.add_char d (peek t);
              advance t;
              digits 2;
              t.pos <- t.pos - 1;
              (* compensate the unconditional advance below *)
              Buffer.add_char buf (Char.chr (int_of_string (Buffer.contents d)))
          | c -> fail t (Printf.sprintf "unknown escape \\%c" c));
          advance t;
          go ()
      | c ->
          Buffer.add_char buf c;
          advance t;
          go ()
  in
  go ();
  Buffer.contents buf

(** Dotted identifier: [seg(.seg)*] where a segment is an identifier.
    A dot is included only when followed by an identifier start, so
    [x.foo#f] lexes the base as part of the dotted name — the parser
    splits on context.  We instead stop the dotted read before a
    segment if the char after the dot is not an ident start. *)
let read_ident t =
  let buf = Buffer.create 16 in
  let read_seg () =
    while (not (eof t)) && is_ident_char (peek t) do
      Buffer.add_char buf (peek t);
      advance t
    done
  in
  read_seg ();
  let rec dots () =
    if peek t = '.' && is_ident_start (peek2 t) then begin
      Buffer.add_char buf '.';
      advance t;
      read_seg ();
      dots ()
    end
  in
  dots ();
  Buffer.contents buf

let next t =
  skip_ws t;
  if eof t then EOF
  else
    let c = peek t in
    match c with
    | '{' -> advance t; LBRACE
    | '}' -> advance t; RBRACE
    | '(' -> advance t; LPAREN
    | ')' -> advance t; RPAREN
    | '[' -> advance t; LBRACKET
    | ']' -> advance t; RBRACKET
    | ';' -> advance t; SEMI
    | ',' -> advance t; COMMA
    | '#' -> advance t; HASH
    | '@' -> advance t; AT
    | '.' -> advance t; DOT
    | '"' -> advance t; STRING (read_string t)
    | ':' ->
        advance t;
        if peek t = '=' then begin advance t; IDENTITY end else COLON
    | '=' ->
        advance t;
        if peek t = '=' then begin advance t; OP "==" end else ASSIGN
    | '!' ->
        advance t;
        if peek t = '=' then begin advance t; OP "!=" end
        else fail t "unexpected '!'"
    | '<' ->
        (* either the operator <, <=, << or the <init>/<clinit> names;
           try the bracketed-name reading first and backtrack to the
           operator reading if no closing '>' follows *)
        let saved_pos = t.pos and saved_line = t.line in
        let bracketed =
          if is_ident_start (peek2 t) then begin
            advance t;
            let name = read_ident t in
            if peek t = '>' then begin
              advance t;
              Some (IDENT ("<" ^ name ^ ">"))
            end
            else begin
              t.pos <- saved_pos;
              t.line <- saved_line;
              None
            end
          end
          else None
        in
        (match bracketed with
        | Some tok -> tok
        | None ->
            advance t;
            if peek t = '=' then begin advance t; OP "<=" end
            else if peek t = '<' then begin advance t; OP "<<" end
            else OP "<")
    | '>' ->
        advance t;
        if peek t = '=' then begin advance t; OP ">=" end
        else if peek t = '>' then begin advance t; OP ">>" end
        else OP ">"
    | '+' | '*' | '/' | '%' | '&' | '|' | '^' | '~' ->
        advance t;
        OP (String.make 1 c)
    | '-' ->
        advance t;
        (match peek t with
        | '0' .. '9' ->
            let start = t.pos in
            while (not (eof t)) && (match peek t with '0' .. '9' -> true | _ -> false) do
              advance t
            done;
            INT (-int_of_string (String.sub t.src start (t.pos - start)))
        | _ -> OP "-")
    | '0' .. '9' ->
        let start = t.pos in
        while (not (eof t)) && (match peek t with '0' .. '9' -> true | _ -> false) do
          advance t
        done;
        INT (int_of_string (String.sub t.src start (t.pos - start)))
    | c when is_ident_start c -> IDENT (read_ident t)
    | c -> fail t (Printf.sprintf "unexpected character %C" c)

let string_of_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | HASH -> "'#'"
  | AT -> "'@'"
  | DOT -> "'.'"
  | ASSIGN -> "'='"
  | IDENTITY -> "':='"
  | OP s -> Printf.sprintf "operator %S" s
  | EOF -> "end of input"
