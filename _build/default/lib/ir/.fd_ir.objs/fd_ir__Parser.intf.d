lib/ir/parser.mli: Jclass
