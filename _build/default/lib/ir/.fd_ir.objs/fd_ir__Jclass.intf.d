lib/ir/jclass.mli: Body Types
