lib/ir/scene.mli: Jclass Types
