lib/ir/pretty.ml: Array Body Buffer Jclass List Printf Scene Stmt String Types
