lib/ir/parser.ml: Body Hashtbl Jclass Lexer List Option Printf Stmt String Types
