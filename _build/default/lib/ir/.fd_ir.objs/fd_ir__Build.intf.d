lib/ir/build.mli: Jclass Stmt Types
