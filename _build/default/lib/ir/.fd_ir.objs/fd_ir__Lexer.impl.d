lib/ir/lexer.ml: Buffer Char Printf String
