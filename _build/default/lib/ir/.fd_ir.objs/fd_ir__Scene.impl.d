lib/ir/scene.ml: Hashtbl Jclass List String Types
