lib/ir/body.ml: Array List Printf Stmt
