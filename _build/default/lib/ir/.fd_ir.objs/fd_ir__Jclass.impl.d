lib/ir/jclass.ml: Body List Option String Types
