lib/ir/build.ml: Array Body Hashtbl Jclass List Printf Stmt Types
