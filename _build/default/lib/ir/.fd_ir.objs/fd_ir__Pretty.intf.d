lib/ir/pretty.mli: Body Jclass Scene
