lib/ir/types.ml: Format Int List Printf String
