lib/ir/body.mli: Stmt
