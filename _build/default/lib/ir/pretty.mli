(** Pretty-printing of µJimple programs in the textual format.  Output
    parses back with {!Parser} (round-trip tested on the whole
    benchmark corpus). *)

val class_to_string : Jclass.t -> string
val method_to_string : Jclass.jmethod -> string
val body_to_string : Body.t -> string

val cfg_to_string : Body.t -> string
(** [idx: stmt -> \[succs\]] lines — the rendering used to display
    Figure 1's dummy-main CFG *)

val scene_to_string : Scene.t -> string
(** all application (non-phantom) classes, sorted by name *)
