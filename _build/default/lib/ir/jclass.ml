(** Classes and methods of the µJimple IR. *)

open Types

type jmethod = {
  jm_sig : method_sig;
  jm_static : bool;
  jm_abstract : bool;
  jm_native : bool;
  jm_body : Body.t option;
      (** [None] for abstract, native and phantom (library) methods *)
}

let mk_method ?(static = false) ?(abstract = false) ?(native = false) ?body
    jm_sig =
  { jm_sig; jm_static = static; jm_abstract = abstract; jm_native = native;
    jm_body = body }

(** [has_body m] holds when [m] carries analysable code. *)
let has_body m = Option.is_some m.jm_body

type t = {
  c_name : string;
  c_super : string option;  (** [None] only for [java.lang.Object] *)
  c_interfaces : string list;
  c_is_interface : bool;
  c_fields : field_sig list;
  c_methods : jmethod list;
  c_phantom : bool;
      (** a library/framework class known only by name and hierarchy
          position; its methods have no bodies (Soot's phantom refs) *)
}

let mk ?(super = Some Types.object_class) ?(interfaces = [])
    ?(is_interface = false) ?(fields = []) ?(methods = []) ?(phantom = false)
    c_name =
  let super = if c_name = Types.object_class then None else super in
  {
    c_name;
    c_super = super;
    c_interfaces = interfaces;
    c_is_interface = is_interface;
    c_fields = fields;
    c_methods = methods;
    c_phantom = phantom;
  }

(** [find_method c name params] looks up a method declared directly on
    [c] by sub-signature.  Matching is by name and arity: declared
    parameter types at call sites are frequently approximated (the
    textual frontend reads them as [java.lang.Object]), and µJimple
    programs do not use same-arity overloading. *)
let find_method c name params =
  List.find_opt
    (fun m ->
      String.equal m.jm_sig.m_name name
      && List.length m.jm_sig.m_params = List.length params)
    c.c_methods

(** [find_method_named c name] looks up by name alone, used when the
    arity is not statically known (textual frontend). *)
let find_method_named c name =
  List.find_opt (fun m -> String.equal m.jm_sig.m_name name) c.c_methods

(** [declares_field c f] holds when [c] declares a field named like
    [f]. *)
let declares_field c fname =
  List.exists (fun f -> String.equal f.f_name fname) c.c_fields
