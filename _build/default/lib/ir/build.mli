(** Builder DSL for µJimple programs — how the benchmark suites
    (DroidBench, SecuriBench-µ, the paper's listings) are authored: an
    imperative per-method statement buffer with symbolic labels,
    interned locals and an automatic trailing [return]. *)

open Types
open Stmt

type mb
(** a method body under construction *)

exception Build_error of string

(* ---------------- immediates ---------------- *)

val i : int -> imm
val s : string -> imm
val nul : imm
val v : local -> imm

val fld : ?ty:typ -> string -> string -> field_sig
(** [fld cls name] builds a field signature *)

(* ---------------- locals & parameters ---------------- *)

val local : mb -> ?ty:typ -> string -> local
(** interned: equal names yield the same local *)

val this : mb -> local
(** binds the receiver via an [@this] identity (idempotent) *)

val param : mb -> int -> ?ty:typ -> ?tag:string -> string -> local
(** binds parameter [n] via an identity statement; [tag] marks it as a
    ground-truth source observation point *)

(* ---------------- straight-line statements ---------------- *)

val set : mb -> ?tag:string -> local -> expr -> unit
val move : mb -> ?tag:string -> local -> local -> unit
val const : mb -> ?tag:string -> local -> imm -> unit
val load : mb -> ?tag:string -> local -> local -> field_sig -> unit
val store : mb -> ?tag:string -> local -> field_sig -> imm -> unit
val loadstatic : mb -> ?tag:string -> local -> field_sig -> unit
val storestatic : mb -> ?tag:string -> field_sig -> imm -> unit
val aload : mb -> ?tag:string -> local -> local -> imm -> unit
val astore : mb -> ?tag:string -> local -> imm -> imm -> unit
val binop : mb -> ?tag:string -> local -> string -> imm -> imm -> unit
val cast : mb -> ?tag:string -> local -> typ -> imm -> unit
val newobj : mb -> ?tag:string -> local -> string -> unit
val newarray : mb -> ?tag:string -> local -> typ -> imm -> unit

(* ---------------- calls ---------------- *)

val vcall :
  mb -> ?tag:string -> ?ret:local -> local -> string -> string -> imm list ->
  unit
(** [vcall m recv cls name args] — virtual call, result optionally
    bound to [ret] *)

val scall :
  mb -> ?tag:string -> ?ret:local -> string -> string -> imm list -> unit
(** static call *)

val spcall :
  mb -> ?tag:string -> ?ret:local -> local -> string -> string -> imm list ->
  unit
(** special call (constructors, super) *)

val newc : mb -> ?tag:string -> local -> string -> imm list -> unit
(** allocation plus constructor invocation *)

(* ---------------- control flow ---------------- *)

val label : mb -> string -> unit
(** attaches a label to the next emitted statement *)

val ifgoto : mb -> ?tag:string -> imm -> cmpop -> imm -> string -> unit
val goto : mb -> ?tag:string -> string -> unit
val ret : mb -> unit
val retv : mb -> ?tag:string -> imm -> unit
val throw : mb -> ?tag:string -> imm -> unit
val nop : mb -> unit

(* ---------------- methods and classes ---------------- *)

type mspec = string -> Jclass.jmethod
(** a method awaiting its declaring class name *)

val meth :
  string -> ?static:bool -> ?params:typ list -> ?ret:typ -> (mb -> unit) ->
  mspec
(** [meth name build] declares a method whose body [build] emits; a
    trailing [return] is appended when control can fall off the end.
    @raise Build_error on undefined or duplicate labels. *)

val abstract_meth : string -> ?params:typ list -> ?ret:typ -> mspec
val native_meth : string -> ?static:bool -> ?params:typ list -> ?ret:typ -> mspec

val cls :
  string -> ?super:string -> ?interfaces:string list ->
  ?fields:(string * typ) list -> mspec list -> Jclass.t
(** assembles a class from method specs *)

val iface : string -> ?extends:string list -> mspec list -> Jclass.t
