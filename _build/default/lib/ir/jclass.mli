(** Classes and methods of the µJimple IR. *)

open Types

type jmethod = {
  jm_sig : method_sig;
  jm_static : bool;
  jm_abstract : bool;
  jm_native : bool;
  jm_body : Body.t option;
      (** [None] for abstract, native and phantom (library) methods *)
}

val mk_method :
  ?static:bool -> ?abstract:bool -> ?native:bool -> ?body:Body.t ->
  method_sig -> jmethod

val has_body : jmethod -> bool

type t = {
  c_name : string;
  c_super : string option;  (** [None] only for [java.lang.Object] *)
  c_interfaces : string list;
  c_is_interface : bool;
  c_fields : field_sig list;
  c_methods : jmethod list;
  c_phantom : bool;
      (** a library/framework class known only by name and hierarchy
          position (Soot's phantom refs) *)
}

val mk :
  ?super:string option -> ?interfaces:string list -> ?is_interface:bool ->
  ?fields:field_sig list -> ?methods:jmethod list -> ?phantom:bool ->
  string -> t

val find_method : t -> string -> typ list -> jmethod option
(** declared directly on the class; matching by name and arity (see
    DESIGN.md) *)

val find_method_named : t -> string -> jmethod option
val declares_field : t -> string -> bool
