(** Method bodies and their intra-procedural control-flow graphs.
    Successor and predecessor maps are computed once at creation — the
    backward alias analysis walks predecessors as often as the forward
    analysis walks successors. *)

open Stmt

type t = {
  locals : local list;
  stmts : Stmt.t array;
  succs : int list array;
  preds : int list array;
}

exception Malformed of string

val create : locals:local list -> Stmt.t list -> t
(** [create ~locals stmts] re-indexes the statements and computes the
    CFG.
    @raise Malformed if a branch target is out of range or control can
    fall off the end. *)

val length : t -> int
val stmt : t -> int -> Stmt.t
val succs : t -> int -> int list
val preds : t -> int -> int list
val iter : t -> (Stmt.t -> unit) -> unit
val fold : t -> (Stmt.t -> 'a -> 'a) -> 'a -> 'a

val exit_stmts : t -> int list
(** indices of all return/throw statements *)

val find_tagged : t -> string -> Stmt.t list
(** statements carrying a ground-truth marker *)

val param_locals : t -> local option * (int * local) list
(** the [@this] local (if bound) and the parameter-index→local map
    from the identity statements *)

val uses_local : Stmt.t -> local -> bool
(** does the statement read the local in any operand position? *)
