(** Parser for the textual µJimple format.

    Grammar (informally):

    {v
    unit     ::= class*
    class    ::= ("class"|"interface") NAME ["extends" NAME]
                 ["implements" NAME ("," NAME)*] "{" member* "}"
    member   ::= "field" NAME ":" TYPE ";"
               | mods "method" TYPE NAME "(" [TYPE ("," TYPE)*] ")"
                 (";" | "{" stmt* "}")
    mods     ::= ("static"|"abstract"|"native")*
    stmt     ::= "local" NAME ":" TYPE ";"
               | LABEL ":"
               | NAME ":=" "@this" ":" NAME ";"
               | NAME ":=" "@parameterN" ";"
               | lvalue "=" rhs [tag] ";"
               | call [tag] ";"
               | "if" imm CMP imm "goto" LABEL ";"
               | "goto" LABEL ";" | "return" [imm] ";" | "throw" imm ";"
               | "nop" ";"
    tag      ::= "@" STRING
    v}

    Instance field/method references are written [base.Class#member];
    the base must be a local already in scope, which is how the dotted
    prefix is split.  Static field loads are written
    [static Class#field]. *)

open Types
open Stmt
open Lexer

exception Parse_error of int * string

type st = {
  lx : Lexer.t;
  mutable tok : token;
  mutable cls_name : string;
  (* per-method state *)
  mutable locals : (string, local) Hashtbl.t;
  mutable order : local list;
}

let fail st msg = raise (Parse_error (st.lx.Lexer.line, msg))

let advance st = st.tok <- Lexer.next st.lx

let expect st tok =
  if st.tok = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s"
         (Lexer.string_of_token tok)
         (Lexer.string_of_token st.tok))

let ident st =
  match st.tok with
  | IDENT s ->
      advance st;
      s
  | t -> fail st (Printf.sprintf "expected an identifier, found %s" (Lexer.string_of_token t))

let kw st k =
  match st.tok with
  | IDENT s when s = k -> advance st
  | t ->
      fail st
        (Printf.sprintf "expected keyword %S, found %s" k
           (Lexer.string_of_token t))

let peek_ident st = match st.tok with IDENT s -> Some s | _ -> None

(* ---------------- types ---------------- *)

let parse_type st =
  let base = ident st in
  let ty = ref (typ_of_string base) in
  let rec arrays () =
    if st.tok = LBRACKET then begin
      advance st;
      expect st RBRACKET;
      ty := Array !ty;
      arrays ()
    end
  in
  arrays ();
  !ty

(* ---------------- locals ---------------- *)

let get_local st ?(ty = Ref Types.object_class) name =
  match Hashtbl.find_opt st.locals name with
  | Some l -> l
  | None ->
      let l = { l_name = name; l_type = ty } in
      Hashtbl.replace st.locals name l;
      st.order <- l :: st.order;
      l

let known_local st name = Hashtbl.mem st.locals name

(* [split_ref st dotted] splits "base.Cls.Name" into (local, class) when
   the first segment is a local in scope; returns None for a plain
   dotted name. *)
let split_ref st dotted =
  match String.index_opt dotted '.' with
  | None -> None
  | Some i ->
      let base = String.sub dotted 0 i in
      if known_local st base then
        Some (Hashtbl.find st.locals base, String.sub dotted (i + 1) (String.length dotted - i - 1))
      else None

(* ---------------- immediates ---------------- *)

let parse_imm st =
  match st.tok with
  | INT n ->
      advance st;
      Iconst (CInt n)
  | STRING s ->
      advance st;
      Iconst (CStr s)
  | IDENT "null" ->
      advance st;
      Iconst CNull
  | IDENT name ->
      advance st;
      Iloc (get_local st name)
  | t -> fail st (Printf.sprintf "expected an operand, found %s" (Lexer.string_of_token t))

(* ---------------- calls ---------------- *)

let parse_args st =
  expect st LPAREN;
  if st.tok = RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let a = parse_imm st in
      if st.tok = COMMA then begin
        advance st;
        go (a :: acc)
      end
      else begin
        expect st RPAREN;
        List.rev (a :: acc)
      end
    in
    go []
  end

let mk_sig cls name args ret =
  {
    m_class = cls;
    m_name = name;
    m_params = List.map (fun _ -> Ref Types.object_class) args;
    m_ret = ret;
  }

(* after the invoke keyword *)
let parse_invoke st kind =
  match kind with
  | Static ->
      let cls = ident st in
      expect st HASH;
      let name = ident st in
      let args = parse_args st in
      { i_kind = Static; i_sig = mk_sig cls name args (Ref Types.object_class);
        i_recv = None; i_args = args }
  | Virtual | Special ->
      let dotted = ident st in
      let recv, cls =
        match split_ref st dotted with
        | Some (l, cls) -> (l, cls)
        | None ->
            fail st
              (Printf.sprintf
                 "receiver of instance call must be a local in scope: %S"
                 dotted)
      in
      expect st HASH;
      let name = ident st in
      let args = parse_args st in
      { i_kind = kind; i_sig = mk_sig cls name args (Ref Types.object_class);
        i_recv = Some recv; i_args = args }

let invoke_kw = function
  | "virtualinvoke" -> Some Virtual
  | "specialinvoke" -> Some Special
  | "staticinvoke" -> Some Static
  | _ -> None

(* ---------------- rhs of assignments ---------------- *)

let parse_rhs st : expr =
  match st.tok with
  | LPAREN ->
      (* cast *)
      advance st;
      let ty = parse_type st in
      expect st RPAREN;
      let a = parse_imm st in
      Ecast (ty, a)
  | IDENT "new" ->
      advance st;
      Enew (ident st)
  | IDENT "newarray" ->
      advance st;
      let base = ident st in
      let ty = ref (typ_of_string base) in
      (* consume any number of "[]" element-type suffixes, then the
         final "[n]" length *)
      let rec go () =
        expect st LBRACKET;
        if st.tok = RBRACKET then begin
          advance st;
          ty := Array !ty;
          go ()
        end
        else begin
          let n = parse_imm st in
          expect st RBRACKET;
          n
        end
      in
      let n = go () in
      Enewarray (!ty, n)
  | IDENT "lengthof" ->
      advance st;
      let name = ident st in
      Elength (get_local st name)
  | IDENT "static" ->
      advance st;
      let cls = ident st in
      expect st HASH;
      let fname = ident st in
      Estatic (mk_field cls fname)
  | IDENT "neg" ->
      advance st;
      let a = parse_imm st in
      Eunop ("neg", a)
  | IDENT k when invoke_kw k <> None ->
      advance st;
      Einvoke (parse_invoke st (Option.get (invoke_kw k)))
  | _ -> (
      (* immediate, field load, array load, binop, instanceof *)
      match st.tok with
      | IDENT dotted when String.contains dotted '.' -> (
          advance st;
          match split_ref st dotted with
          | Some (base, cls) when st.tok = HASH ->
              advance st;
              let fname = ident st in
              Efield (base, mk_field cls fname)
          | _ ->
              fail st
                (Printf.sprintf
                   "dotted reference %S: base is not a local in scope" dotted))
      | _ -> (
          let a = parse_imm st in
          match (a, st.tok) with
          | Iloc base, LBRACKET ->
              advance st;
              let idx = parse_imm st in
              expect st RBRACKET;
              Earray (base, idx)
          | a, IDENT "instanceof" ->
              advance st;
              let ty = parse_type st in
              Einstanceof (a, ty)
          | a, OP op ->
              advance st;
              let b = parse_imm st in
              Ebinop (op, a, b)
          | a, _ -> Eimm a))

(* ---------------- statements ---------------- *)

type pstmt =
  | Ps of Stmt.kind  (** resolved *)
  | Pif of cond * string
  | Pgoto of string

let cmp_of_op st = function
  | "==" -> Ceq
  | "!=" -> Cne
  | "<" -> Clt
  | "<=" -> Cle
  | ">" -> Cgt
  | ">=" -> Cge
  | op -> fail st (Printf.sprintf "not a comparison operator: %S" op)

let parse_tag st =
  if st.tok = AT then begin
    advance st;
    match st.tok with
    | STRING s ->
        advance st;
        Some s
    | t -> fail st (Printf.sprintf "expected a tag string after '@', found %s" (Lexer.string_of_token t))
  end
  else None

(* parse one statement; returns (pstmt, tag) or a label/local decl
   handled via the callbacks *)
let parse_body st =
  let rev : (pstmt * string option * string list) list ref = ref [] in
  let pending_labels = ref [] in
  let emit p tag =
    rev := (p, tag, !pending_labels) :: !rev;
    pending_labels := []
  in
  let finish_stmt p =
    let tag = parse_tag st in
    expect st SEMI;
    emit p tag
  in
  let rec go () =
    match st.tok with
    | RBRACE -> ()
    | IDENT "local" ->
        advance st;
        let name = ident st in
        expect st COLON;
        let ty = parse_type st in
        ignore (get_local st ~ty name);
        expect st SEMI;
        go ()
    | IDENT "if" ->
        advance st;
        let a = parse_imm st in
        let op = match st.tok with
          | OP o -> advance st; cmp_of_op st o
          | t -> fail st (Printf.sprintf "expected a comparison, found %s" (Lexer.string_of_token t))
        in
        let b = parse_imm st in
        kw st "goto";
        let target = ident st in
        finish_stmt (Pif ({ c_op = op; c_left = a; c_right = b }, target));
        go ()
    | IDENT "goto" ->
        advance st;
        let target = ident st in
        finish_stmt (Pgoto target);
        go ()
    | IDENT "return" ->
        advance st;
        if st.tok = SEMI then finish_stmt (Ps (Return None))
        else begin
          let a = parse_imm st in
          finish_stmt (Ps (Return (Some a)))
        end;
        go ()
    | IDENT "throw" ->
        advance st;
        let a = parse_imm st in
        finish_stmt (Ps (Throw a));
        go ()
    | IDENT "nop" ->
        advance st;
        finish_stmt (Ps Nop);
        go ()
    | IDENT k when invoke_kw k <> None ->
        advance st;
        let inv = parse_invoke st (Option.get (invoke_kw k)) in
        finish_stmt (Ps (InvokeStmt inv));
        go ()
    | IDENT "static" ->
        (* static field store: static C#f = imm; *)
        advance st;
        let cls = ident st in
        expect st HASH;
        let fname = ident st in
        expect st ASSIGN;
        let value = parse_imm st in
        finish_stmt (Ps (Assign (Lstatic (mk_field cls fname), Eimm value)));
        go ()
    | IDENT name -> (
        advance st;
        match st.tok with
        | COLON ->
            (* a label *)
            advance st;
            pending_labels := name :: !pending_labels;
            go ()
        | IDENTITY ->
            advance st;
            expect st AT;
            let what = ident st in
            if what = "this" then begin
              expect st COLON;
              let cls = ident st in
              let l = get_local st ~ty:(Ref cls) name in
              finish_stmt (Ps (Identity (l, Ithis cls)))
            end
            else if String.length what > 9 && String.sub what 0 9 = "parameter"
            then begin
              let n =
                try int_of_string (String.sub what 9 (String.length what - 9))
                with _ -> fail st ("bad parameter reference @" ^ what)
              in
              let l = get_local st name in
              finish_stmt (Ps (Identity (l, Iparam n)))
            end
            else fail st ("unknown identity reference @" ^ what);
            go ()
        | LBRACKET when known_local st name ->
            (* array store: x[i] = imm; *)
            advance st;
            let idx = parse_imm st in
            expect st RBRACKET;
            expect st ASSIGN;
            let value = parse_imm st in
            finish_stmt
              (Ps (Assign (Larray (Hashtbl.find st.locals name, idx), Eimm value)));
            go ()
        | ASSIGN ->
            advance st;
            let rhs = parse_rhs st in
            let l = get_local st name in
            finish_stmt (Ps (Assign (Llocal l, rhs)));
            go ()
        | _ when String.contains name '.' -> (
            (* instance field store: x.C#f = imm; *)
            match split_ref st name with
            | Some (base, cls) ->
                expect st HASH;
                let fname = ident st in
                expect st ASSIGN;
                let value = parse_imm st in
                finish_stmt
                  (Ps (Assign (Lfield (base, mk_field cls fname), Eimm value)));
                go ()
            | None ->
                fail st
                  (Printf.sprintf "dotted name %S: base is not a local in scope"
                     name))
        | t ->
            fail st
              (Printf.sprintf "unexpected %s after %S"
                 (Lexer.string_of_token t) name))
    | t -> fail st (Printf.sprintf "unexpected %s in method body" (Lexer.string_of_token t))
  in
  go ();
  (* seal: resolve labels *)
  let items = List.rev !rev in
  let items =
    (* guarantee a final return (labels at the very end attach to it) *)
    match List.rev items with
    | (Ps (Return _ | Throw _), _, _) :: _ when !pending_labels = [] -> items
    | _ -> items @ [ (Ps (Return None), None, !pending_labels) ]
  in
  let labels = Hashtbl.create 7 in
  List.iteri
    (fun idx (_, _, ls) ->
      List.iter
        (fun l ->
          if Hashtbl.mem labels l then fail st (Printf.sprintf "duplicate label %S" l);
          Hashtbl.replace labels l idx)
        ls)
    items;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> fail st (Printf.sprintf "undefined label %S" l)
  in
  let stmts =
    List.map
      (fun (p, tag, _) ->
        let kind =
          match p with
          | Ps k -> k
          | Pif (c, l) -> If (c, target l)
          | Pgoto l -> Goto (target l)
        in
        { s_idx = 0; s_kind = kind; s_tag = tag })
      items
  in
  Body.create ~locals:(List.rev st.order) stmts

(* ---------------- members ---------------- *)

let parse_method st ~static ~abstract ~native =
  kw st "method";
  let ret = parse_type st in
  let name = ident st in
  expect st LPAREN;
  let params =
    if st.tok = RPAREN then []
    else begin
      let rec go acc =
        let t = parse_type st in
        if st.tok = COMMA then begin
          advance st;
          go (t :: acc)
        end
        else List.rev (t :: acc)
      in
      go []
    end
  in
  expect st RPAREN;
  let msig = { m_class = st.cls_name; m_name = name; m_params = params; m_ret = ret } in
  if st.tok = SEMI then begin
    advance st;
    Jclass.mk_method ~static ~abstract ~native msig
  end
  else begin
    expect st LBRACE;
    st.locals <- Hashtbl.create 7;
    st.order <- [];
    let body = parse_body st in
    expect st RBRACE;
    Jclass.mk_method ~static msig ~body
  end

let parse_class st =
  let is_interface =
    match peek_ident st with
    | Some "class" ->
        advance st;
        false
    | Some "interface" ->
        advance st;
        true
    | _ ->
        fail st
          (Printf.sprintf "expected 'class' or 'interface', found %s"
             (Lexer.string_of_token st.tok))
  in
  let name = ident st in
  st.cls_name <- name;
  let super = ref Types.object_class in
  let interfaces = ref [] in
  (match peek_ident st with
  | Some "extends" ->
      advance st;
      super := ident st
  | _ -> ());
  (match peek_ident st with
  | Some "implements" ->
      advance st;
      let rec go () =
        interfaces := ident st :: !interfaces;
        if st.tok = COMMA then begin
          advance st;
          go ()
        end
      in
      go ()
  | _ -> ());
  expect st LBRACE;
  let fields = ref [] and methods = ref [] in
  let rec members () =
    match st.tok with
    | RBRACE -> advance st
    | IDENT "field" ->
        advance st;
        let fname = ident st in
        expect st COLON;
        let ty = parse_type st in
        expect st SEMI;
        fields := { f_class = name; f_name = fname; f_type = ty } :: !fields;
        members ()
    | IDENT _ ->
        let static = ref false and abstract = ref false and native = ref false in
        let rec mods () =
          match peek_ident st with
          | Some "static" -> advance st; static := true; mods ()
          | Some "abstract" -> advance st; abstract := true; mods ()
          | Some "native" -> advance st; native := true; mods ()
          | _ -> ()
        in
        mods ();
        methods :=
          parse_method st ~static:!static ~abstract:!abstract ~native:!native
          :: !methods;
        members ()
    | t -> fail st (Printf.sprintf "unexpected %s in class body" (Lexer.string_of_token t))
  in
  members ();
  Jclass.mk name
    ~super:(if is_interface then Some Types.object_class else Some !super)
    ~interfaces:(List.rev !interfaces) ~is_interface
    ~fields:(List.rev !fields) ~methods:(List.rev !methods)

(** [parse_string src] parses a compilation unit: a sequence of class
    and interface declarations.
    @raise Parse_error with a line number on malformed input. *)
let parse_string src =
  let lx = Lexer.create src in
  let st =
    {
      lx;
      tok = EOF;
      cls_name = "";
      locals = Hashtbl.create 7;
      order = [];
    }
  in
  (try advance st
   with Lexer.Lex_error (line, msg) -> raise (Parse_error (line, msg)));
  let rec go acc =
    match st.tok with
    | EOF -> List.rev acc
    | _ -> (
        match
          try Ok (parse_class st)
          with Lexer.Lex_error (line, msg) -> Error (line, msg)
        with
        | Ok c -> go (c :: acc)
        | Error (line, msg) -> raise (Parse_error (line, msg)))
  in
  go []
