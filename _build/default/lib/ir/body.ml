(** Method bodies and their intra-procedural control-flow graphs.

    A body is an array of statements; control flows from each
    statement to its syntactic successor unless it branches or
    returns.  Successor and predecessor maps are computed once when
    the body is created — the backward alias analysis walks
    predecessors as often as the forward analysis walks successors. *)

open Stmt

type t = {
  locals : local list;
  stmts : Stmt.t array;
  succs : int list array;
  preds : int list array;
}

exception Malformed of string

let compute_succs stmts =
  let n = Array.length stmts in
  let check_target s tgt =
    if tgt < 0 || tgt >= n then
      raise
        (Malformed
           (Printf.sprintf "statement %d branches to invalid target %d"
              s.s_idx tgt))
  in
  Array.map
    (fun s ->
      match s.s_kind with
      | Return _ | Throw _ -> []
      | Goto tgt ->
          check_target s tgt;
          [ tgt ]
      | If (_, tgt) ->
          check_target s tgt;
          if s.s_idx + 1 >= n then
            raise
              (Malformed
                 (Printf.sprintf
                    "conditional at %d falls through past the end" s.s_idx));
          if tgt = s.s_idx + 1 then [ tgt ] else [ s.s_idx + 1; tgt ]
      | Assign _ | InvokeStmt _ | Identity _ | Nop ->
          if s.s_idx + 1 >= n then
            raise
              (Malformed
                 (Printf.sprintf "statement %d falls through past the end"
                    s.s_idx))
          else [ s.s_idx + 1 ])
    stmts

(** [create ~locals stmts] seals a statement list into a body,
    re-indexing statements and computing the CFG.
    @raise Malformed if a branch target is out of range or control can
    fall off the end of the body. *)
let create ~locals stmts =
  let stmts =
    Array.of_list (List.mapi (fun i s -> { s with s_idx = i }) stmts)
  in
  if Array.length stmts = 0 then raise (Malformed "empty body");
  let succs = compute_succs stmts in
  let preds = Array.make (Array.length stmts) [] in
  Array.iteri
    (fun i ss -> List.iter (fun j -> preds.(j) <- i :: preds.(j)) ss)
    succs;
  Array.iteri (fun j ps -> preds.(j) <- List.rev ps) preds;
  { locals; stmts; succs; preds }

let length b = Array.length b.stmts

(** [stmt b i] is the [i]-th statement. *)
let stmt b i = b.stmts.(i)

(** [succs b i] is the control-flow successors of statement [i]. *)
let succs b i = b.succs.(i)

(** [preds b i] is the control-flow predecessors of statement [i]. *)
let preds b i = b.preds.(i)

(** [iter b f] applies [f] to every statement in index order. *)
let iter b f = Array.iter f b.stmts

(** [fold b f acc] folds [f] over the statements in index order. *)
let fold b f acc = Array.fold_left (fun acc s -> f s acc) acc b.stmts

(** [exit_stmts b] is the indices of all return/throw statements. *)
let exit_stmts b =
  fold b
    (fun s acc ->
      match s.s_kind with Return _ | Throw _ -> s.s_idx :: acc | _ -> acc)
    []
  |> List.rev

(** [find_tagged b tag] returns the statements carrying ground-truth
    marker [tag]. *)
let find_tagged b tag =
  fold b (fun s acc -> if s.s_tag = Some tag then s :: acc else acc) []
  |> List.rev

(** [param_locals b] maps parameter index to the local it is bound to
    by an identity statement, and the [@this] local if present. *)
let param_locals b =
  fold b
    (fun s (this, params) ->
      match s.s_kind with
      | Identity (l, Ithis _) -> (Some l, params)
      | Identity (l, Iparam n) -> (this, (n, l) :: params)
      | _ -> (this, params))
    (None, [])

(** [uses_local s l] holds when statement [s] reads local [l] (in any
    operand position, including receiver and branch conditions). *)
let uses_local s l =
  let imm_uses = function Iloc x -> equal_local x l | Iconst _ -> false in
  let expr_uses = function
    | Eimm i -> imm_uses i
    | Efield (x, _) -> equal_local x l
    | Estatic _ -> false
    | Earray (x, i) -> equal_local x l || imm_uses i
    | Ebinop (_, a, b) -> imm_uses a || imm_uses b
    | Eunop (_, a) -> imm_uses a
    | Ecast (_, a) -> imm_uses a
    | Einstanceof (a, _) -> imm_uses a
    | Enew _ -> false
    | Enewarray (_, n) -> imm_uses n
    | Elength x -> equal_local x l
    | Einvoke inv ->
        (match inv.i_recv with Some r -> equal_local r l | None -> false)
        || List.exists imm_uses inv.i_args
  in
  match s.s_kind with
  | Assign (lv, e) ->
      (match lv with
      | Llocal _ -> false
      | Lfield (x, _) -> equal_local x l
      | Lstatic _ -> false
      | Larray (x, i) -> equal_local x l || imm_uses i)
      || expr_uses e
  | InvokeStmt inv ->
      (match inv.i_recv with Some r -> equal_local r l | None -> false)
      || List.exists imm_uses inv.i_args
  | Identity _ -> false
  | If (c, _) -> imm_uses c.c_left || imm_uses c.c_right
  | Goto _ | Nop -> false
  | Return (Some i) -> imm_uses i
  | Return None -> false
  | Throw i -> imm_uses i
