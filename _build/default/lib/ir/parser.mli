(** Parser for the textual µJimple format (see the grammar sketch in
    the implementation header and the shipped example under
    [examples/apps/leakage_app]).

    Instance field/method references are written [base.Class#member]
    where [base] must be a local already in scope; static field loads
    are written [static Class#field]; ground-truth tags are [@"name"]
    suffixes before the semicolon. *)

exception Parse_error of int * string
(** 1-based line number and description *)

val parse_string : string -> Jclass.t list
(** [parse_string src] parses a compilation unit: a sequence of class
    and interface declarations.
    @raise Parse_error on malformed input
    @raise Lexer.Lex_error on lexical errors *)
