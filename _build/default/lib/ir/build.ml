(** Builder DSL for µJimple programs.

    The benchmark suites (DroidBench, SecuriBench-µ, the paper's
    listings) are authored with this module.  It provides an imperative
    per-method statement buffer with symbolic labels, interned locals,
    and an automatic trailing [return], so that a benchmark app reads
    close to the Java it mirrors:

    {[
      let cls =
        Build.cls "de.ecspride.MainActivity" ~super:"android.app.Activity"
          [ Build.meth "onCreate" ~params:[ Types.Ref "android.os.Bundle" ]
              (fun m ->
                let this = Build.this m in
                let imei = Build.local m "imei" in
                Build.vcall m ~ret:imei imei_src "getDeviceId" [];
                Build.vcall m ~tag:"sink" sms "sendTextMessage"
                  [ Build.s "+49 1234"; Build.v imei ]) ]
    ]} *)

open Types
open Stmt

type pending_kind =
  | Pplain of Stmt.kind  (** no label targets inside *)
  | Pif of cond * string
  | Pgoto of string

type pending = {
  p_kind : pending_kind;
  p_tag : string option;
  mutable p_labels : string list;  (** labels attached to this statement *)
}

type mb = {
  mb_class : string;  (** enclosing class, for [@this] identities *)
  mutable mb_rev : pending list;
  mb_locals : (string, local) Hashtbl.t;
  mutable mb_order : local list;  (** declaration order, reversed *)
  mutable mb_pending_labels : string list;
}

exception Build_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Build_error s)) fmt

(* ---------------- immediates ---------------- *)

(** [i n] is the integer constant [n] as an immediate. *)
let i n = Iconst (CInt n)

(** [s str] is the string constant [str]. *)
let s str = Iconst (CStr str)

(** [nul] is the null constant. *)
let nul = Iconst CNull

(** [v l] uses local [l] as an immediate operand. *)
let v l = Iloc l

(** [fld ?ty cls name] builds a field signature. *)
let fld = Types.mk_field

(* ---------------- locals ---------------- *)

(** [local m ?ty name] interns the local [name] in method [m],
    declaring it on first use. *)
let local m ?(ty = Ref Types.object_class) name =
  match Hashtbl.find_opt m.mb_locals name with
  | Some l -> l
  | None ->
      let l = { l_name = name; l_type = ty } in
      Hashtbl.replace m.mb_locals name l;
      m.mb_order <- l :: m.mb_order;
      l

let push m ?tag kind =
  let p = { p_kind = kind; p_tag = tag; p_labels = m.mb_pending_labels } in
  m.mb_pending_labels <- [];
  m.mb_rev <- p :: m.mb_rev

(** [this m] binds and returns the receiver local via an [@this]
    identity statement (idempotent). *)
let this m =
  match Hashtbl.find_opt m.mb_locals "this" with
  | Some l -> l
  | None ->
      let l = local m ~ty:(Ref m.mb_class) "this" in
      push m (Pplain (Identity (l, Ithis m.mb_class)));
      l

(** [param m n ?ty ?tag name] binds parameter [n] to a fresh local via
    an identity statement.  [tag] marks the identity statement, used
    when the parameter is a ground-truth source (callback parameter
    sources). *)
let param m n ?(ty = Ref Types.object_class) ?tag name =
  let l = local m ~ty name in
  push m ?tag (Pplain (Identity (l, Iparam n)));
  l

(* ---------------- straight-line statements ---------------- *)

(** [set m ?tag x e] emits [x = e]. *)
let set m ?tag x (e : expr) = push m ?tag (Pplain (Assign (Llocal x, e)))

(** [move m x y] emits the local-to-local copy [x = y]. *)
let move m ?tag x y = set m ?tag x (Eimm (Iloc y))

(** [const m x c] emits [x = c] for an immediate constant. *)
let const m ?tag x c = set m ?tag x (Eimm c)

(** [load m x y f] emits the field load [x = y.f]. *)
let load m ?tag x y f = set m ?tag x (Efield (y, f))

(** [store m y f value] emits the field store [y.f = value]. *)
let store m ?tag y f value = push m ?tag (Pplain (Assign (Lfield (y, f), Eimm value)))

(** [loadstatic m x f] emits [x = static f]. *)
let loadstatic m ?tag x f = set m ?tag x (Estatic f)

(** [storestatic m f value] emits [static f = value]. *)
let storestatic m ?tag f value =
  push m ?tag (Pplain (Assign (Lstatic f, Eimm value)))

(** [aload m x y idx] emits the array load [x = y\[idx\]]. *)
let aload m ?tag x y idx = set m ?tag x (Earray (y, idx))

(** [astore m y idx value] emits the array store [y\[idx\] = value]. *)
let astore m ?tag y idx value =
  push m ?tag (Pplain (Assign (Larray (y, idx), Eimm value)))

(** [binop m x op a b] emits [x = a op b]. *)
let binop m ?tag x op a b = set m ?tag x (Ebinop (op, a, b))

(** [cast m x ty a] emits [x = (ty) a]. *)
let cast m ?tag x ty a = set m ?tag x (Ecast (ty, a))

(** [newobj m x cls] emits the bare allocation [x = new cls] (without
    running a constructor; see {!newc}). *)
let newobj m ?tag x cls = set m ?tag x (Enew cls)

(** [newarray m x ty len] emits [x = newarray ty\[len\]]. *)
let newarray m ?tag x ty len = set m ?tag x (Enewarray (ty, len))

(* ---------------- calls ---------------- *)

let mk_invoke kind recv cls name args ret_ty =
  {
    i_kind = kind;
    i_sig =
      {
        m_class = cls;
        m_name = name;
        m_params = List.map (fun _ -> Ref Types.object_class) args;
        m_ret = ret_ty;
      };
    i_recv = recv;
    i_args = args;
  }

let emit_call m ?tag ?ret inv =
  match ret with
  | None -> push m ?tag (Pplain (InvokeStmt inv))
  | Some x -> push m ?tag (Pplain (Assign (Llocal x, Einvoke inv)))

(** [vcall m ?tag ?ret recv cls name args] emits a virtual call
    [ret = virtualinvoke recv.cls#name(args)] (result discarded when
    [ret] is absent). *)
let vcall m ?tag ?ret recv cls name args =
  let ret_ty = match ret with Some l -> l.l_type | None -> Ref Types.object_class in
  emit_call m ?tag ?ret (mk_invoke Virtual (Some recv) cls name args ret_ty)

(** [scall m ?tag ?ret cls name args] emits a static call. *)
let scall m ?tag ?ret cls name args =
  let ret_ty = match ret with Some l -> l.l_type | None -> Ref Types.object_class in
  emit_call m ?tag ?ret (mk_invoke Static None cls name args ret_ty)

(** [spcall m ?tag ?ret recv cls name args] emits a special call
    (constructors, super calls). *)
let spcall m ?tag ?ret recv cls name args =
  let ret_ty = match ret with Some l -> l.l_type | None -> Ref Types.object_class in
  emit_call m ?tag ?ret (mk_invoke Special (Some recv) cls name args ret_ty)

(** [newc m x cls args] allocates [x = new cls] and invokes the
    constructor [specialinvoke x.cls#<init>(args)]. *)
let newc m ?tag x cls args =
  newobj m ?tag x cls;
  spcall m x cls "<init>" args

(* ---------------- control flow ---------------- *)

(** [label m name] attaches label [name] to the next emitted
    statement. *)
let label m name = m.mb_pending_labels <- name :: m.mb_pending_labels

(** [ifgoto m a op b target] emits [if a op b goto target]. *)
let ifgoto m ?tag a op b target =
  push m ?tag (Pif ({ c_op = op; c_left = a; c_right = b }, target))

(** [goto m target] emits an unconditional jump. *)
let goto m ?tag target = push m ?tag (Pgoto target)

(** [ret m] emits [return]. *)
let ret m = push m (Pplain (Return None))

(** [retv m value] emits [return value]. *)
let retv m ?tag value = push m ?tag (Return (Some value) |> fun k -> Pplain k)

(** [throw m value] emits [throw value]. *)
let throw m ?tag value = push m ?tag (Pplain (Throw value))

(** [nop m] emits a no-op (useful as a label anchor). *)
let nop m = push m (Pplain Nop)

(* ---------------- sealing ---------------- *)

let seal m : Body.t =
  (* ensure the body ends in a return; attach any dangling labels to it *)
  let needs_ret =
    match m.mb_rev with
    | [] -> true
    | p :: _ -> (
        m.mb_pending_labels <> []
        ||
        match p.p_kind with
        | Pplain (Return _ | Throw _) | Pgoto _ -> false
        | _ -> true)
  in
  if needs_ret then push m (Pplain (Return None));
  let pendings = Array.of_list (List.rev m.mb_rev) in
  let labels = Hashtbl.create 7 in
  Array.iteri
    (fun idx p ->
      List.iter
        (fun l ->
          if Hashtbl.mem labels l then err "duplicate label %S" l;
          Hashtbl.replace labels l idx)
        p.p_labels)
    pendings;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some idx -> idx
    | None -> err "undefined label %S" l
  in
  let stmts =
    Array.to_list
      (Array.map
         (fun p ->
           let kind =
             match p.p_kind with
             | Pplain k -> k
             | Pif (c, l) -> If (c, target l)
             | Pgoto l -> Goto (target l)
           in
           { s_idx = 0; s_kind = kind; s_tag = p.p_tag })
         pendings)
  in
  Body.create ~locals:(List.rev m.mb_order) stmts

(* ---------------- methods and classes ---------------- *)

type mspec = string -> Jclass.jmethod
(** A method under construction, awaiting its declaring class name. *)

(** [meth name ?static ?params ?ret build] declares a method whose body
    is produced by running [build] on a fresh builder. *)
let meth name ?(static = false) ?(params = []) ?(ret = Void) build : mspec =
 fun cls_name ->
  let m =
    {
      mb_class = cls_name;
      mb_rev = [];
      mb_locals = Hashtbl.create 7;
      mb_order = [];
      mb_pending_labels = [];
    }
  in
  build m;
  let body = seal m in
  Jclass.mk_method ~static
    { m_class = cls_name; m_name = name; m_params = params; m_ret = ret }
    ~body

(** [abstract_meth name ?params ?ret] declares a bodyless abstract
    method. *)
let abstract_meth name ?(params = []) ?(ret = Void) : mspec =
 fun cls_name ->
  Jclass.mk_method ~abstract:true
    { m_class = cls_name; m_name = name; m_params = params; m_ret = ret }

(** [native_meth name ?static ?params ?ret] declares a native method
    (handled by the taint engine's native-call rules). *)
let native_meth name ?(static = false) ?(params = []) ?(ret = Void) : mspec =
 fun cls_name ->
  Jclass.mk_method ~static ~native:true
    { m_class = cls_name; m_name = name; m_params = params; m_ret = ret }

(** [cls name ?super ?interfaces ?fields specs] assembles a class from
    method specs; [fields] is a list of [(name, type)] pairs. *)
let cls name ?(super = Types.object_class) ?(interfaces = []) ?(fields = [])
    specs : Jclass.t =
  Jclass.mk name ~super:(Some super) ~interfaces
    ~fields:
      (List.map (fun (fn, ty) -> { f_class = name; f_name = fn; f_type = ty }) fields)
    ~methods:(List.map (fun spec -> spec name) specs)

(** [iface name ?extends specs] assembles an interface. *)
let iface name ?(extends = []) specs : Jclass.t =
  Jclass.mk name ~is_interface:true ~interfaces:extends
    ~methods:(List.map (fun spec -> spec name) specs)
