lib/callgraph/icfg.ml: Body Callgraph Fd_ir Hashtbl Int List Mkey Printf Stmt
