lib/callgraph/callgraph.mli: Body Fd_ir Mkey Scene
