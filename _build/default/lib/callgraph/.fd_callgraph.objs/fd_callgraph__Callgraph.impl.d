lib/callgraph/callgraph.ml: Body Fd_ir Hashtbl Jclass List Mkey Option Queue Scene Stmt Types
