lib/callgraph/mkey.ml: Fd_ir Format Hashtbl Int Jclass List Printf Set String Types
