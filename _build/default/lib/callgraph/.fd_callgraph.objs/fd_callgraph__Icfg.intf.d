lib/callgraph/icfg.mli: Body Callgraph Fd_ir Hashtbl Mkey Stmt
