lib/callgraph/mkey.mli: Fd_ir Format Hashtbl Jclass Set Types
