(** Method keys: the identity of a method in call graphs and solvers —
    declaring class, name and arity (µJimple does not use same-arity
    overloading; see DESIGN.md). *)

open Fd_ir

type t = { mk_class : string; mk_name : string; mk_arity : int }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val of_sig : Types.method_sig -> t
val of_method : Jclass.t -> Jclass.jmethod -> t
(** keys a concrete method by its declaring class *)

val to_string : t -> string
(** e.g. ["a.B.m/2"] *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
