(** Call-graph construction: CHA and RTA, computed on the fly from a
    set of entry points (only reachable code contributes edges). *)

open Fd_ir

type algorithm =
  | Cha  (** class hierarchy analysis: every override in the cone *)
  | Rta
      (** rapid type analysis: receivers restricted to classes
          instantiated in reachable code (joint fixed point) *)

type call_edge = { ce_caller : Mkey.t; ce_stmt : int; ce_target : Mkey.t }

type t

val build :
  Scene.t -> entry:Mkey.t list -> ?algorithm:algorithm -> unit -> t
(** [build scene ~entry ()] computes the call graph reachable from
    [entry] (default {!Cha}). *)

val callees : t -> Mkey.t -> int -> Mkey.t list
(** [callees cg caller stmt_idx] — resolved targets of one call site;
    empty when the call resolves only into the framework. *)

val callers : t -> Mkey.t -> (Mkey.t * int) list
(** the call sites that may invoke a method *)

val is_reachable : t -> Mkey.t -> bool
val reachable_methods : t -> Mkey.t list

val body_of : t -> Mkey.t -> Body.t
(** the body of a method (cached).  @raise Not_found for bodyless
    methods. *)

val edge_count : t -> int
(** number of distinct (site, target) edges — a size metric for the
    benchmarks *)

val cg_scene : t -> Scene.t
(** the scene the graph was built over *)
