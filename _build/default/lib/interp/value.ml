(** Runtime values and taint labels for the µJimple interpreter.

    This library is the repository's TaintDroid counterpart (related
    work, Section 7): a *dynamic* taint analysis that concretely
    executes µJimple programs, propagating per-value taint labels —
    precise where the static analysis over-approximates (array
    indices, map keys, strong updates) but only as complete as the
    event coverage that drives it. *)

type label = {
  lb_tag : string option;  (** ground-truth tag of the source statement *)
  lb_category : Fd_frontend.Sourcesink.category;
  lb_desc : string;
}

let label ?tag ~category desc = { lb_tag = tag; lb_category = category; lb_desc = desc }

module Labels = Set.Make (struct
  type t = label

  let compare = compare
end)

type obj_id = int

(** Concrete values.  Strings are immutable values; objects and arrays
    live on the heap. *)
type value =
  | Vnull
  | Vint of int
  | Vstr of string
  | Vobj of obj_id
  | Varr of obj_id

type tvalue = { v : value; labels : Labels.t }
(** a value with its taint labels *)

let untainted v = { v; labels = Labels.empty }
let with_labels labels v = { v; labels }
let join a b = Labels.union a b
let is_tainted tv = not (Labels.is_empty tv.labels)

let string_of_value = function
  | Vnull -> "null"
  | Vint i -> string_of_int i
  | Vstr s -> Printf.sprintf "%S" s
  | Vobj id -> Printf.sprintf "obj#%d" id
  | Varr id -> Printf.sprintf "arr#%d" id

(** Heap objects carry a class, ordinary fields, and optionally a
    built-in payload used by the framework models (string builders,
    collections, intents, UI views). *)
type payload =
  | Pnone
  | Pbuffer of (string * Labels.t) ref  (** StringBuilder/StringBuffer *)
  | Plist of tvalue list ref  (** List/Set backing store *)
  | Pmap of (string * tvalue) list ref  (** Map/Bundle/Intent extras, string-keyed *)
  | Pview of { view_name : string; mutable view_text : tvalue }
      (** a UI control with its current text *)

type hobj = {
  h_cls : string;
  h_fields : (string, tvalue) Hashtbl.t;  (** keyed by field name *)
  h_payload : payload;
}

type harr = { a_elem : Fd_ir.Types.typ; a_cells : tvalue array }

(** A recorded leak: tainted data reached a sink at runtime. *)
type leak = {
  lk_labels : label list;
  lk_sink_tag : string option;
  lk_sink_cat : Fd_frontend.Sourcesink.category;
  lk_where : string;  (** method.name@idx *)
}
