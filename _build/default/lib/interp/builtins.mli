(** Framework models for the µJimple interpreter: concrete behaviour
    of the Android/JRE classes the benchmarks use (telephony and
    location sources, UI views with per-control text, intents and
    bundles, strings and string builders, collections, [arraycopy],
    and the monitor-detection probe of the Section 7 evasion demo). *)

val call : Interp.builtin_fn
(** the dispatcher; returns [None] for unmodelled methods (the
    interpreter then falls back to configured sources or conservative
    label joining) *)

val install : Interp.state -> unit
(** wire the model into an interpreter state *)
