lib/interp/droid_runner.ml: Builtins Fd_frontend Fd_ir Fd_lifecycle Hashtbl Interp Jclass Labels List Option Scene Types Value
