lib/interp/interp.mli: Body Fd_frontend Fd_ir Hashtbl Labels Scene Types Value
