lib/interp/value.mli: Fd_frontend Fd_ir Hashtbl Set
