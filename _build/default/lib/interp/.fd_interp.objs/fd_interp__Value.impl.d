lib/interp/value.ml: Fd_frontend Fd_ir Hashtbl Printf Set
