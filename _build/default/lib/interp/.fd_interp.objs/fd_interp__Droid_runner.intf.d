lib/interp/droid_runner.mli: Fd_frontend Fd_ir Value
