lib/interp/builtins.mli: Interp
