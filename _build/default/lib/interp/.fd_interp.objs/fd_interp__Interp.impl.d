lib/interp/interp.ml: Array Body Fd_frontend Fd_ir Hashtbl Jclass Labels List Option Printf Scene Stmt Types Value
