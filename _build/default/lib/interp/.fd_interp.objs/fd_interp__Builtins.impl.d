lib/interp/builtins.ml: Array Buffer Char Fd_frontend Fd_ir Hashtbl Interp Labels List Option Printf Scene String Types Value
