(** Runtime values and taint labels for the µJimple interpreter (the
    TaintDroid-counterpart substrate). *)

type label = {
  lb_tag : string option;  (** ground-truth tag of the source statement *)
  lb_category : Fd_frontend.Sourcesink.category;
  lb_desc : string;
}

val label :
  ?tag:string -> category:Fd_frontend.Sourcesink.category -> string -> label

module Labels : Set.S with type elt = label

type obj_id = int

type value =
  | Vnull
  | Vint of int
  | Vstr of string
  | Vobj of obj_id
  | Varr of obj_id

type tvalue = { v : value; labels : Labels.t }
(** a value with its taint labels *)

val untainted : value -> tvalue
val with_labels : Labels.t -> value -> tvalue
val join : Labels.t -> Labels.t -> Labels.t
val is_tainted : tvalue -> bool
val string_of_value : value -> string

(** Heap objects carry a class, ordinary fields, and optionally a
    built-in payload used by the framework models. *)
type payload =
  | Pnone
  | Pbuffer of (string * Labels.t) ref  (** StringBuilder/StringBuffer *)
  | Plist of tvalue list ref  (** List/Set/Iterator backing store *)
  | Pmap of (string * tvalue) list ref  (** Map/Bundle/Intent extras *)
  | Pview of { view_name : string; mutable view_text : tvalue }
      (** a UI control with its current text *)

type hobj = {
  h_cls : string;
  h_fields : (string, tvalue) Hashtbl.t;
  h_payload : payload;
}

type harr = { a_elem : Fd_ir.Types.typ; a_cells : tvalue array }

(** A recorded leak: tainted data reached a sink at runtime. *)
type leak = {
  lk_labels : label list;
  lk_sink_tag : string option;
  lk_sink_cat : Fd_frontend.Sourcesink.category;
  lk_where : string;  (** "class.method" of the sink call *)
}
