(** The event driver: dynamic analysis of Android apps.

    TaintDroid-style monitors only observe executions that actually
    happen; their completeness is bounded by how thoroughly a test
    driver exercises the app (Section 7: "TaintDroid can successfully
    detect malware only if paired with a dynamic testing approach that
    yields decent code coverage").  This driver makes that coverage an
    explicit knob:

    - {b Basic}: launch each component once and run only the startup
      path (create → start → resume) — the naive monkey-test level;
    - {b Thorough}: full lifecycle excursions (pause/resume cycles,
      stop/restart, destroy), every discovered callback fired between
      resume and pause, and the whole component schedule repeated so
      state staged in one round can leak in the next.

    The DroidBench comparison between the two coverage levels and the
    static analysis reproduces the paper's static-vs-dynamic
    trade-off: the dynamic monitor never reports a false positive
    (per-cell array precision, real strong updates, concrete map
    keys), finds the reflective/initialisation flows statics miss, and
    silently loses every leak its driver fails to exercise. *)

open Fd_ir
open Value
module SS = Fd_frontend.Sourcesink
module FW = Fd_frontend.Framework

type coverage = Basic | Thorough

let string_of_coverage = function Basic -> "basic" | Thorough -> "thorough"

(* a fresh intent carrying externally supplied (hence tainted) data,
   handed to receivers and getIntent *)
let make_external_intent st =
  let id = Interp.alloc_obj st ~payload:(Pmap (ref [])) "android.content.Intent" in
  let o = Interp.obj st id in
  (match o.h_payload with
  | Pmap m ->
      m :=
        [
          ( "data",
            with_labels
              (Labels.singleton
                 (label ~category:SS.Intent_data "external intent extra"))
              (Vstr "external-intent-data") );
        ]
  | _ -> ());
  untainted (Vobj id)

let make_location st =
  let id = Interp.alloc_obj st "android.location.Location" in
  let o = Interp.obj st id in
  let lbl =
    Labels.singleton (label ~category:SS.Location "framework location update")
  in
  Hashtbl.replace o.h_fields "lat" (with_labels lbl (Vstr "49.8728"));
  Hashtbl.replace o.h_fields "lon" (with_labels lbl (Vstr "8.6512"));
  with_labels lbl (Vobj id)

(* dummy argument values by parameter type *)
let arg_for st (ty : Types.typ) =
  match ty with
  | Types.Int | Types.Bool | Types.Char | Types.Long -> untainted (Vint 0)
  | Types.Ref "android.location.Location" -> make_location st
  | Types.Ref "android.content.Intent" -> make_external_intent st
  | Types.Ref "android.view.View" ->
      untainted (Vobj (Interp.alloc_obj st "android.view.View"))
  | Types.Ref "android.os.Bundle" ->
      untainted (Vobj (Interp.alloc_obj st ~payload:(Pmap (ref [])) "android.os.Bundle"))
  | Types.Ref "android.content.Context" ->
      untainted (Vobj (Interp.alloc_obj st "android.content.Context"))
  | _ -> untainted Vnull

let call_lc st inst _cls (m : Jclass.jmethod) =
  let args = List.map (arg_for st) m.Jclass.jm_sig.Types.m_params in
  try
    ignore
      (Interp.exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
         ~this:(Some inst) ~args)
  with Interp.Runtime_error _ -> ()

let lc st scene inst cls name =
  match Scene.resolve_concrete_named scene cls name with
  | Some (_, m) when Jclass.has_body m -> call_lc st inst cls m
  | _ -> ()

(* fire the component's callbacks, on the component instance or fresh
   listener instances (with the component as outer reference) *)
let fire_callbacks st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.iter
    (fun (cb : Fd_lifecycle.Callbacks.callback) ->
      let recv =
        if cb.Fd_lifecycle.Callbacks.cb_on_component then inst
        else begin
          let cls = cb.Fd_lifecycle.Callbacks.cb_class in
          let id = Interp.alloc_obj st cls in
          let tv = untainted (Vobj id) in
          (* prefer the outer-reference constructor *)
          (match
             Scene.resolve_concrete scene cls
               ("<init>", [ Types.Ref Types.object_class ])
           with
          | Some (_, m) when Jclass.has_body m ->
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some tv) ~args:[ inst ])
          | _ -> (
              match Scene.resolve_concrete scene cls ("<init>", []) with
              | Some (_, m) when Jclass.has_body m ->
                  ignore
                    (Interp.exec_body st m.Jclass.jm_sig
                       (Option.get m.Jclass.jm_body) ~this:(Some tv) ~args:[])
              | _ -> ()));
          tv
        end
      in
      try call_lc st recv cb.Fd_lifecycle.Callbacks.cb_class
            cb.Fd_lifecycle.Callbacks.cb_method
      with Interp.Runtime_error _ -> ())
    cc.Fd_lifecycle.Callbacks.cc_callbacks

(* extension features under Thorough coverage: fire AsyncTasks with
   the doInBackground->onPostExecute result link, and run fragment
   lifecycles attached to the component *)
let fire_async_tasks st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.iter
    (fun cls ->
      let task = untainted (Vobj (Interp.alloc_obj st cls)) in
      (match
         Scene.resolve_concrete scene cls
           ("<init>", [ Types.Ref Types.object_class ])
       with
      | Some (_, m) when Jclass.has_body m ->
          ignore
            (Interp.exec_body st m.Jclass.jm_sig (Option.get m.Jclass.jm_body)
               ~this:(Some task) ~args:[ inst ])
      | _ -> ());
      let call name args =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              Some
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some task) ~args)
            with Interp.Runtime_error _ -> None)
        | _ -> None
      in
      ignore (call "onPreExecute" []);
      let r =
        Option.value (call "doInBackground" [ untainted Vnull ])
          ~default:(untainted Vnull)
      in
      ignore (call "onPostExecute" [ r ]))
    cc.Fd_lifecycle.Callbacks.cc_async_tasks

let fragment_instances st scene inst (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  List.map
    (fun cls ->
      let frag = Interp.new_instance st cls in
      let call name args =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some frag) ~args)
            with Interp.Runtime_error _ -> ())
        | _ -> ()
      in
      call "onAttach" [ inst ];
      call "onCreate" [ untainted Vnull ];
      call "onCreateView" [ untainted Vnull ];
      call "onStart" [];
      call "onResume" [];
      (frag, cls))
    cc.Fd_lifecycle.Callbacks.cc_fragments

let teardown_fragments st scene frags =
  List.iter
    (fun (frag, cls) ->
      let call name =
        match Scene.resolve_concrete_named scene cls name with
        | Some (_, m) when Jclass.has_body m -> (
            try
              ignore
                (Interp.exec_body st m.Jclass.jm_sig
                   (Option.get m.Jclass.jm_body) ~this:(Some frag) ~args:[])
            with Interp.Runtime_error _ -> ())
        | _ -> ()
      in
      List.iter call
        [ "onPause"; "onStop"; "onDestroyView"; "onDestroy"; "onDetach" ])
    frags

let run_component st scene ~coverage
    (cc : Fd_lifecycle.Callbacks.component_callbacks) =
  let cls = cc.Fd_lifecycle.Callbacks.cc_component in
  let inst = Interp.new_instance st cls in
  (* attach an external intent for getIntent *)
  (match inst.v with
  | Vobj id ->
      Hashtbl.replace (Interp.obj st id).h_fields "__intent"
        (make_external_intent st)
  | _ -> ());
  let l = lc st scene inst cls in
  match cc.Fd_lifecycle.Callbacks.cc_kind with
  | FW.Activity -> (
      l "onCreate";
      l "onStart";
      l "onResume";
      match coverage with
      | Basic -> ()
      | Thorough ->
          let frags = fragment_instances st scene inst cc in
          fire_callbacks st scene inst cc;
          fire_async_tasks st scene inst cc;
          teardown_fragments st scene frags;
          l "onPause";
          (* resumed again without stopping *)
          l "onResume";
          fire_callbacks st scene inst cc;
          l "onPause";
          l "onStop";
          (* restart excursion *)
          l "onRestart";
          l "onStart";
          l "onResume";
          fire_callbacks st scene inst cc;
          (* framework-driven overrides such as onLowMemory *)
          l "onLowMemory";
          l "onBackPressed";
          l "onPause";
          l "onStop";
          l "onDestroy")
  | FW.Service -> (
      l "onCreate";
      (match Scene.resolve_concrete_named scene cls "onStartCommand" with
      | Some (_, m) when Jclass.has_body m -> call_lc st inst cls m
      | _ -> lc st scene inst cls "onStart");
      match coverage with
      | Basic -> ()
      | Thorough ->
          fire_callbacks st scene inst cc;
          lc st scene inst cls "onLowMemory";
          l "onDestroy")
  | FW.Receiver -> (
      l "onReceive";
      match coverage with
      | Basic -> ()
      | Thorough -> fire_callbacks st scene inst cc)
  | FW.Provider -> (
      l "onCreate";
      match coverage with
      | Basic -> ()
      | Thorough ->
          List.iter l [ "query"; "insert"; "update"; "delete" ];
          fire_callbacks st scene inst cc)

(** [run ?coverage ?max_steps loaded] dynamically executes the app
    under the given coverage policy and returns the observed leaks. *)
let run ?(coverage = Thorough) ?(max_steps = 2_000_000)
    (loaded : Fd_frontend.Apk.loaded) =
  let scene = loaded.Fd_frontend.Apk.scene in
  let st =
    Interp.create ~max_steps ~scene ~defs:(SS.default ())
      ~layout:loaded.Fd_frontend.Apk.layout ()
  in
  Builtins.install st;
  let ccs = Fd_lifecycle.Callbacks.discover_all loaded in
  let rounds = match coverage with Basic -> 1 | Thorough -> 2 in
  (try
     for _round = 1 to rounds do
       List.iter (run_component st scene ~coverage) ccs
     done
   with Interp.Budget_exhausted -> ());
  Interp.leaks st

(** [run_plain ~classes ~entries ~defs ()] dynamically executes a
    plain (non-Android) program: each entry method is invoked once on
    a fresh instance (or statically), with generic objects for its
    parameters.  Sources and sinks come from [defs] — the generic
    source/sink interception in the interpreter handles any configured
    method, so the same SecuriBench setup that drives the static RQ4
    experiment drives the dynamic monitor. *)
let run_plain ?(max_steps = 2_000_000) ~classes ~entries ~defs () =
  let scene = Fd_frontend.Framework.fresh_scene () in
  List.iter (Scene.add_class scene) classes;
  let st =
    Interp.create ~max_steps ~scene ~defs
      ~layout:(Fd_frontend.Layout.parse []) ()
  in
  Builtins.install st;
  (try
     List.iter
       (fun (cls, mname) ->
         match Scene.resolve_concrete_named scene cls mname with
         | Some (_, m) when Jclass.has_body m ->
             let this =
               if m.Jclass.jm_static then None
               else Some (Interp.new_instance st cls)
             in
             let args =
               List.map
                 (fun ty ->
                   match ty with
                   | Types.Int | Types.Bool | Types.Char | Types.Long ->
                       untainted (Vint 0)
                   | _ ->
                       untainted
                         (Vobj (Interp.alloc_obj st "framework.Generic")))
                 m.Jclass.jm_sig.Types.m_params
             in
             (try
                ignore
                  (Interp.exec_body st m.Jclass.jm_sig
                     (Option.get m.Jclass.jm_body) ~this ~args)
              with Interp.Runtime_error _ -> ())
         | _ -> ())
       entries
   with Interp.Budget_exhausted -> ());
  Interp.leaks st

(** [findings leaks] views dynamic leaks as (source tag, sink tag)
    pairs for uniform scoring against benchmark ground truth. *)
let findings leaks =
  List.map
    (fun (lk : leak) ->
      ( (match lk.lk_labels with l :: _ -> l.lb_tag | [] -> None),
        lk.lk_sink_tag ))
    leaks
  |> List.sort_uniq compare
