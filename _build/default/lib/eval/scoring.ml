(** Scoring analysis findings against benchmark ground truth. *)

type finding = string option * string option
(** (source tag, sink tag) as reported by an engine *)

type expectation = string option * string
(** (optional source tag, sink tag) — a leak the analysis should
    report.  A [None] source matches any reported source (used for
    synthesised parameter sources). *)

type verdict = {
  tp : int;  (** findings matching an expected leak *)
  fp : int;  (** findings matching no expected leak *)
  fn : int;  (** expected leaks no finding matched *)
  matched : expectation list;
  missed : expectation list;
  spurious : finding list;
}

let expectation_matches ((esrc, esink) : expectation) ((src, sink) : finding) =
  sink = Some esink
  && match esrc with None -> true | Some es -> src = Some es

(** [of_bench_expectation e] converts DROIDBENCH ground truth. *)
let of_bench_expectation (e : Fd_droidbench.Bench_app.expectation) :
    expectation =
  (e.Fd_droidbench.Bench_app.exp_src, e.Fd_droidbench.Bench_app.exp_sink)

(** [score ~expected ~findings] greedily matches each finding against
    at most one expectation and each expectation against at most one
    finding. *)
let score ~expected ~findings =
  let remaining = ref expected in
  let matched = ref [] in
  let spurious = ref [] in
  List.iter
    (fun f ->
      match List.find_opt (fun e -> expectation_matches e f) !remaining with
      | Some e ->
          remaining := List.filter (fun e' -> e' != e) !remaining;
          matched := e :: !matched
      | None -> spurious := f :: !spurious)
    findings;
  {
    tp = List.length !matched;
    fp = List.length !spurious;
    fn = List.length !remaining;
    matched = List.rev !matched;
    missed = !remaining;
    spurious = List.rev !spurious;
  }

(** [precision ~tp ~fp] of aggregated counts. *)
let precision ~tp ~fp =
  if tp + fp = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fp)

(** [recall ~tp ~fn] of aggregated counts. *)
let recall ~tp ~fn =
  if tp + fn = 0 then 0.0 else float_of_int tp /. float_of_int (tp + fn)

(** [markers v] renders a verdict the way Table 1 does: one "●" per
    correct warning, "✱" per false warning, "○" per missed leak. *)
let markers v =
  String.concat " "
    (List.concat
       [
         List.init v.tp (fun _ -> "\xe2\x97\x8f");
         (* ● *)
         List.init v.fp (fun _ -> "\xe2\x9c\xb1");
         (* ✱ *)
         List.init v.fn (fun _ -> "\xe2\x97\x8b");
         (* ○ *)
       ])
