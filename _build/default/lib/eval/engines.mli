(** The engines compared in the evaluation: FLOWDROID (this
    repository's core), the two simulated commercial comparators, and
    the ablation variants the benchmark harness sweeps. *)

type t = {
  eng_name : string;
  eng_run : Fd_frontend.Apk.t -> Scoring.finding list;
}

val findings_of_result : Fd_core.Infoflow.result -> Scoring.finding list

val flowdroid : ?config:Fd_core.Config.t -> ?name:string -> unit -> t
val appscan : t
val fortify : t

val ablations : t list
(** no-lifecycle, no-callbacks, no-context-injection, no-activation,
    no-alias, global-callbacks, RTA *)

val k_variant : int -> t
(** FlowDroid at access-path bound [k] (the A1 sweep) *)
