lib/eval/engines.mli: Fd_core Fd_frontend Scoring
