lib/eval/droidbench_table.ml: Bench_app Engines Fd_droidbench Fd_util List Printf Scoring Suite
