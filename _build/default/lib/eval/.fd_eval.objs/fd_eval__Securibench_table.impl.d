lib/eval/securibench_table.ml: Engines Fd_callgraph Fd_core Fd_frontend Fd_securibench Fd_util List Printf Sb_case Sb_suite Scoring
