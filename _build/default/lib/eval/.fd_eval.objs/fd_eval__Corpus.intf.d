lib/eval/corpus.mli: Fd_appgen Fd_core
