lib/eval/scoring.ml: Fd_droidbench List String
