lib/eval/engines.ml: Bidi Config Fd_baselines Fd_callgraph Fd_core Fd_frontend Infoflow List Printf Scoring Taint
