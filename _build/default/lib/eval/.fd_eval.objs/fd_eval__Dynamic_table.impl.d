lib/eval/dynamic_table.ml: Bench_app Engines Fd_droidbench Fd_frontend Fd_interp Fd_util List Printf Scoring Suite
