lib/eval/scoring.mli: Fd_droidbench
