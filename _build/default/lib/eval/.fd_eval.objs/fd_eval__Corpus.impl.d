lib/eval/corpus.ml: Config Engines Fd_appgen Fd_core Fd_util Infoflow List Printf Scoring Sys
