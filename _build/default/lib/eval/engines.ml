(** The engines compared in the evaluation: FLOWDROID (this
    repository's core), the two simulated commercial comparators, and
    the FlowDroid ablation variants used by the benchmark harness. *)

open Fd_core

type t = {
  eng_name : string;
  eng_run : Fd_frontend.Apk.t -> Scoring.finding list;
}

let findings_of_result (r : Infoflow.result) : Scoring.finding list =
  List.map
    (fun (fd : Bidi.finding) ->
      (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
    r.Infoflow.r_findings

(** [flowdroid ?config ?name ()] wraps the core engine. *)
let flowdroid ?(config = Config.default) ?(name = "FlowDroid") () =
  {
    eng_name = name;
    eng_run = (fun apk -> findings_of_result (Infoflow.analyze_apk ~config apk));
  }

(** [appscan] — the AppScan-Source-like comparator. *)
let appscan =
  {
    eng_name = "AppScan";
    eng_run = Fd_baselines.Simple_taint.run_appscan;
  }

(** [fortify] — the Fortify-SCA-like comparator. *)
let fortify =
  {
    eng_name = "Fortify";
    eng_run = Fd_baselines.Simple_taint.run_fortify;
  }

(** Ablations of the FlowDroid engine (DESIGN.md experiments). *)
let ablations =
  [
    flowdroid ~name:"FD-noLifecycle"
      ~config:{ Config.default with Config.lifecycle = false } ();
    flowdroid ~name:"FD-noCallbacks"
      ~config:{ Config.default with Config.callbacks = false } ();
    flowdroid ~name:"FD-noCtxInjection"
      ~config:{ Config.default with Config.context_injection = false } ();
    flowdroid ~name:"FD-noActivation"
      ~config:{ Config.default with Config.activation_statements = false } ();
    flowdroid ~name:"FD-noAlias"
      ~config:{ Config.default with Config.alias_search = false } ();
    flowdroid ~name:"FD-globalCallbacks"
      ~config:{ Config.default with Config.per_component_callbacks = false } ();
    flowdroid ~name:"FD-RTA"
      ~config:
        { Config.default with
          Config.cg_algorithm = Fd_callgraph.Callgraph.Rta } ();
  ]

(** [k_variant k] — FlowDroid at access-path bound [k] (the A1
    sweep). *)
let k_variant k =
  flowdroid
    ~name:(Printf.sprintf "FD-k%d" k)
    ~config:{ Config.default with Config.max_access_path = k }
    ()
