(** The static-vs-dynamic comparison (the Section 7 TaintDroid
    discussion, made measurable): FLOWDROID against the TaintDroid-sim
    dynamic monitor under two driver-coverage levels, over
    DROIDBENCH. *)

open Fd_droidbench
module Table = Fd_util.Table

type row = {
  dr_app : Bench_app.t;
  dr_static : Scoring.verdict;
  dr_basic : Scoring.verdict;
  dr_thorough : Scoring.verdict;
}

type t = { rows : row list }

let dynamic_findings ~coverage (apk : Fd_frontend.Apk.t) =
  match Fd_frontend.Apk.load apk with
  | exception Fd_frontend.Apk.Load_error _ -> []
  | loaded ->
      Fd_interp.Droid_runner.findings
        (Fd_interp.Droid_runner.run ~coverage loaded)

(** [run ?apps ()] scores the three analyses over the suite. *)
let run ?(apps = Suite.scored) () =
  let fd = Engines.flowdroid () in
  {
    rows =
      List.map
        (fun (app : Bench_app.t) ->
          let expected =
            List.map Scoring.of_bench_expectation app.Bench_app.app_expected
          in
          let score findings = Scoring.score ~expected ~findings in
          {
            dr_app = app;
            dr_static = score (fd.Engines.eng_run app.Bench_app.app_apk);
            dr_basic =
              score
                (dynamic_findings ~coverage:Fd_interp.Droid_runner.Basic
                   app.Bench_app.app_apk);
            dr_thorough =
              score
                (dynamic_findings ~coverage:Fd_interp.Droid_runner.Thorough
                   app.Bench_app.app_apk);
          })
        apps;
  }

let totals select t =
  List.fold_left
    (fun (tp, fp, fn) r ->
      let v = select r in
      (tp + v.Scoring.tp, fp + v.Scoring.fp, fn + v.Scoring.fn))
    (0, 0, 0) t.rows

(** [render t] prints the per-app and aggregate comparison. *)
let render t =
  let header =
    [ "App Name"; "FlowDroid (static)"; "Dynamic (basic)"; "Dynamic (thorough)" ]
  in
  let body =
    List.concat_map
      (fun cat ->
        let rows =
          List.filter (fun r -> r.dr_app.Bench_app.app_category = cat) t.rows
        in
        if rows = [] then []
        else
          Table.Section cat
          :: List.map
               (fun r ->
                 Table.Row
                   [
                     r.dr_app.Bench_app.app_name;
                     Scoring.markers r.dr_static;
                     Scoring.markers r.dr_basic;
                     Scoring.markers r.dr_thorough;
                   ])
               rows)
      Suite.categories
  in
  let sums =
    [
      Table.Sep;
      Table.Row
        ("TP / FP / FN"
        :: List.map
             (fun select ->
               let tp, fp, fn = totals select t in
               Printf.sprintf "%d / %d / %d" tp fp fn)
             [ (fun r -> r.dr_static); (fun r -> r.dr_basic);
               (fun r -> r.dr_thorough) ]);
      Table.Row
        ("Recall"
        :: List.map
             (fun select ->
               let tp, _, fn = totals select t in
               Table.pct tp (tp + fn))
             [ (fun r -> r.dr_static); (fun r -> r.dr_basic);
               (fun r -> r.dr_thorough) ]);
      Table.Row
        ("Precision"
        :: List.map
             (fun select ->
               let tp, fp, _ = totals select t in
               Table.pct tp (tp + fp))
             [ (fun r -> r.dr_static); (fun r -> r.dr_basic);
               (fun r -> r.dr_thorough) ]);
    ]
  in
  Table.render (Table.make ~header (body @ sums))
