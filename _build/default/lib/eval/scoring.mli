(** Scoring analysis findings against benchmark ground truth. *)

type finding = string option * string option
(** (source tag, sink tag) as reported by an engine *)

type expectation = string option * string
(** (optional source tag, sink tag) — a leak the analysis should
    report; a [None] source matches any reported source *)

type verdict = {
  tp : int;  (** findings matching an expected leak *)
  fp : int;  (** findings matching no expected leak *)
  fn : int;  (** expected leaks no finding matched *)
  matched : expectation list;
  missed : expectation list;
  spurious : finding list;
}

val of_bench_expectation :
  Fd_droidbench.Bench_app.expectation -> expectation

val score : expected:expectation list -> findings:finding list -> verdict
(** greedy one-to-one matching of findings against expectations *)

val precision : tp:int -> fp:int -> float
val recall : tp:int -> fn:int -> float

val markers : verdict -> string
(** the Table 1 rendering: "●" per correct warning, "✱" per false
    warning, "○" per missed leak *)
