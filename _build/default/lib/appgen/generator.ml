(** Synthetic app-corpus generation for RQ3.

    The paper evaluates FlowDroid on the 500 most popular Google-Play
    apps and ~1000 VirusShare malware samples; neither corpus is
    redistributable ("for legal reasons we are unable to provide these
    applications online").  This generator produces deterministic
    (seeded) corpora with the two profiles' reported characteristics:

    - {b Play profile}: larger apps (more classes, deeper call
      plumbing, several components), whose leaks are mostly
      *accidental* — identifiers and location data ending up in logs
      and preference files, typically via an embedded
      advertisement-library-like cluster (Section 6.3's findings);
    - {b Malware profile}: comparatively small apps averaging 1.85
      planted leaks, mostly identifiers sent by SMS or to a remote
      server, plus the broadcast-receiver-forwards-to-SMS pattern the
      paper describes.

    Every planted leak carries ground-truth tags, so corpus runs can
    measure recall on known flows in addition to runtime. *)

open Fd_ir
open Fd_util
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

type profile = Play | Malware

let string_of_profile = function Play -> "play" | Malware -> "malware"

type gen_app = {
  ga_name : string;
  ga_profile : profile;
  ga_apk : Apk.t;
  ga_expected : (string option * string) list;  (** planted ground truth *)
  ga_classes : int;  (** size metrics for reporting *)
}

(* ------------------------------------------------------------------ *)
(* code-shape helpers                                                  *)
(* ------------------------------------------------------------------ *)

let str_t = T.Ref "java.lang.String"

(* source emitters: (category tag stem, emit imei-like value) *)
let emit_imei m rng ret =
  ignore rng;
  let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag:"src" ~ret tm "android.telephony.TelephonyManager"
    (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getSimSerialNumber" ])
    []

let emit_location m rng ret =
  ignore rng;
  let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
  B.newobj m lm "android.location.LocationManager";
  B.vcall m ~tag:"src" ~ret lm "android.location.LocationManager"
    "getLastKnownLocation" [ B.s "gps" ]

(* sink emitters *)
let emit_log m data =
  B.scall m ~tag:"snk" "android.util.Log"
    (* the variety exercises the whole log sink family *)
    "i" [ B.s "tag"; data ]

let emit_prefs m data =
  let ed = B.local m "ed" ~ty:(T.Ref "android.content.SharedPreferences$Editor") in
  B.newobj m ed "android.content.SharedPreferences$Editor";
  B.vcall m ~tag:"snk" ed "android.content.SharedPreferences$Editor"
    "putString" [ B.s "k"; data ]

let emit_sms m data =
  let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
  B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
  B.vcall m ~tag:"snk" sms "android.telephony.SmsManager" "sendTextMessage"
    [ B.s "+790001"; B.nul; data; B.nul; B.nul ]

let emit_http m data =
  let conn = B.local m "conn" ~ty:(T.Ref "java.net.HttpURLConnection") in
  B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2.example/x" ];
  B.vcall m ~tag:"snk" conn "java.net.HttpURLConnection" "sendRequest" [ data ]

(* relay helper classes give the planted flows interprocedural depth;
   each utility also calls into the next one, giving the Play-profile
   apps the deeper call plumbing that makes them slower to analyse *)
let relay_class ?(chain_to = None) pkg idx =
  let cls = Printf.sprintf "%s.Util%d" pkg idx in
  ( cls,
    B.cls cls
      [
        B.meth "pass" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            match chain_to with
            | Some next ->
                let r = B.local m "r" in
                B.scall m ~ret:r next "pass" [ B.v p ];
                B.retv m (B.v r)
            | None -> B.retv m (B.v p));
        B.meth "decorate" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
            let p = B.param m 0 "p" in
            let r = B.local m "r" in
            B.binop m r "+" (B.s "v=") (B.v p);
            B.retv m (B.v r));
        B.meth "busy" ~static:true ~params:[ T.Int ] ~ret:T.Int (fun m ->
            (* taint-free plumbing: gives the solver work without flows *)
            let p = B.param m 0 "p" in
            let r = B.local m "r" ~ty:T.Int in
            B.binop m r "*" (B.v p) (B.i 31);
            B.binop m r "+" (B.v r) (B.i 7);
            B.retv m (B.v r));
      ] )

(* emit a leak: source -> 0..depth relay hops -> sink, tagged with a
   unique pair *)
let plant_leak m rng ~relays ~leak_id ~src_kind ~sink_kind =
  let x = B.local m (Printf.sprintf "leak%d" leak_id) in
  let src_tag = Printf.sprintf "src%d" leak_id in
  let snk_tag = Printf.sprintf "snk%d" leak_id in
  (match src_kind with
  | `Imei ->
      let tm =
        B.local m (Printf.sprintf "tm%d" leak_id)
          ~ty:(T.Ref "android.telephony.TelephonyManager")
      in
      B.newobj m tm "android.telephony.TelephonyManager";
      B.vcall m ~tag:src_tag ~ret:x tm "android.telephony.TelephonyManager"
        (Prng.choose rng [ "getDeviceId"; "getSubscriberId"; "getLine1Number" ])
        []
  | `Location ->
      let lm =
        B.local m (Printf.sprintf "lm%d" leak_id)
          ~ty:(T.Ref "android.location.LocationManager")
      in
      B.newobj m lm "android.location.LocationManager";
      B.vcall m ~tag:src_tag ~ret:x lm "android.location.LocationManager"
        "getLastKnownLocation" [ B.s "gps" ]);
  (* relay hops *)
  let hops = Prng.int rng 3 in
  let cur = ref x in
  for h = 1 to hops do
    let y = B.local m (Printf.sprintf "leak%d_h%d" leak_id h) in
    (match (relays, Prng.int rng 3) with
    | relay :: _, 0 -> B.scall m ~ret:y relay "pass" [ B.v !cur ]
    | _ :: relay :: _, 1 -> B.scall m ~ret:y relay "decorate" [ B.v !cur ]
    | _ -> B.binop m y "+" (B.s "#") (B.v !cur));
    cur := y
  done;
  let data = B.v !cur in
  let emit =
    match sink_kind with
    | `Log ->
        fun () ->
          B.scall m ~tag:snk_tag "android.util.Log" "i" [ B.s "t"; data ]
    | `Prefs ->
        fun () ->
          let ed =
            B.local m (Printf.sprintf "ed%d" leak_id)
              ~ty:(T.Ref "android.content.SharedPreferences$Editor")
          in
          B.newobj m ed "android.content.SharedPreferences$Editor";
          B.vcall m ~tag:snk_tag ed "android.content.SharedPreferences$Editor"
            "putString" [ B.s "k"; data ]
    | `Sms ->
        fun () ->
          let sms =
            B.local m (Printf.sprintf "sms%d" leak_id)
              ~ty:(T.Ref "android.telephony.SmsManager")
          in
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:snk_tag sms "android.telephony.SmsManager"
            "sendTextMessage" [ B.s "+790001"; B.nul; data; B.nul; B.nul ]
    | `Http ->
        fun () ->
          let conn =
            B.local m (Printf.sprintf "conn%d" leak_id)
              ~ty:(T.Ref "java.net.HttpURLConnection")
          in
          B.newc m conn "java.net.HttpURLConnection" [ B.s "http://c2/x" ];
          B.vcall m ~tag:snk_tag conn "java.net.HttpURLConnection"
            "sendRequest" [ data ]
  in
  emit ();
  (Some src_tag, snk_tag)

(* benign code: constant flows into sinks, arithmetic plumbing *)
let emit_benign m rng ~relays ~idx =
  match Prng.int rng 3 with
  | 0 ->
      let x = B.local m (Printf.sprintf "ben%d" idx) in
      B.const m x (B.s "static text");
      B.scall m "android.util.Log" "d" [ B.s "t"; B.v x ]
  | 1 ->
      let n = B.local m (Printf.sprintf "n%d" idx) ~ty:T.Int in
      B.const m n (B.i (Prng.int rng 1000));
      (match relays with
      | relay :: _ -> B.scall m ~ret:n relay "busy" [ B.v n ]
      | [] -> ())
  | _ ->
      let a = B.local m (Printf.sprintf "a%d" idx) in
      let b = B.local m (Printf.sprintf "b%d" idx) in
      B.const m a (B.s "x");
      B.binop m b "+" (B.v a) (B.s "y")

(* ------------------------------------------------------------------ *)
(* app assembly                                                        *)
(* ------------------------------------------------------------------ *)

let profile_params = function
  | Play ->
      (* (min/max utility classes, extra components, leak count sampler,
         sink choices, benign statements per method) *)
      `Params (10, 28, 5, `PlayLeaks, [ `Log; `Prefs ], 8)
  | Malware -> `Params (1, 5, 2, `Poisson 1.85, [ `Sms; `Http; `Log ], 2)

(** [generate ~profile ~seed index] produces one deterministic app. *)
let generate ~profile ~seed index =
  let rng = Prng.create (seed + (index * 7919)) in
  let (`Params (min_u, max_u, max_comp, leak_model, sinks, benign_per)) =
    profile_params profile
  in
  let pkg =
    Printf.sprintf "gen.%s.app%d" (string_of_profile profile) index
  in
  let n_util = Prng.range rng min_u max_u in
  let relays =
    List.init n_util (fun i ->
        let chain_to =
          (* Play apps get a chained utility layer *)
          if profile = Play && i + 1 < n_util then
            Some (Printf.sprintf "%s.Util%d" pkg (i + 1))
          else None
        in
        relay_class ~chain_to pkg i)
  in
  let relay_names = List.map fst relays in
  let n_leaks =
    match leak_model with
    | `Poisson mean -> Prng.poisson rng mean
    | `PlayLeaks ->
        (* the majority of Play apps leak identifiers into logs/prefs
           (Section 6.3), usually once or twice *)
        if Prng.float rng 1.0 < 0.75 then Prng.range rng 1 2 else 0
  in
  let leak_specs =
    List.init n_leaks (fun i ->
        let src = if Prng.bool rng then `Imei else `Location in
        let sink = Prng.choose rng sinks in
        (i, src, sink))
  in
  let expected = ref [] in
  (* components: one main activity always; extra services/receivers *)
  let n_extra = Prng.int rng (max_comp + 1) in
  let main_cls = pkg ^ ".MainActivity" in
  let extra =
    List.init n_extra (fun i ->
        let kind = Prng.choose rng [ FW.Service; FW.Receiver ] in
        let cls =
          Printf.sprintf "%s.%s%d" pkg
            (match kind with
            | FW.Service -> "Service"
            | FW.Receiver -> "Receiver"
            | _ -> "Comp")
            i
        in
        (kind, cls))
  in
  (* distribute leaks over the components' lifecycle methods *)
  let slots =
    (main_cls, `Activity)
    :: List.map (fun (k, c) -> (c, if k = FW.Service then `Service else `Receiver)) extra
  in
  let leaks_for cls =
    List.filter (fun (i, _, _) ->
        let (slot_cls, _) = List.nth slots (i mod List.length slots) in
        slot_cls = cls)
      leak_specs
  in
  let emit_leaks m cls =
    List.iter
      (fun (i, src, sink) ->
        let pair =
          plant_leak m rng ~relays:relay_names ~leak_id:i ~src_kind:src
            ~sink_kind:sink
        in
        expected := pair :: !expected)
      (leaks_for cls);
    List.iteri (fun j () -> emit_benign m rng ~relays:relay_names ~idx:j)
      (List.init benign_per (fun _ -> ()))
  in
  let main_activity =
    B.cls main_cls ~super:"android.app.Activity"
      [
        Build.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let _this = B.this m in
            let _ = B.param m 0 "b" in
            emit_leaks m main_cls);
        Build.meth "onDestroy" (fun m ->
            let _this = B.this m in
            List.iteri
              (fun j () -> emit_benign m rng ~relays:relay_names ~idx:(100 + j))
              (List.init 2 (fun _ -> ())));
      ]
  in
  let extra_classes =
    List.map
      (fun (kind, cls) ->
        match kind with
        | FW.Service ->
            B.cls cls ~super:"android.app.Service"
              [
                Build.meth "onStartCommand"
                  ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ]
                  ~ret:T.Int
                  (fun m ->
                    let _this = B.this m in
                    let _i = B.param m 0 "i" in
                    emit_leaks m cls;
                    let r = B.local m "r" ~ty:T.Int in
                    B.const m r (B.i 1);
                    B.retv m (B.v r));
              ]
        | _ ->
            B.cls cls ~super:"android.content.BroadcastReceiver"
              [
                Build.meth "onReceive"
                  ~params:
                    [ T.Ref "android.content.Context";
                      T.Ref "android.content.Intent" ]
                  (fun m ->
                    let _this = B.this m in
                    let _c = B.param m 0 "c" in
                    let intent = B.param m 1 "intent" in
                    ignore intent;
                    emit_leaks m cls);
              ])
      extra
  in
  let manifest =
    Apk.simple_manifest ~package:pkg
      ((FW.Activity, main_cls, [])
      :: List.map (fun (k, c) -> (k, c, [])) extra)
  in
  let classes = main_activity :: extra_classes @ List.map snd relays in
  {
    ga_name = Printf.sprintf "%s-%04d" (string_of_profile profile) index;
    ga_profile = profile;
    ga_apk = Apk.make (Printf.sprintf "gen%d" index) ~manifest classes;
    ga_expected = List.rev !expected;
    ga_classes = List.length classes;
  }

(** [corpus ~profile ~seed n] is a deterministic corpus of [n] apps. *)
let corpus ~profile ~seed n = List.init n (generate ~profile ~seed)

(* keep the standalone emitters exported for tests *)
let _ = (emit_imei, emit_location, emit_log, emit_prefs, emit_sms, emit_http)
