lib/appgen/insecurebank.ml: Build Fd_frontend Fd_ir Stmt Types
