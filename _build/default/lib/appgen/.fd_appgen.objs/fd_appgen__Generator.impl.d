lib/appgen/generator.ml: Build Fd_frontend Fd_ir Fd_util List Printf Prng Types
