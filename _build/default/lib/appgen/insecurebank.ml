(** µInsecureBank: the RQ2 subject.

    Paladion's InsecureBank app is a deliberately vulnerable banking
    app built to challenge vulnerability-detection tools; the paper
    reports FlowDroid finding all seven of its data leaks with no
    false positives or negatives in ~31 s (Section 6.2).  The original
    APK is not redistributable, so this module builds a bank app with
    the same structure — login UI with password fields, a main account
    screen, a background sync service, a boot receiver — containing
    exactly seven leaks across the vulnerability classes the original
    exercises:

    + credentials POSTed over plain HTTP,
    + the password logged on a failed login,
    + credentials cached in SharedPreferences,
    + the device IMEI attached to the login request,
    + the account number sent by SMS ("mobile TAN"),
    + the user's location logged by the branch finder,
    + the session token broadcast app-wide. *)

open Fd_ir
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

let str_t = T.Ref "java.lang.String"
let pkg = "com.insecurebank"
let login_cls = pkg ^ ".LoginActivity"
let main_cls = pkg ^ ".AccountActivity"
let svc_cls = pkg ^ ".SyncService"
let recv_cls = pkg ^ ".BootReceiver"
let g_user = B.fld ~ty:str_t (pkg ^ ".Session") "username"
let g_pass = B.fld ~ty:str_t (pkg ^ ".Session") "password"
let g_token = B.fld ~ty:str_t (pkg ^ ".Session") "token"
let g_account = B.fld ~ty:str_t (pkg ^ ".Session") "account"

let login_layout =
  {|<LinearLayout>
  <EditText android:id="@+id/username" android:inputType="text"/>
  <EditText android:id="@+id/password" android:inputType="textPassword"/>
  <Button android:id="@+id/loginBtn" android:onClick="doLogin"/>
</LinearLayout>|}

let account_layout =
  {|<LinearLayout>
  <TextView android:id="@+id/balance"/>
  <Button android:id="@+id/tanBtn" android:onClick="sendTan"/>
</LinearLayout>|}

let session_class = B.cls (pkg ^ ".Session")
    ~fields:[ ("username", str_t); ("password", str_t); ("token", str_t);
              ("account", str_t) ] []

let http_post m ?tag data =
  let conn = B.local m "conn" ~ty:(T.Ref "java.net.HttpURLConnection") in
  B.newc m conn "java.net.HttpURLConnection" [ B.s "http://bank.example/login" ];
  B.vcall m ?tag conn "java.net.HttpURLConnection" "sendRequest" [ data ]

let login_activity =
  B.cls login_cls ~super:"android.app.Activity"
    [
      Build.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "b" in
          B.vcall m this "android.app.Activity" "setContentView"
            [ B.i Fd_frontend.Layout.layout_id_base ]);
      (* XML-declared handler *)
      Build.meth "doLogin" ~params:[ T.Ref "android.view.View" ] (fun m ->
          let this = B.this m in
          let _v = B.param m 0 "v" in
          let ue = B.local m "ue" ~ty:(T.Ref "android.widget.EditText") in
          let pe = B.local m "pe" ~ty:(T.Ref "android.widget.EditText") in
          let user = B.local m "user" and pass = B.local m "pass" in
          let creds = B.local m "creds" in
          let imei = B.local m "imei" in
          let payload = B.local m "payload" in
          let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
          B.vcall m ~ret:ue this "android.app.Activity" "findViewById"
            [ B.i Fd_frontend.Layout.id_base ];
          B.vcall m ~tag:"src-password" ~ret:pe this "android.app.Activity"
            "findViewById" [ B.i (Fd_frontend.Layout.id_base + 1) ];
          B.vcall m ~ret:user ue "android.widget.EditText" "toString" [];
          B.vcall m ~ret:pass pe "android.widget.EditText" "toString" [];
          B.storestatic m g_user (B.v user);
          B.storestatic m g_pass (B.v pass);
          (* leak 1: credentials over plain HTTP *)
          B.binop m creds "+" (B.v user) (B.v pass);
          http_post m ~tag:"sink-http-creds" (B.v creds);
          (* leak 4: the IMEI rides along with the login request *)
          B.newobj m tm "android.telephony.TelephonyManager";
          B.vcall m ~tag:"src-imei" ~ret:imei tm
            "android.telephony.TelephonyManager" "getDeviceId" [];
          B.binop m payload "+" (B.s "device=") (B.v imei);
          http_post m ~tag:"sink-http-imei" (B.v payload);
          (* leak 2: password logged on failure *)
          B.ifgoto m (B.v user) Stmt.Cne B.nul "ok";
          B.scall m ~tag:"sink-log-pass" "android.util.Log" "e"
            [ B.s "login"; B.v pass ];
          B.label m "ok";
          B.ret m);
      (* leak 3: credentials cached in preferences when paused *)
      Build.meth "onPause" (fun m ->
          let _this = B.this m in
          let p = B.local m "p" in
          let ed = B.local m "ed"
              ~ty:(T.Ref "android.content.SharedPreferences$Editor") in
          B.loadstatic m p g_pass;
          B.newobj m ed "android.content.SharedPreferences$Editor";
          B.vcall m ~tag:"sink-prefs" ed
            "android.content.SharedPreferences$Editor" "putString"
            [ B.s "cachedPassword"; B.v p ]);
    ]

let account_activity =
  B.cls main_cls ~super:"android.app.Activity"
    ~fields:[ ("lastLocation", str_t) ]
    ~interfaces:[ "android.location.LocationListener" ]
    [
      Build.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "b" in
          let acct = B.local m "acct" in
          let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
          B.vcall m this "android.app.Activity" "setContentView"
            [ B.i (Fd_frontend.Layout.layout_id_base + 1) ];
          B.const m acct (B.s "DE4302100000");
          B.storestatic m g_account (B.v acct);
          B.newobj m lm "android.location.LocationManager";
          B.vcall m lm "android.location.LocationManager"
            "requestLocationUpdates" [ B.v this ]);
      (* leak 5: the "mobile TAN" SMS carries the account number joined
         with the password-derived token *)
      Build.meth "sendTan" ~params:[ T.Ref "android.view.View" ] (fun m ->
          let _this = B.this m in
          let _v = B.param m 0 "v" in
          let acct = B.local m "acct" and pass = B.local m "pass" in
          let msg = B.local m "msg" in
          let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
          B.loadstatic m acct g_account;
          B.loadstatic m pass g_pass;
          B.binop m msg "+" (B.v acct) (B.v pass);
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:"sink-sms-tan" sms "android.telephony.SmsManager"
            "sendTextMessage" [ B.s "+491234"; B.nul; B.v msg; B.nul; B.nul ]);
      Build.meth "onLocationChanged"
        ~params:[ T.Ref "android.location.Location" ] (fun m ->
          let this = B.this m in
          let loc = B.param m 0 ~tag:"src-location" "loc" in
          let lat = B.local m "lat" in
          B.vcall m ~ret:lat loc "android.location.Location" "getLatitude" [];
          B.store m this (B.fld main_cls "lastLocation") (B.v lat));
      (* leak 6: branch finder logs the location *)
      Build.meth "onStop" (fun m ->
          let this = B.this m in
          let l = B.local m "l" in
          B.load m l this (B.fld main_cls "lastLocation");
          B.scall m ~tag:"sink-log-loc" "android.util.Log" "d"
            [ B.s "branchFinder"; B.v l ]);
    ]

let sync_service =
  B.cls svc_cls ~super:"android.app.Service"
    [
      (* leak 7: the session token (derived from the password) is
         broadcast to every app *)
      Build.meth "onStartCommand"
        ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ] ~ret:T.Int
        (fun m ->
          let this = B.this m in
          let _i = B.param m 0 "intent" in
          let p = B.local m "p" and tok = B.local m "tok" in
          let bcast = B.local m "bcast" ~ty:(T.Ref "android.content.Intent") in
          let r = B.local m "r" ~ty:T.Int in
          B.loadstatic m p g_pass;
          B.binop m tok "+" (B.s "tok:") (B.v p);
          B.storestatic m g_token (B.v tok);
          B.newc m bcast "android.content.Intent" [];
          B.vcall m bcast "android.content.Intent" "putExtra"
            [ B.s "sessionToken"; B.v tok ];
          B.vcall m ~tag:"sink-broadcast" this "android.content.ContextWrapper"
            "sendBroadcast" [ B.v bcast ];
          B.const m r (B.i 1);
          B.retv m (B.v r));
    ]

let boot_receiver =
  B.cls recv_cls ~super:"android.content.BroadcastReceiver"
    [
      (* benign: starts the service; no leak of its own *)
      Build.meth "onReceive"
        ~params:[ T.Ref "android.content.Context"; T.Ref "android.content.Intent" ]
        (fun m ->
          let _this = B.this m in
          let _c = B.param m 0 "c" in
          let _i = B.param m 1 "i" in
          let msg = B.local m "msg" in
          B.const m msg (B.s "booted");
          B.scall m "android.util.Log" "i" [ B.s "boot"; B.v msg ]);
    ]

(** The app bundle. *)
let apk =
  Apk.make "InsecureBank"
    ~manifest:
      (Apk.simple_manifest ~package:pkg
         [
           (FW.Activity, login_cls, []);
           (FW.Activity, main_cls, []);
           (FW.Service, svc_cls, []);
           (FW.Receiver, recv_cls, []);
         ])
    ~layouts:[ ("login", login_layout); ("account", account_layout) ]
    [ session_class; login_activity; account_activity; sync_service;
      boot_receiver ]

(** Ground truth: the seven leaks, as (source tag, sink tag) pairs. *)
let expected_leaks =
  [
    (Some "src-password", "sink-http-creds");
    (Some "src-password", "sink-log-pass");
    (Some "src-password", "sink-prefs");
    (Some "src-imei", "sink-http-imei");
    (Some "src-password", "sink-sms-tan");
    (Some "src-location", "sink-log-loc");
    (Some "src-password", "sink-broadcast");
  ]
