(** SecuriBench-µ: this repository's stand-in for Stanford SecuriBench
    Micro 1.08 (Section 6.4 / Table 2).

    The original is a set of 96 J2EE servlet micro-benchmarks; each
    case here is a servlet-shaped µJimple program with explicitly
    declared entry points and manually supplied sources/sinks —
    exactly the setup the paper describes ("for each of the benchmarks
    we manually defined the necessary lists of sources, sinks and
    entry points").  Group sizes reproduce Table 2's expected-leak
    counts: Aliasing 11, Arrays 9, Basic 60, Collections 14,
    Datastructure 5, Factory 3, Inter 16, Session 3, StrongUpdates 0
    (121 expected in total).  The Pred/Reflection/Sanitizer groups are
    omitted as n/a, as in the paper. *)

open Fd_ir
module B = Build
module T = Types

type t = {
  sb_name : string;
  sb_group : string;
  sb_classes : Jclass.t list;
  sb_entries : (string * string) list;  (** (class, method) entry points *)
  sb_expected : (string option * string) list;
      (** ground truth as (source tag, sink tag) pairs *)
  sb_comment : string;
}

let case name ~group ~comment ?(entries = []) ~expected classes =
  {
    sb_name = name;
    sb_group = group;
    sb_classes = classes;
    sb_entries = entries;
    sb_expected = expected;
    sb_comment = comment;
  }

let req_cls = "javax.servlet.http.HttpServletRequest"
let writer_cls = "java.io.PrintWriter"
let req_t = T.Ref req_cls
let writer_t = T.Ref writer_cls
let str_t = T.Ref "java.lang.String"

(** The manually supplied source/sink configuration for the suite, in
    the textual format. *)
let sources_sinks_config =
  {|<javax.servlet.http.HttpServletRequest: java.lang.String getParameter(java.lang.String)> -> _SOURCE_
<javax.servlet.http.HttpServletRequest: java.lang.String getHeader(java.lang.String)> -> _SOURCE_
<java.io.PrintWriter: void println(java.lang.String)> -> _SINK_
|}

(** [servlet cls body] declares a servlet class whose [doGet] method
    binds the request and response writer and runs [body m this req
    out]. *)
let servlet cls body =
  B.cls cls ~super:"javax.servlet.http.HttpServlet"
    [
      B.meth "doGet" ~params:[ req_t; writer_t ] (fun m ->
          let this = B.this m in
          let req = B.param m 0 "req" in
          let out = B.param m 1 "out" in
          body m this req out);
    ]

(** [entry cls] is the standard entry list for a one-servlet case. *)
let entry cls = [ (cls, "doGet") ]

(** [get_param m ?tag ?pname req x] emits
    [x = req.getParameter(pname)]. *)
let get_param m ?tag ?(pname = "name") req x =
  B.vcall m ?tag ~ret:x req req_cls "getParameter" [ B.s pname ]

(** [println m ?tag out v] emits the sink [out.println(v)]. *)
let println m ?tag out v = B.vcall m ?tag out writer_cls "println" [ v ]

(** [simple name ~group ~comment body] — the common one-servlet,
    explicit-expectations shape. *)
let simple name ~group ~comment ~expected body =
  let cls = "securibench." ^ name in
  case name ~group ~comment ~entries:(entry cls) ~expected [ servlet cls body ]
