(** SecuriBench-µ group "Arrays": 9 expected leaks; the whole-array
    abstraction additionally reports 6 false positives on reads of
    clean elements (Table 2: TP 9/9, FP 6). *)

open Sb_case
open Fd_ir
module B = Build
module T = Types

let e1 src sink = [ (Some src, sink) ]

(* a real leak plus a clean-element read that whole-array tainting
   cannot dismiss *)
let mixed name =
  simple name ~group:"Arrays"
    ~comment:
      "tainted and clean elements in one array: the clean read is a \
       whole-array false positive"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let arr = B.local m "arr" ~ty:(T.Array str_t) in
      let x = B.local m "x" in
      let y = B.local m "y" and z = B.local m "z" in
      B.newarray m arr str_t (B.i 4);
      B.astore m arr (B.i 0) (B.s "clean");
      get_param m ~tag:"s" req x;
      B.astore m arr (B.i 1) (B.v x);
      B.aload m y arr (B.i 1);
      println m ~tag:"k" out (B.v y);
      (* false-positive read *)
      B.aload m z arr (B.i 0);
      println m ~tag:"k-clean" out (B.v z))

let arrays1 = mixed "Arrays1"
let arrays2 = mixed "Arrays2"
let arrays3 = mixed "Arrays3"
let arrays4 = mixed "Arrays4"
let arrays5 = mixed "Arrays5"
let arrays6 = mixed "Arrays6"

let arrays7 =
  simple "Arrays7" ~group:"Arrays" ~comment:"store and read the same slot"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let arr = B.local m "arr" ~ty:(T.Array str_t) in
      let x = B.local m "x" and y = B.local m "y" in
      B.newarray m arr str_t (B.i 1);
      get_param m ~tag:"s" req x;
      B.astore m arr (B.i 0) (B.v x);
      B.aload m y arr (B.i 0);
      println m ~tag:"k" out (B.v y))

let arrays8 =
  simple "Arrays8" ~group:"Arrays" ~comment:"array passed through a call"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let arr = B.local m "arr" ~ty:(T.Array str_t) in
      let x = B.local m "x" and y = B.local m "y" in
      B.newarray m arr str_t (B.i 2);
      get_param m ~tag:"s" req x;
      B.astore m arr (B.i 0) (B.v x);
      B.scall m ~ret:y "securibench.Arrays8" "first" [ B.v arr ];
      println m ~tag:"k" out (B.v y))

let arrays8 =
  {
    arrays8 with
    sb_classes =
      B.cls "securibench.Arrays8Helper" []
      :: List.map
           (fun (c : Jclass.t) ->
             if c.Jclass.c_name = "securibench.Arrays8" then
               { c with
                 Jclass.c_methods =
                   c.Jclass.c_methods
                   @ [
                       (B.meth "first" ~static:true
                          ~params:[ T.Array str_t ] ~ret:str_t (fun m ->
                            let a = B.param m 0 "a" in
                            let r = B.local m "r" in
                            B.aload m r a (B.i 0);
                            B.retv m (B.v r)))
                         "securibench.Arrays8";
                     ];
               }
             else c)
           arrays8.sb_classes;
  }

let arrays9 =
  simple "Arrays9" ~group:"Arrays"
    ~comment:"copy between arrays via System.arraycopy"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" ~ty:(T.Array str_t) in
      let b = B.local m "b" ~ty:(T.Array str_t) in
      let x = B.local m "x" and y = B.local m "y" in
      B.newarray m a str_t (B.i 2);
      B.newarray m b str_t (B.i 2);
      get_param m ~tag:"s" req x;
      B.astore m a (B.i 0) (B.v x);
      B.scall m "java.lang.System" "arraycopy"
        [ B.v a; B.i 0; B.v b; B.i 0; B.i 2 ];
      B.aload m y b (B.i 0);
      println m ~tag:"k" out (B.v y))

(* 6 mixed (1 TP + 1 FP each) + 3 plain = 9 TP, 6 FP *)
let all =
  [ arrays1; arrays2; arrays3; arrays4; arrays5; arrays6; arrays7; arrays8;
    arrays9 ]
