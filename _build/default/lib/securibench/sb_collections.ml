(** SecuriBench-µ group "Collections": 14 expected leaks through the
    container model; the whole-container abstraction adds 3 false
    positives (Table 2: 14/14, FP 3). *)

open Sb_case
open Fd_ir
module B = Build
module T = Types

let e1 src sink = [ (Some src, sink) ]

let collections1 =
  simple "Collections1" ~group:"Collections" ~comment:"list add/get"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m l "java.util.ArrayList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.vcall m ~ret:y l "java.util.ArrayList" "get" [ B.i 0 ];
      println m ~tag:"k" out (B.v y))

let collections2 =
  simple "Collections2" ~group:"Collections" ~comment:"map put/get (same key)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m h "java.util.HashMap" [];
      get_param m ~tag:"s" req x;
      B.vcall m h "java.util.HashMap" "put" [ B.s "key"; B.v x ];
      B.vcall m ~ret:y h "java.util.HashMap" "get" [ B.s "key" ];
      println m ~tag:"k" out (B.v y))

let collections3 =
  simple "Collections3" ~group:"Collections"
    ~comment:"map with distinct keys: the clean-key read is a \
              whole-container false positive"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
      let x = B.local m "x" and y = B.local m "y" and z = B.local m "z" in
      B.newc m h "java.util.HashMap" [];
      B.vcall m h "java.util.HashMap" "put" [ B.s "clean"; B.s "harmless" ];
      get_param m ~tag:"s" req x;
      B.vcall m h "java.util.HashMap" "put" [ B.s "dirty"; B.v x ];
      B.vcall m ~ret:y h "java.util.HashMap" "get" [ B.s "dirty" ];
      println m ~tag:"k" out (B.v y);
      B.vcall m ~ret:z h "java.util.HashMap" "get" [ B.s "clean" ];
      println m ~tag:"k-clean" out (B.v z))

let collections4 =
  simple "Collections4" ~group:"Collections" ~comment:"iterator traversal"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.LinkedList") in
      let it = B.local m "it" ~ty:(T.Ref "java.util.Iterator") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m l "java.util.LinkedList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.LinkedList" "add" [ B.v x ];
      B.vcall m ~ret:it l "java.util.LinkedList" "iterator" [];
      B.vcall m ~ret:y it "java.util.Iterator" "next" [];
      println m ~tag:"k" out (B.v y))

let collections5 =
  simple "Collections5" ~group:"Collections" ~comment:"set membership"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let st = B.local m "st" ~ty:(T.Ref "java.util.HashSet") in
      let it = B.local m "it" ~ty:(T.Ref "java.util.Iterator") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m st "java.util.HashSet" [];
      get_param m ~tag:"s" req x;
      B.vcall m st "java.util.HashSet" "add" [ B.v x ];
      B.vcall m ~ret:it st "java.util.HashSet" "iterator" [];
      B.vcall m ~ret:y it "java.util.Iterator" "next" [];
      println m ~tag:"k" out (B.v y))

let collections6 =
  simple "Collections6" ~group:"Collections"
    ~comment:"list index confusion: clean slot read still flagged \
              (false positive)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let x = B.local m "x" and y = B.local m "y" and z = B.local m "z" in
      B.newc m l "java.util.ArrayList" [];
      B.vcall m l "java.util.ArrayList" "add" [ B.s "benign" ];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.vcall m ~ret:y l "java.util.ArrayList" "get" [ B.i 1 ];
      println m ~tag:"k" out (B.v y);
      B.vcall m ~ret:z l "java.util.ArrayList" "get" [ B.i 0 ];
      println m ~tag:"k-clean" out (B.v z))

let collections7 =
  simple "Collections7" ~group:"Collections"
    ~comment:"removal does not untaint the container (false positive)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let x = B.local m "x" and y = B.local m "y" and z = B.local m "z" in
      B.newc m l "java.util.ArrayList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.vcall m ~ret:y l "java.util.ArrayList" "get" [ B.i 0 ];
      println m ~tag:"k" out (B.v y);
      B.vcall m ~ret:z l "java.util.ArrayList" "remove" [ B.i 0 ];
      (* after removal the list is clean at runtime *)
      let w = B.local m "w" in
      B.vcall m ~ret:w l "java.util.ArrayList" "get" [ B.i 0 ];
      println m ~tag:"k-after-remove" out (B.v w))

let collections8 =
  simple "Collections8" ~group:"Collections" ~comment:"map keySet traversal"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
      let ks = B.local m "ks" ~ty:(T.Ref "java.util.Set") in
      let it = B.local m "it" ~ty:(T.Ref "java.util.Iterator") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m h "java.util.HashMap" [];
      get_param m ~tag:"s" req x;
      (* the tainted value is the key *)
      B.vcall m h "java.util.HashMap" "put" [ B.v x; B.s "v" ];
      B.vcall m ~ret:ks h "java.util.HashMap" "keySet" [];
      B.vcall m ~ret:it ks "java.util.Set" "iterator" [];
      B.vcall m ~ret:y it "java.util.Iterator" "next" [];
      println m ~tag:"k" out (B.v y))

let collections9 =
  simple "Collections9" ~group:"Collections"
    ~comment:"container passed through a helper" ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m l "java.util.ArrayList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.scall m ~ret:y "securibench.C9Helper" "first" [ B.v l ];
      println m ~tag:"k" out (B.v y))

let c9_helper =
  B.cls "securibench.C9Helper"
    [
      B.meth "first" ~static:true ~params:[ T.Ref "java.util.ArrayList" ]
        ~ret:str_t (fun m ->
          let l = B.param m 0 "l" in
          let r = B.local m "r" in
          B.vcall m ~ret:r l "java.util.ArrayList" "get" [ B.i 0 ];
          B.retv m (B.v r));
    ]

let collections9 =
  { collections9 with sb_classes = c9_helper :: collections9.sb_classes }

let collections10 =
  simple "Collections10" ~group:"Collections"
    ~comment:"two containers, two leaks"
    ~expected:[ (Some "s1", "k1"); (Some "s2", "k2") ]
    (fun m _this req out ->
      let l1 = B.local m "l1" ~ty:(T.Ref "java.util.ArrayList") in
      let l2 = B.local m "l2" ~ty:(T.Ref "java.util.LinkedList") in
      let a = B.local m "a" and b = B.local m "b" in
      let ya = B.local m "ya" and yb = B.local m "yb" in
      B.newc m l1 "java.util.ArrayList" [];
      B.newc m l2 "java.util.LinkedList" [];
      get_param m ~tag:"s1" ~pname:"p1" req a;
      get_param m ~tag:"s2" ~pname:"p2" req b;
      B.vcall m l1 "java.util.ArrayList" "add" [ B.v a ];
      B.vcall m l2 "java.util.LinkedList" "add" [ B.v b ];
      B.vcall m ~ret:ya l1 "java.util.ArrayList" "get" [ B.i 0 ];
      B.vcall m ~ret:yb l2 "java.util.LinkedList" "get" [ B.i 0 ];
      println m ~tag:"k1" out (B.v ya);
      println m ~tag:"k2" out (B.v yb))

let collections11 =
  simple "Collections11" ~group:"Collections"
    ~comment:"nested containers: list inside a map"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let l2 = B.local m "l2" ~ty:(T.Ref "java.util.ArrayList") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m h "java.util.HashMap" [];
      B.newc m l "java.util.ArrayList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.vcall m h "java.util.HashMap" "put" [ B.s "k"; B.v l ];
      B.vcall m ~ret:l2 h "java.util.HashMap" "get" [ B.s "k" ];
      B.vcall m ~ret:y l2 "java.util.ArrayList" "get" [ B.i 0 ];
      println m ~tag:"k" out (B.v y))

let collections12 =
  simple "Collections12" ~group:"Collections"
    ~comment:"toArray round trip"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
      let arr = B.local m "arr" ~ty:(T.Array str_t) in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m l "java.util.ArrayList" [];
      get_param m ~tag:"s" req x;
      B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
      B.vcall m ~ret:arr l "java.util.ArrayList" "toArray" [];
      B.aload m y arr (B.i 0);
      println m ~tag:"k" out (B.v y))

(* TP: 1+1+1+1+1+1+1+1+1+2+1+1 = 13... plus Collections13 below = 14;
   FP: Collections3, Collections6, Collections7 = 3 *)
let collections13 =
  simple "Collections13" ~group:"Collections"
    ~comment:"value stored under a tainted key, whole map leaked"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
      let vs = B.local m "vs" ~ty:(T.Ref "java.util.Set") in
      let it = B.local m "it" ~ty:(T.Ref "java.util.Iterator") in
      let x = B.local m "x" and y = B.local m "y" in
      B.newc m h "java.util.HashMap" [];
      get_param m ~tag:"s" req x;
      B.vcall m h "java.util.HashMap" "put" [ B.s "id"; B.v x ];
      B.vcall m ~ret:vs h "java.util.HashMap" "values" [];
      B.vcall m ~ret:it vs "java.util.Set" "iterator" [];
      B.vcall m ~ret:y it "java.util.Iterator" "next" [];
      println m ~tag:"k" out (B.v y))

let all =
  [
    collections1; collections2; collections3; collections4; collections5;
    collections6; collections7; collections8; collections9; collections10;
    collections11; collections12; collections13;
  ]
