lib/securibench/sb_collections.ml: Build Fd_ir Sb_case Types
