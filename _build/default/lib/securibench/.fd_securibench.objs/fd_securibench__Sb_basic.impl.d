lib/securibench/sb_basic.ml: Build Fd_ir Fun List Printf Sb_case Stmt Types
