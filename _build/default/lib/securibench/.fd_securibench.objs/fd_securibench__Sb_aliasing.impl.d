lib/securibench/sb_aliasing.ml: Build Fd_ir Sb_case Types
