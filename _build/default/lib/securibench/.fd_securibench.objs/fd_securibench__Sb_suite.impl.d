lib/securibench/sb_suite.ml: List Sb_aliasing Sb_arrays Sb_basic Sb_case Sb_collections Sb_misc_groups
