lib/securibench/sb_arrays.ml: Build Fd_ir Jclass List Sb_case Types
