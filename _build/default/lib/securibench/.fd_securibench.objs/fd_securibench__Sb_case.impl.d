lib/securibench/sb_case.ml: Build Fd_ir Jclass Types
