lib/securibench/sb_misc_groups.ml: Build Fd_ir List Printf Sb_case Stmt Types
