(** SecuriBench-µ groups "Datastructure" (5 leaks), "Factory" (3),
    "Inter" (16 expected, 14 found), "Session" (3) and
    "StrongUpdates" (0 expected, 0 false positives). *)

open Sb_case
open Fd_ir
module B = Build
module T = Types

let e1 src sink = [ (Some src, sink) ]

(* ---------------- Datastructure ---------------- *)

let node_cls = "securibench.DSNode"
let f_val = B.fld ~ty:str_t node_cls "value"
let f_nxt = B.fld ~ty:(T.Ref node_cls) node_cls "next"

let ds_node = B.cls node_cls ~fields:[ ("value", str_t); ("next", T.Ref node_cls) ] []

let ds_case name ~comment ~expected body =
  let cls = "securibench." ^ name in
  case name ~group:"Datastructure" ~comment ~entries:(entry cls) ~expected
    [ ds_node; servlet cls body ]

let datastructure1 =
  ds_case "Datastructure1" ~comment:"taint inside a wrapper node"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let n = B.local m "n" and x = B.local m "x" and y = B.local m "y" in
      B.newobj m n node_cls;
      get_param m ~tag:"s" req x;
      B.store m n f_val (B.v x);
      B.load m y n f_val;
      println m ~tag:"k" out (B.v y))

let datastructure2 =
  ds_case "Datastructure2" ~comment:"two-node linked chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and r = B.local m "r" and y = B.local m "y" in
      B.newobj m a node_cls;
      B.newobj m b node_cls;
      B.store m a f_nxt (B.v b);
      get_param m ~tag:"s" req x;
      B.store m b f_val (B.v x);
      B.load m r a f_nxt;
      B.load m y r f_val;
      println m ~tag:"k" out (B.v y))

let datastructure3 =
  ds_case "Datastructure3" ~comment:"stack built from nodes (push/pop)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let top = B.local m "top" and n = B.local m "n" in
      let x = B.local m "x" and y = B.local m "y" in
      (* push *)
      B.newobj m top node_cls;
      B.newobj m n node_cls;
      get_param m ~tag:"s" req x;
      B.store m n f_val (B.v x);
      B.store m n f_nxt (B.v top);
      B.move m top n;
      (* pop *)
      B.load m y top f_val;
      println m ~tag:"k" out (B.v y))

let datastructure4 =
  ds_case "Datastructure4" ~comment:"recursive traversal of a chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" and c = B.local m "c" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a node_cls;
      B.newobj m b node_cls;
      B.newobj m c node_cls;
      B.store m a f_nxt (B.v b);
      B.store m b f_nxt (B.v c);
      get_param m ~tag:"s" req x;
      B.store m c f_val (B.v x);
      B.scall m ~ret:y "securibench.DSWalker" "last" [ B.v a ];
      println m ~tag:"k" out (B.v y))

let ds_walker =
  B.cls "securibench.DSWalker"
    [
      B.meth "last" ~static:true ~params:[ T.Ref node_cls ] ~ret:str_t
        (fun m ->
          let p = B.param m 0 "p" in
          let nxt = B.local m "nxt" ~ty:(T.Ref node_cls) in
          let r = B.local m "r" in
          B.load m nxt p f_nxt;
          B.ifgoto m (B.v nxt) Stmt.Ceq B.nul "base";
          B.scall m ~ret:r "securibench.DSWalker" "last" [ B.v nxt ];
          B.retv m (B.v r);
          B.label m "base";
          B.load m r p f_val;
          B.retv m (B.v r));
    ]

let datastructure4 =
  { datastructure4 with sb_classes = ds_walker :: datastructure4.sb_classes }

let datastructure5 =
  ds_case "Datastructure5" ~comment:"field-sensitive negative control \
                                     inside a positive case"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let n = B.local m "n" and x = B.local m "x" in
      let y = B.local m "y" and z = B.local m "z" ~ty:(T.Ref node_cls) in
      B.newobj m n node_cls;
      B.newobj m z node_cls;
      get_param m ~tag:"s" req x;
      B.store m n f_val (B.v x);
      B.store m n f_nxt (B.v z);
      B.load m y n f_val;
      println m ~tag:"k" out (B.v y);
      (* the clean sibling field must stay silent *)
      let w = B.local m "w" and wv = B.local m "wv" in
      B.load m w n f_nxt;
      B.load m wv w f_val;
      println m ~tag:"k-clean" out (B.v wv))

let datastructure = [ datastructure1; datastructure2; datastructure3;
                      datastructure4; datastructure5 ]

(* ---------------- Factory ---------------- *)

let factory_case i =
  let name = Printf.sprintf "Factory%d" i in
  let cls = "securibench." ^ name in
  let fac = "securibench.Factory" in
  case name ~group:"Factory"
    ~comment:"object obtained from a (possibly nested) factory method"
    ~entries:(entry cls)
    ~expected:(e1 "s" "k")
    [
      ds_node;
      B.cls fac
        [
          B.meth "create" ~static:true ~ret:(T.Ref node_cls) (fun m ->
              let n = B.local m "n" ~ty:(T.Ref node_cls) in
              B.newobj m n node_cls;
              B.retv m (B.v n));
          B.meth "createNested" ~static:true ~ret:(T.Ref node_cls) (fun m ->
              let n = B.local m "n" ~ty:(T.Ref node_cls) in
              B.scall m ~ret:n fac "create" [];
              B.retv m (B.v n));
        ];
      servlet cls (fun m _this req out ->
          let n = B.local m "n" ~ty:(T.Ref node_cls) in
          let x = B.local m "x" and y = B.local m "y" in
          (match i with
          | 1 -> B.scall m ~ret:n fac "create" []
          | 2 -> B.scall m ~ret:n fac "createNested" []
          | _ ->
              (* two factory objects; only one is tainted *)
              let other = B.local m "other" ~ty:(T.Ref node_cls) in
              B.scall m ~ret:n fac "create" [];
              B.scall m ~ret:other fac "create" []);
          get_param m ~tag:"s" req x;
          B.store m n f_val (B.v x);
          B.load m y n f_val;
          println m ~tag:"k" out (B.v y));
    ]

let factory = [ factory_case 1; factory_case 2; factory_case 3 ]

(* ---------------- Inter ---------------- *)

(* Inter-"servlet" flows: data staged in shared state by one entry
   point and leaked by another. 16 expected; the two framework
   round-trip cases are missed (the registry's code is opaque and has
   no model — the IntentSink1 situation transplanted to J2EE). *)

let shared = B.fld ~ty:str_t "securibench.InterGlobals" "shared"

let two_servlet name ~group ~comment ~expected ~writer ~reader =
  let w_cls = Printf.sprintf "securibench.%sWriter" name in
  let r_cls = Printf.sprintf "securibench.%sReader" name in
  case name ~group ~comment
    ~entries:[ (w_cls, "doGet"); (r_cls, "doGet") ]
    ~expected
    [ servlet w_cls writer; servlet r_cls reader ]

let inter_static i =
  let name = Printf.sprintf "Inter%d" i in
  two_servlet name ~group:"Inter"
    ~comment:"a static field carries the data between two servlets"
    ~expected:(e1 "s" "k")
    ~writer:(fun m _this req _out ->
      let x = B.local m "x" in
      get_param m ~tag:"s" req x;
      B.storestatic m shared (B.v x))
    ~reader:(fun m _this _req out ->
      let y = B.local m "y" in
      B.loadstatic m y shared;
      println m ~tag:"k" out (B.v y))

let holder_cls = "securibench.InterHolder"
let f_held = B.fld ~ty:str_t holder_cls "held"
let g_holder = B.fld ~ty:(T.Ref holder_cls) "securibench.InterGlobals" "holder"

let inter_singleton i =
  let name = Printf.sprintf "Inter%d" i in
  let holder = B.cls holder_cls ~fields:[ ("held", str_t) ] [] in
  let c =
    two_servlet name ~group:"Inter"
      ~comment:"a singleton object's field carries the data"
      ~expected:(e1 "s" "k")
      ~writer:(fun m _this req _out ->
        let x = B.local m "x" in
        let h = B.local m "h" ~ty:(T.Ref holder_cls) in
        B.newobj m h holder_cls;
        B.storestatic m g_holder (B.v h);
        get_param m ~tag:"s" req x;
        B.store m h f_held (B.v x))
      ~reader:(fun m _this _req out ->
        let h = B.local m "h" ~ty:(T.Ref holder_cls) in
        let y = B.local m "y" in
        B.loadstatic m h g_holder;
        B.load m y h f_held;
        println m ~tag:"k" out (B.v y))
  in
  { c with sb_classes = holder :: c.sb_classes }

let inter_call i =
  let name = Printf.sprintf "Inter%d" i in
  let a_cls = Printf.sprintf "securibench.%sFront" name in
  let b_cls = Printf.sprintf "securibench.%sBack" name in
  case name ~group:"Inter"
    ~comment:"one servlet forwards to another by direct call"
    ~entries:[ (a_cls, "doGet") ]
    ~expected:(e1 "s" "k")
    [
      servlet a_cls (fun m _this req out ->
          let x = B.local m "x" in
          let b = B.local m "b" ~ty:(T.Ref b_cls) in
          get_param m ~tag:"s" req x;
          B.newobj m b b_cls;
          B.vcall m b b_cls "handle" [ B.v x; B.v out ]);
      B.cls b_cls
        [
          B.meth "handle" ~params:[ str_t; writer_t ] (fun m ->
              let _ = B.this m in
              let p = B.param m 0 "p" in
              let out = B.param m 1 "out" in
              println m ~tag:"k" out (B.v p));
        ];
    ]

(* the two designed misses: staged through an opaque framework
   registry whose implementation the analysis cannot see *)
let inter_framework i =
  let name = Printf.sprintf "Inter%d" i in
  two_servlet name ~group:"Inter"
    ~comment:
      "the data round-trips through an unmodelled framework registry \
       (phantom code, no wrapper rule): a designed miss mirroring the \
       paper's framework-round-trip limitation"
    ~expected:(e1 "s" "k")
    ~writer:(fun m _this req _out ->
      let x = B.local m "x" in
      get_param m ~tag:"s" req x;
      (* the registry's store returns void and its code is opaque *)
      B.scall m "framework.OpaqueRegistry" "store" [ B.s "slot"; B.v x ])
    ~reader:(fun m _this _req out ->
      let y = B.local m "y" in
      B.scall m ~ret:y "framework.OpaqueRegistry" "load" [ B.s "slot" ];
      println m ~tag:"k" out (B.v y))

let inter =
  [
    inter_static 1; inter_static 2; inter_static 3; inter_static 4;
    inter_static 5; inter_static 6;
    inter_singleton 7; inter_singleton 8; inter_singleton 9;
    inter_singleton 10;
    inter_call 11; inter_call 12; inter_call 13; inter_call 14;
    inter_framework 15; inter_framework 16;
  ]

(* ---------------- Session ---------------- *)

let session_case i =
  let name = Printf.sprintf "Session%d" i in
  simple name ~group:"Session"
    ~comment:"data staged in the HTTP session (wrapper-modelled)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let sess = B.local m "sess" ~ty:(T.Ref "javax.servlet.http.HttpSession") in
      let x = B.local m "x" and y = B.local m "y" in
      B.vcall m ~ret:sess req req_cls "getSession" [];
      get_param m ~tag:"s" req x;
      (match i with
      | 1 ->
          B.vcall m sess "javax.servlet.http.HttpSession" "setAttribute"
            [ B.s "a"; B.v x ];
          B.vcall m ~ret:y sess "javax.servlet.http.HttpSession" "getAttribute"
            [ B.s "a" ]
      | 2 ->
          (* through a second reference to the same session *)
          let sess2 =
            B.local m "sess2" ~ty:(T.Ref "javax.servlet.http.HttpSession")
          in
          B.move m sess2 sess;
          B.vcall m sess "javax.servlet.http.HttpSession" "setAttribute"
            [ B.s "a"; B.v x ];
          B.vcall m ~ret:y sess2 "javax.servlet.http.HttpSession"
            "getAttribute" [ B.s "a" ]
      | _ ->
          (* attribute value concatenated before storing *)
          let x2 = B.local m "x2" in
          B.binop m x2 "+" (B.s "u:") (B.v x);
          B.vcall m sess "javax.servlet.http.HttpSession" "setAttribute"
            [ B.s "a"; B.v x2 ];
          B.vcall m ~ret:y sess "javax.servlet.http.HttpSession" "getAttribute"
            [ B.s "a" ]);
      println m ~tag:"k" out (B.v y))

let session = [ session_case 1; session_case 2; session_case 3 ]

(* ---------------- StrongUpdates ---------------- *)

(* no leaks expected; local strong updates and fresh allocations must
   keep the engine silent (Table 2: 0/0 with 0 FP) *)
let strong_updates1 =
  simple "StrongUpdates1" ~group:"StrongUpdates"
    ~comment:"a local overwritten with a constant before the sink"
    ~expected:[]
    (fun m _this req out ->
      let x = B.local m "x" in
      get_param m req x;
      B.const m x (B.s "overwritten");
      println m out (B.v x))

let strong_updates2 =
  simple "StrongUpdates2" ~group:"StrongUpdates"
    ~comment:"the carrier object is replaced by a fresh allocation"
    ~expected:[]
    (fun m _this req out ->
      let n = B.local m "n" and x = B.local m "x" and y = B.local m "y" in
      B.newobj m n node_cls;
      get_param m req x;
      B.store m n f_val (B.v x);
      B.newobj m n node_cls;
      B.load m y n f_val;
      println m out (B.v y))

let strong_updates = [ strong_updates1; strong_updates2 ]

let strong_updates =
  List.map
    (fun c -> { c with sb_classes = ds_node :: c.sb_classes })
    strong_updates
