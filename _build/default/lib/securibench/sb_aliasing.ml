(** SecuriBench-µ group "Aliasing": 11 expected leaks through aliased
    heap locations — the cases the on-demand backward analysis exists
    for.  Table 2: 11/11 found, 0 false positives. *)

open Sb_case
open Fd_ir
module B = Build
module T = Types

let e1 src sink = [ (Some src, sink) ]
let box = "securibench.ABox"
let f_v = B.fld ~ty:str_t box "v"
let f_next = B.fld ~ty:(T.Ref box) box "next"

let abox =
  B.cls box ~fields:[ ("v", str_t); ("next", T.Ref box) ] []

let with_box name ~comment ~expected body =
  let cls = "securibench." ^ name in
  case name ~group:"Aliasing" ~comment ~entries:(entry cls) ~expected
    [ abox; servlet cls body ]

let aliasing1 =
  with_box "Aliasing1" ~comment:"two locals referencing one object"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      B.move m b a;
      get_param m ~tag:"s" req x;
      B.store m a f_v (B.v x);
      B.load m y b f_v;
      println m ~tag:"k" out (B.v y))

let aliasing2 =
  with_box "Aliasing2" ~comment:"alias established before the taint"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      B.move m b a;
      (* negative control: reading through b before the store must not
         leak (flow sensitivity / activation statements) *)
      let pre = B.local m "pre" in
      B.load m pre b f_v;
      println m ~tag:"k-pre" out (B.v pre);
      get_param m ~tag:"s" req x;
      B.store m a f_v (B.v x);
      B.load m y b f_v;
      println m ~tag:"k" out (B.v y))

let aliasing3 =
  with_box "Aliasing3" ~comment:"alias through a callee (taintIt-style)"
    ~expected:[ (Some "s", "k-in"); (Some "s", "k-out") ]
    (fun m _this req out ->
      let cls = "securibench.Aliasing3" in
      ignore cls;
      let a = B.local m "a" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      get_param m ~tag:"s" req x;
      B.scall m "securibench.A3Helper" "taintIt" [ B.v x; B.v a; B.v out ];
      B.load m y a f_v;
      println m ~tag:"k-out" out (B.v y))

let a3_helper =
  B.cls "securibench.A3Helper"
    [
      B.meth "taintIt" ~static:true
        ~params:[ str_t; T.Ref box; writer_t ] (fun m ->
          let input = B.param m 0 "input" in
          let dest = B.param m 1 "dest" in
          let out = B.param m 2 "out" in
          let alias = B.local m "alias" ~ty:(T.Ref box) in
          let v = B.local m "v" in
          B.move m alias dest;
          B.store m alias f_v (B.v input);
          B.load m v dest f_v;
          println m ~tag:"k-in" out (B.v v));
    ]

let aliasing3 =
  { aliasing3 with sb_classes = a3_helper :: aliasing3.sb_classes }

let aliasing4 =
  with_box "Aliasing4" ~comment:"alias through a two-level field path"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and mid = B.local m "mid" and b = B.local m "b" in
      let x = B.local m "x" and r = B.local m "r" and y = B.local m "y" in
      B.newobj m a box;
      B.newobj m mid box;
      B.store m a f_next (B.v mid);
      B.load m b a f_next;
      get_param m ~tag:"s" req x;
      B.store m b f_v (B.v x);
      B.load m r a f_next;
      B.load m y r f_v;
      println m ~tag:"k" out (B.v y))

let aliasing5 =
  with_box "Aliasing5"
    ~comment:"negative control: distinct objects do not alias"
    ~expected:(e1 "s" "k1")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and y = B.local m "y" and z = B.local m "z" in
      B.newobj m a box;
      B.newobj m b box;
      get_param m ~tag:"s" req x;
      B.store m a f_v (B.v x);
      B.load m y a f_v;
      println m ~tag:"k1" out (B.v y);
      B.load m z b f_v;
      println m ~tag:"k2" out (B.v z))

let aliasing6 =
  with_box "Aliasing6" ~comment:"alias chain of three references"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" and c = B.local m "c" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      B.move m b a;
      B.move m c b;
      get_param m ~tag:"s" req x;
      B.store m c f_v (B.v x);
      B.load m y a f_v;
      println m ~tag:"k" out (B.v y))

let aliasing7 =
  with_box "Aliasing7" ~comment:"alias of a static-field referent"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let g = B.fld ~ty:(T.Ref box) "securibench.AGlobals" "shared" in
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      B.storestatic m g (B.v a);
      get_param m ~tag:"s" req x;
      B.store m a f_v (B.v x);
      B.loadstatic m b g;
      B.load m y b f_v;
      println m ~tag:"k" out (B.v y))

let aliasing8 =
  with_box "Aliasing8"
    ~comment:"alias created in a callee and returned (Figure 2 shape)"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" and y = B.local m "y" in
      B.newobj m a box;
      B.scall m ~ret:b "securibench.A8Helper" "mkAlias" [ B.v a ];
      get_param m ~tag:"s" req x;
      B.store m a f_v (B.v x);
      B.load m y b f_v;
      println m ~tag:"k" out (B.v y))

let a8_helper =
  B.cls "securibench.A8Helper"
    [
      B.meth "mkAlias" ~static:true ~params:[ T.Ref box ] ~ret:(T.Ref box)
        (fun m ->
          let p = B.param m 0 "p" in
          B.retv m (B.v p));
    ]

let aliasing8 = { aliasing8 with sb_classes = a8_helper :: aliasing8.sb_classes }

let aliasing9 =
  with_box "Aliasing9" ~comment:"taint stored through one alias, leaked \
                                 through a second alias of the same field"
    ~expected:[ (Some "s", "ka"); (Some "s", "kb") ]
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      let x = B.local m "x" in
      let ya = B.local m "ya" and yb = B.local m "yb" in
      B.newobj m a box;
      B.move m b a;
      get_param m ~tag:"s" req x;
      B.store m b f_v (B.v x);
      B.load m ya a f_v;
      println m ~tag:"ka" out (B.v ya);
      B.load m yb b f_v;
      println m ~tag:"kb" out (B.v yb))

(* 1+1+2+1+1+1+1+1+2 = 11 expected leaks *)
let all =
  [
    aliasing1; aliasing2; aliasing3; aliasing4; aliasing5; aliasing6;
    aliasing7; aliasing8; aliasing9;
  ]
