(** SecuriBench-µ group "Basic": 60 expected leaks over straightforward
    explicit flows through language constructs.  Two of them route the
    data through reflection with non-constant targets and are missed
    (Section 5, Limitations: reflective calls resolve only for string
    constants) — Table 2's Basic 58/60. *)

open Sb_case
open Fd_ir
module B = Build
module T = Types

let e1 src sink = [ (Some src, sink) ]

(* -------- simple propagation shapes, one leak each -------- *)

let basic1 =
  simple "Basic1" ~group:"Basic" ~comment:"direct source-to-sink"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" in
      get_param m ~tag:"s" req x;
      println m ~tag:"k" out (B.v x))

let basic2 =
  simple "Basic2" ~group:"Basic" ~comment:"local copy"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.move m y x;
      println m ~tag:"k" out (B.v y))

let basic3 =
  simple "Basic3" ~group:"Basic" ~comment:"string concatenation"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.binop m y "+" (B.s "prefix ") (B.v x);
      println m ~tag:"k" out (B.v y))

let basic4 =
  simple "Basic4" ~group:"Basic" ~comment:"StringBuilder append chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and sb = B.local m "sb" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.newc m sb "java.lang.StringBuilder" [];
      B.vcall m sb "java.lang.StringBuilder" "append" [ B.s "a" ];
      B.vcall m sb "java.lang.StringBuilder" "append" [ B.v x ];
      B.vcall m ~ret:y sb "java.lang.StringBuilder" "toString" [];
      println m ~tag:"k" out (B.v y))

let basic5 =
  simple "Basic5" ~group:"Basic" ~comment:"case conversion"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.vcall m ~ret:y x "java.lang.String" "toLowerCase" [];
      println m ~tag:"k" out (B.v y))

let basic6 =
  simple "Basic6" ~group:"Basic" ~comment:"substring"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.vcall m ~ret:y x "java.lang.String" "substring" [ B.i 1 ];
      println m ~tag:"k" out (B.v y))

let basic7 =
  simple "Basic7" ~group:"Basic" ~comment:"two independent leaks"
    ~expected:[ (Some "s1", "k1"); (Some "s2", "k2") ]
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" in
      get_param m ~tag:"s1" ~pname:"p1" req a;
      get_param m ~tag:"s2" ~pname:"p2" req b;
      println m ~tag:"k1" out (B.v a);
      println m ~tag:"k2" out (B.v b))

let basic8 =
  simple "Basic8" ~group:"Basic" ~comment:"leak under both branches"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" and c = B.local m "c" ~ty:T.Int in
      get_param m ~tag:"s" req x;
      B.binop m c "%" (B.i 13) (B.i 2);
      B.ifgoto m (B.v c) Stmt.Ceq (B.i 0) "other";
      B.binop m y "+" (B.s "A") (B.v x);
      B.goto m "send";
      B.label m "other";
      B.binop m y "+" (B.s "B") (B.v x);
      B.label m "send";
      println m ~tag:"k" out (B.v y))

let basic9 =
  simple "Basic9" ~group:"Basic" ~comment:"leak inside a loop"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and i = B.local m "i" ~ty:T.Int in
      get_param m ~tag:"s" req x;
      B.const m i (B.i 0);
      B.label m "head";
      B.ifgoto m (B.v i) Stmt.Cge (B.i 3) "done";
      println m ~tag:"k" out (B.v x);
      B.binop m i "+" (B.v i) (B.i 1);
      B.goto m "head";
      B.label m "done";
      B.nop m)

(* -------- interprocedural shapes -------- *)

let helper_cls = "securibench.BasicHelpers"

let basic_helpers =
  B.cls helper_cls
    [
      B.meth "identity" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
          let p = B.param m 0 "p" in
          B.retv m (B.v p));
      B.meth "wrap" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
          let p = B.param m 0 "p" in
          let r = B.local m "r" in
          B.binop m r "+" (B.s "[") (B.v p);
          B.retv m (B.v r));
      B.meth "sinkIt" ~static:true ~params:[ str_t; writer_t ] (fun m ->
          let p = B.param m 0 "p" in
          let out = B.param m 1 "out" in
          println m ~tag:"k-helper" out (B.v p));
      B.meth "deep3" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
          let p = B.param m 0 "p" in
          let r = B.local m "r" in
          B.scall m ~ret:r helper_cls "deep2" [ B.v p ];
          B.retv m (B.v r));
      B.meth "deep2" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
          let p = B.param m 0 "p" in
          let r = B.local m "r" in
          B.scall m ~ret:r helper_cls "deep1" [ B.v p ];
          B.retv m (B.v r));
      B.meth "deep1" ~static:true ~params:[ str_t ] ~ret:str_t (fun m ->
          let p = B.param m 0 "p" in
          B.retv m (B.v p));
      B.meth "recurse" ~static:true ~params:[ str_t; T.Int ] ~ret:str_t
        (fun m ->
          let p = B.param m 0 "p" in
          let n = B.param m 1 "n" in
          let r = B.local m "r" in
          B.ifgoto m (B.v n) Stmt.Cle (B.i 0) "base";
          let n' = B.local m "nn" ~ty:T.Int in
          B.binop m n' "-" (B.v n) (B.i 1);
          B.scall m ~ret:r helper_cls "recurse" [ B.v p; B.v n' ];
          B.retv m (B.v r);
          B.label m "base";
          B.retv m (B.v p));
    ]

let inter_case name ~comment ~expected body =
  let cls = "securibench." ^ name in
  case name ~group:"Basic" ~comment ~entries:(entry cls) ~expected
    [ basic_helpers; servlet cls body ]

let basic10 =
  inter_case "Basic10" ~comment:"through a helper's return value"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.scall m ~ret:y helper_cls "identity" [ B.v x ];
      println m ~tag:"k" out (B.v y))

let basic11 =
  inter_case "Basic11" ~comment:"sink inside a helper"
    ~expected:[ (Some "s", "k-helper") ]
    (fun m _this req out ->
      let x = B.local m "x" in
      get_param m ~tag:"s" req x;
      B.scall m helper_cls "sinkIt" [ B.v x; B.v out ])

let basic12 =
  simple "Basic12" ~group:"Basic" ~comment:"through an instance field"
    ~expected:(e1 "s" "k")
    (fun m this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      let f = B.fld "securibench.Basic12" "data" in
      get_param m ~tag:"s" req x;
      B.store m this f (B.v x);
      B.load m y this f;
      println m ~tag:"k" out (B.v y))

let basic13 =
  simple "Basic13" ~group:"Basic" ~comment:"through a static field"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      let g = B.fld "securibench.Globals" "cache" in
      get_param m ~tag:"s" req x;
      B.storestatic m g (B.v x);
      B.loadstatic m y g;
      println m ~tag:"k" out (B.v y))

let basic14 =
  simple "Basic14" ~group:"Basic" ~comment:"two-level field chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let box = "securibench.Box14" in
      let outer = B.local m "outer" and inner = B.local m "inner" in
      let x = B.local m "x" and r1 = B.local m "r1" and r2 = B.local m "r2" in
      let f_in = B.fld box "inner" and f_v = B.fld box "v" in
      B.newobj m outer box;
      B.newobj m inner box;
      B.store m outer f_in (B.v inner);
      get_param m ~tag:"s" req x;
      B.store m inner f_v (B.v x);
      B.load m r1 outer f_in;
      B.load m r2 r1 f_v;
      println m ~tag:"k" out (B.v r2))

let basic15 =
  simple "Basic15" ~group:"Basic" ~comment:"two sources joined into one sink"
    ~expected:[ (Some "s1", "k"); (Some "s2", "k") ]
    (fun m _this req out ->
      let a = B.local m "a" and b = B.local m "b" and j = B.local m "j" in
      get_param m ~tag:"s1" ~pname:"p1" req a;
      get_param m ~tag:"s2" ~pname:"p2" req b;
      B.binop m j "+" (B.v a) (B.v b);
      println m ~tag:"k" out (B.v j))

let basic16 =
  simple "Basic16" ~group:"Basic" ~comment:"one source to two sinks"
    ~expected:[ (Some "s", "k1"); (Some "s", "k2") ]
    (fun m _this req out ->
      let x = B.local m "x" in
      get_param m ~tag:"s" req x;
      println m ~tag:"k1" out (B.v x);
      println m ~tag:"k2" out (B.v x))

let basic17 =
  simple "Basic17" ~group:"Basic" ~comment:"valueOf of a char read"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and c = B.local m "c" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.vcall m ~ret:c x "java.lang.String" "charAt" [ B.i 0 ];
      B.scall m ~ret:y "java.lang.String" "valueOf" [ B.v c ];
      println m ~tag:"k" out (B.v y))

let basic18 =
  simple "Basic18" ~group:"Basic" ~comment:"split array element"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" in
      let parts = B.local m "parts" ~ty:(T.Array str_t) in
      let y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.vcall m ~ret:parts x "java.lang.String" "split" [ B.s "," ];
      B.aload m y parts (B.i 0);
      println m ~tag:"k" out (B.v y))

let basic19 =
  simple "Basic19" ~group:"Basic" ~comment:"conditional select of source"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" and c = B.local m "c" ~ty:T.Int in
      get_param m ~tag:"s" req x;
      B.binop m c "%" (B.i 5) (B.i 2);
      B.ifgoto m (B.v c) Stmt.Ceq (B.i 0) "clean";
      B.move m y x;
      B.goto m "send";
      B.label m "clean";
      B.const m y (B.s "default");
      B.label m "send";
      println m ~tag:"k" out (B.v y))

let basic20 =
  simple "Basic20" ~group:"Basic" ~comment:"through a cast"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and o = B.local m "o" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.cast m o (T.Ref "java.lang.Object") (B.v x);
      B.cast m y str_t (B.v o);
      println m ~tag:"k" out (B.v y))

let basic21 =
  inter_case "Basic21" ~comment:"three-deep call chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.scall m ~ret:y helper_cls "deep3" [ B.v x ];
      println m ~tag:"k" out (B.v y))

let basic22 =
  inter_case "Basic22" ~comment:"recursion preserves the taint"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" in
      get_param m ~tag:"s" req x;
      B.scall m ~ret:y helper_cls "recurse" [ B.v x; B.i 5 ];
      println m ~tag:"k" out (B.v y))

let basic23 =
  (* virtual dispatch *)
  let base = "securibench.Shape23" in
  let sub = "securibench.Circle23" in
  let cls = "securibench.Basic23" in
  case "Basic23" ~group:"Basic" ~comment:"virtual dispatch to the leaking override"
    ~entries:(entry cls) ~expected:(e1 "s" "k")
    [
      B.cls base
        [ B.meth "describe" ~params:[ str_t ] ~ret:str_t (fun m ->
              let _ = B.this m in
              let _p = B.param m 0 "p" in
              let r = B.local m "r" in
              B.const m r (B.s "shape");
              B.retv m (B.v r)) ];
      B.cls sub ~super:base
        [ B.meth "describe" ~params:[ str_t ] ~ret:str_t (fun m ->
              let _ = B.this m in
              let p = B.param m 0 "p" in
              B.retv m (B.v p)) ];
      servlet cls (fun m _this req out ->
          let x = B.local m "x" and y = B.local m "y" in
          let o = B.local m "o" ~ty:(T.Ref base) in
          get_param m ~tag:"s" req x;
          B.newc m o sub [];
          B.vcall m ~ret:y o base "describe" [ B.v x ];
          println m ~tag:"k" out (B.v y));
    ]

let basic24 =
  (* interface dispatch *)
  let iface = "securibench.Transformer24" in
  let impl = "securibench.Echo24" in
  let cls = "securibench.Basic24" in
  case "Basic24" ~group:"Basic" ~comment:"interface dispatch"
    ~entries:(entry cls) ~expected:(e1 "s" "k")
    [
      B.iface iface [ B.abstract_meth "apply" ~params:[ str_t ] ~ret:str_t ];
      B.cls impl ~interfaces:[ iface ]
        [ B.meth "apply" ~params:[ str_t ] ~ret:str_t (fun m ->
              let _ = B.this m in
              let p = B.param m 0 "p" in
              B.retv m (B.v p)) ];
      servlet cls (fun m _this req out ->
          let x = B.local m "x" and y = B.local m "y" in
          let o = B.local m "o" ~ty:(T.Ref iface) in
          get_param m ~tag:"s" req x;
          B.newc m o impl [];
          B.vcall m ~ret:y o iface "apply" [ B.v x ];
          println m ~tag:"k" out (B.v y));
    ]

let basic25 =
  simple "Basic25" ~group:"Basic" ~comment:"getHeader as the source"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" in
      B.vcall m ~tag:"s" ~ret:x req req_cls "getHeader" [ B.s "User-Agent" ];
      println m ~tag:"k" out (B.v x))

let basic26 =
  simple "Basic26" ~group:"Basic" ~comment:"trim+intern chain"
    ~expected:(e1 "s" "k")
    (fun m _this req out ->
      let x = B.local m "x" and y = B.local m "y" and z = B.local m "z" in
      get_param m ~tag:"s" req x;
      B.vcall m ~ret:y x "java.lang.String" "trim" [];
      B.vcall m ~ret:z y "java.lang.String" "intern" [];
      println m ~tag:"k" out (B.v z))

(* -------- the two reflective cases FlowDroid misses -------- *)

let basic27 =
  simple "Basic27" ~group:"Basic"
    ~comment:
      "the sink is invoked through java.lang.reflect.Method with a \
       non-constant method name — missed by design (reflection \
       limitation)"
    ~expected:(e1 "s" "k-reflect")
    (fun m this req out ->
      let x = B.local m "x" in
      let mth = B.local m "mth" ~ty:(T.Ref "java.lang.reflect.Method") in
      let nm = B.local m "nm" in
      get_param m ~tag:"s" req x;
      (* method name computed at runtime *)
      B.binop m nm "+" (B.s "prin") (B.s "tln");
      B.vcall m ~ret:mth this "java.lang.Class" "getMethod" [ B.v nm ];
      (* at runtime this calls out.println(x): the real leak. The
         analysis sees an opaque reflective call. *)
      B.vcall m ~tag:"k-reflect" mth "java.lang.reflect.Method" "invoke"
        [ B.v out; B.v x ])

let basic28 =
  simple "Basic28" ~group:"Basic"
    ~comment:
      "the *source* is fetched reflectively (computed getter name) — \
       missed by design"
    ~expected:(e1 "s-reflect" "k")
    (fun m this req out ->
      let mth = B.local m "mth" ~ty:(T.Ref "java.lang.reflect.Method") in
      let nm = B.local m "nm" in
      let x = B.local m "x" in
      (* the getter name is assembled at runtime, so the reflective
         call cannot be resolved statically *)
      B.binop m nm "+" (B.s "getPara") (B.s "meter");
      B.vcall m ~ret:mth this "java.lang.Class" "getMethod" [ B.v nm ];
      (* at runtime: x = req.getParameter("secret") *)
      B.vcall m ~tag:"s-reflect" ~ret:x mth "java.lang.reflect.Method"
        "invoke" [ B.v req; B.s "secret" ];
      println m ~tag:"k" out (B.v x))

(* -------- parameterised multi-leak relays --------

   The original Basic group reaches 60 expected leaks with families of
   cases that leak several request parameters through one construct
   each.  [relay n ops] builds a servlet leaking [n] parameters, each
   through a distinct propagation construct. *)

let relay_ops =
  [
    ("copy", fun m x y -> B.move m y x);
    ("concat", fun m x y -> B.binop m y "+" (B.s ">") (B.v x));
    ("lower", fun m x y -> B.vcall m ~ret:y x "java.lang.String" "toLowerCase" []);
    ("upper", fun m x y -> B.vcall m ~ret:y x "java.lang.String" "toUpperCase" []);
    ("trim", fun m x y -> B.vcall m ~ret:y x "java.lang.String" "trim" []);
    ("substr", fun m x y -> B.vcall m ~ret:y x "java.lang.String" "substring" [ B.i 0 ]);
    ("builder", fun m x y ->
        let sb = B.local m (y.Stmt.l_name ^ "_sb") in
        B.newc m sb "java.lang.StringBuilder" [];
        B.vcall m sb "java.lang.StringBuilder" "append" [ B.v x ];
        B.vcall m ~ret:y sb "java.lang.StringBuilder" "toString" []);
    ("valueOf", fun m x y -> B.scall m ~ret:y "java.lang.String" "valueOf" [ B.v x ]);
  ]

let relay name n =
  let expected = List.init n (fun i -> (Some (Printf.sprintf "s%d" i), Printf.sprintf "k%d" i)) in
  simple name ~group:"Basic"
    ~comment:(Printf.sprintf "%d parameters leaked through distinct constructs" n)
    ~expected
    (fun m _this req out ->
      List.init n Fun.id
      |> List.iter (fun i ->
             let opname, op = List.nth relay_ops (i mod List.length relay_ops) in
             let x = B.local m (Printf.sprintf "x%d" i) in
             let y = B.local m (Printf.sprintf "y%d_%s" i opname) in
             get_param m ~tag:(Printf.sprintf "s%d" i)
               ~pname:(Printf.sprintf "p%d" i) req x;
             op m x y;
             println m ~tag:(Printf.sprintf "k%d" i) out (B.v y)))

let basic29 = relay "Basic29" 4
let basic30 = relay "Basic30" 4
let basic31 = relay "Basic31" 4
let basic32 = relay "Basic32" 4
let basic33 = relay "Basic33" 3
let basic34 = relay "Basic34" 3
let basic35 = relay "Basic35" 3
let basic36 = relay "Basic36" 4

(** All Basic cases; expected-leak total = 60 (58 found: Basic27/28
    are the designed reflective misses). *)
let all =
  [
    basic1; basic2; basic3; basic4; basic5; basic6; basic7; basic8; basic9;
    basic10; basic11; basic12; basic13; basic14; basic15; basic16; basic17;
    basic18; basic19; basic20; basic21; basic22; basic23; basic24; basic25;
    basic26; basic27; basic28; basic29; basic30; basic31; basic32; basic33;
    basic34; basic35; basic36;
  ]
