(** The assembled SecuriBench-µ suite (Table 2). *)

let all : Sb_case.t list =
  Sb_aliasing.all @ Sb_arrays.all @ Sb_basic.all @ Sb_collections.all
  @ Sb_misc_groups.datastructure @ Sb_misc_groups.factory
  @ Sb_misc_groups.inter @ Sb_misc_groups.session
  @ Sb_misc_groups.strong_updates

(** Group display order, as in Table 2.  The [n/a] groups exist in the
    original suite but are out of scope for FlowDroid (sanitisation,
    reflection, predicates — Section 6.4) and carry no cases here. *)
let groups =
  [
    "Aliasing"; "Arrays"; "Basic"; "Collections"; "Datastructure"; "Factory";
    "Inter"; "Pred"; "Reflection"; "Sanitizer"; "Session"; "StrongUpdates";
  ]

let na_groups = [ "Pred"; "Reflection"; "Sanitizer" ]

(** [by_group g] is the cases of one group. *)
let by_group g = List.filter (fun c -> c.Sb_case.sb_group = g) all

(** [expected_in g] is the number of expected leaks in a group. *)
let expected_in g =
  List.fold_left
    (fun acc c -> acc + List.length c.Sb_case.sb_expected)
    0 (by_group g)

(** Total expected leaks over the implemented groups (121, as in
    Table 2). *)
let total_expected =
  List.fold_left (fun acc c -> acc + List.length c.Sb_case.sb_expected) 0 all
