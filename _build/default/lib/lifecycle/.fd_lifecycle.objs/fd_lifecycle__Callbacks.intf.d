lib/lifecycle/callbacks.mli: Fd_callgraph Fd_frontend Fd_ir Jclass Mkey Scene
