lib/lifecycle/callbacks.ml: Body Callgraph Fd_callgraph Fd_frontend Fd_ir Hashtbl Jclass Lifecycle List Mkey Scene Stmt Types
