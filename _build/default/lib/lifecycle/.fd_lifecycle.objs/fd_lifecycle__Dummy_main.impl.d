lib/lifecycle/dummy_main.ml: Build Callbacks Fd_callgraph Fd_frontend Fd_ir Hashtbl Jclass Lifecycle List Mkey Printf Scene Stmt Types
