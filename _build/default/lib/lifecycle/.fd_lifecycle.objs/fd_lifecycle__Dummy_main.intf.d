lib/lifecycle/dummy_main.mli: Callbacks Fd_callgraph Fd_ir Mkey Scene Types
