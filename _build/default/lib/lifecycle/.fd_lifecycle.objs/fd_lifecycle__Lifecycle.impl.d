lib/lifecycle/lifecycle.ml: Fd_frontend Fd_ir Jclass List Scene Types
