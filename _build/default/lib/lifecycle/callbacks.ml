(** Callback discovery (Section 3, "Callbacks").

    For each component the paper's algorithm:

    + builds a call graph starting at the component's implemented
      lifecycle methods;
    + scans reachable code for (a) imperative registrations — calls to
      well-known framework registration methods taking a callback
      interface — (b) [setContentView]/XML-declared handlers, and
      (c) overridden framework methods;
    + extends the entry set with the discovered handlers and repeats
      until a fixed point, because callback handlers may register
      further callbacks.

    The per-component association this produces ("a button-click
    handler is analysed only in the context of its activity") is what
    distinguishes the precise dummy main from a global
    all-callbacks-everywhere model; the [~per_component:false] ablation
    reproduces the imprecise variant for the benchmarks. *)

open Fd_ir
open Fd_callgraph
module FW = Fd_frontend.Framework

type callback = {
  cb_class : string;  (** class declaring the handler implementation *)
  cb_method : Jclass.jmethod;
  cb_on_component : bool;
      (** handler lives on the component class itself (invoked on the
          component instance rather than on a fresh listener) *)
  cb_kind : kind;
}

and kind =
  | Registered of string  (** via a registration call; payload = interface *)
  | Xml_declared  (** android:onClick in a layout file *)
  | Overridden  (** overrides a framework method *)

type component_callbacks = {
  cc_component : string;
  cc_kind : FW.component_kind;
  cc_lifecycle : Mkey.t list;  (** implemented lifecycle entry points *)
  cc_callbacks : callback list;
  cc_listener_classes : string list;
      (** non-component classes whose instances receive callbacks; the
          dummy main instantiates them *)
  cc_async_tasks : string list;
      (** AsyncTask subclasses executed by this component: the dummy
          main drives [doInBackground] and feeds its result into
          [onPostExecute] (extension feature) *)
  cc_fragments : string list;
      (** Fragment subclasses this component instantiates: the dummy
          main runs their lifecycle attached to the component
          (extension feature) *)
}

(* collect classes instantiated in the bodies reachable from [cg] *)
let instantiated_classes cg =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun k ->
      match Callgraph.body_of cg k with
      | exception Not_found -> ()
      | body ->
          Body.iter body (fun s ->
              match s.Stmt.s_kind with
              | Stmt.Assign (_, Stmt.Enew c) -> Hashtbl.replace seen c ()
              | _ -> ()))
    (Callgraph.reachable_methods cg);
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

(* scan reachable bodies for registration calls; returns the
   interfaces that got a listener registered *)
let registered_interfaces cg =
  let ifaces = Hashtbl.create 8 in
  List.iter
    (fun k ->
      match Callgraph.body_of cg k with
      | exception Not_found -> ()
      | body ->
          Body.iter body (fun s ->
              match Stmt.invoke_of s with
              | Some inv -> (
                  match
                    FW.registered_interface inv.Stmt.i_sig.Types.m_name
                  with
                  | Some iface -> Hashtbl.replace ifaces iface ()
                  | None -> ())
              | None -> ()))
    (Callgraph.reachable_methods cg);
  Hashtbl.fold (fun i () acc -> i :: acc) ifaces []

(* layouts a component installs via setContentView(const) *)
let layouts_used cg (layout : Fd_frontend.Layout.t) =
  let used = ref [] in
  List.iter
    (fun k ->
      match Callgraph.body_of cg k with
      | exception Not_found -> ()
      | body ->
          Body.iter body (fun s ->
              match Stmt.invoke_of s with
              | Some inv
                when inv.Stmt.i_sig.Types.m_name = "setContentView" -> (
                  match inv.Stmt.i_args with
                  | [ Stmt.Iconst (Stmt.CInt id) ] ->
                      List.iter
                        (fun (name, lid) ->
                          if lid = id && not (List.mem name !used) then
                            used := name :: !used)
                        layout.Fd_frontend.Layout.layouts
                  | _ -> ())
              | _ -> ()))
    (Callgraph.reachable_methods cg);
  !used

(** [discover scene layout ~component ~kind] runs the iterative
    discovery for one component and returns its callback set. *)
let discover scene (layout : Fd_frontend.Layout.t) ~component ~kind =
  let lifecycle =
    Lifecycle.implemented_methods scene component kind
    |> List.map (fun (decl, m) -> Mkey.of_method decl m)
  in
  let found : (string * string, callback) Hashtbl.t = Hashtbl.create 8 in
  let key (cb : callback) = (cb.cb_class, cb.cb_method.Jclass.jm_sig.Types.m_name) in
  let add cb =
    if Hashtbl.mem found (key cb) then false
    else begin
      Hashtbl.replace found (key cb) cb;
      true
    end
  in
  (* (c) overridden framework methods: independent of reachability *)
  List.iter
    (fun m ->
      ignore
        (add
           {
             cb_class = component;
             cb_method = m;
             cb_on_component = true;
             cb_kind = Overridden;
           }))
    (FW.overridden_framework_callbacks scene component);
  let changed = ref true in
  while !changed do
    changed := false;
    let entry =
      lifecycle
      @ List.map
          (fun (_, cb) ->
            Mkey.of_sig
              { cb.cb_method.Jclass.jm_sig with Types.m_class = cb.cb_class })
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) found [])
    in
    if entry <> [] then begin
      let cg = Callgraph.build scene ~entry () in
      (* (a) imperative registrations *)
      let ifaces = registered_interfaces cg in
      let insts = component :: instantiated_classes cg in
      List.iter
        (fun iface ->
          List.iter
            (fun cls ->
              if Scene.is_subtype scene cls iface then
                List.iter
                  (fun (iname, decl, meth) ->
                    if iname = iface then
                      let cb =
                        {
                          cb_class = cls;
                          cb_method = meth;
                          cb_on_component = cls = component;
                          cb_kind = Registered iface;
                        }
                      in
                      ignore decl;
                      if add cb then changed := true)
                  (FW.callback_methods_of scene cls))
            insts)
        ifaces;
      (* (b) XML-declared handlers in the layouts this component
         installs: handlers are methods on the component class taking a
         View *)
      List.iter
        (fun lname ->
          List.iter
            (fun handler ->
              match Scene.resolve_concrete_named scene component handler with
              | Some (decl, meth)
                when Jclass.has_body meth && not decl.Jclass.c_phantom ->
                  let cb =
                    {
                      cb_class = component;
                      cb_method = meth;
                      cb_on_component = true;
                      cb_kind = Xml_declared;
                    }
                  in
                  if add cb then changed := true
              | _ -> ())
            (Fd_frontend.Layout.xml_callbacks layout lname))
        (layouts_used cg layout)
    end
  done;
  (* extension features: AsyncTask subclasses that reachable code
     executes, and Fragment subclasses it instantiates *)
  let final_entry =
    lifecycle
    @ List.map
        (fun (_, cb) ->
          Mkey.of_sig
            { cb.cb_method.Jclass.jm_sig with Types.m_class = cb.cb_class })
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) found [])
  in
  let async_tasks, fragments =
    if final_entry = [] then ([], [])
    else begin
      let cg = Callgraph.build scene ~entry:final_entry () in
      let insts = instantiated_classes cg in
      let executes_task =
        List.exists
          (fun k ->
            match Callgraph.body_of cg k with
            | exception Not_found -> false
            | body ->
                Body.fold body
                  (fun s acc ->
                    acc
                    ||
                    match Stmt.invoke_of s with
                    | Some inv -> inv.Stmt.i_sig.Types.m_name = "execute"
                    | None -> false)
                  false)
          (Callgraph.reachable_methods cg)
      in
      let tasks =
        if executes_task then
          List.filter
            (fun c -> Scene.is_subtype scene c FW.async_task_class)
            insts
        else []
      in
      let frags =
        List.filter (fun c -> Scene.is_subtype scene c FW.fragment_class) insts
      in
      (List.sort_uniq compare tasks, List.sort_uniq compare frags)
    end
  in
  let callbacks = Hashtbl.fold (fun _ cb acc -> cb :: acc) found [] in
  let listener_classes =
    List.sort_uniq compare
      (List.filter_map
         (fun cb -> if cb.cb_on_component then None else Some cb.cb_class)
         callbacks)
  in
  {
    cc_component = component;
    cc_kind = kind;
    cc_lifecycle = lifecycle;
    cc_callbacks =
      List.sort
        (fun a b -> compare (key a) (key b))
        callbacks;
    cc_listener_classes = listener_classes;
    cc_async_tasks = async_tasks;
    cc_fragments = fragments;
  }

(** [discover_all loaded] runs discovery for every enabled component of
    a loaded app. *)
let discover_all (loaded : Fd_frontend.Apk.loaded) =
  List.map
    (fun (c : Fd_frontend.Manifest.component) ->
      discover loaded.Fd_frontend.Apk.scene loaded.Fd_frontend.Apk.layout
        ~component:c.Fd_frontend.Manifest.comp_class
        ~kind:c.Fd_frontend.Manifest.comp_kind)
    loaded.Fd_frontend.Apk.components
