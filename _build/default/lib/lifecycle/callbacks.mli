(** Callback discovery (Section 3, "Callbacks").

    Per component, iterates: build a call graph from the implemented
    lifecycle methods, scan reachable code for imperative registrations
    / [setContentView]-installed XML handlers / overridden framework
    methods, extend the entry set with the discovered handlers, repeat
    to a fixed point (handlers may register further callbacks). *)

open Fd_ir
open Fd_callgraph
module FW = Fd_frontend.Framework

type callback = {
  cb_class : string;  (** class declaring the handler implementation *)
  cb_method : Jclass.jmethod;
  cb_on_component : bool;
      (** handler lives on the component class itself (invoked on the
          component instance rather than on a fresh listener) *)
  cb_kind : kind;
}

and kind =
  | Registered of string  (** via a registration call; payload = interface *)
  | Xml_declared  (** android:onClick in a layout file *)
  | Overridden  (** overrides a framework method *)

type component_callbacks = {
  cc_component : string;
  cc_kind : FW.component_kind;
  cc_lifecycle : Mkey.t list;  (** implemented lifecycle entry points *)
  cc_callbacks : callback list;
  cc_listener_classes : string list;
      (** non-component classes whose instances receive callbacks; the
          dummy main instantiates them *)
  cc_async_tasks : string list;
      (** AsyncTask subclasses executed by this component (extension
          feature) *)
  cc_fragments : string list;
      (** Fragment subclasses this component instantiates (extension
          feature) *)
}

val discover :
  Scene.t ->
  Fd_frontend.Layout.t ->
  component:string ->
  kind:FW.component_kind ->
  component_callbacks
(** [discover scene layout ~component ~kind] runs the iterative
    discovery for one component. *)

val discover_all : Fd_frontend.Apk.loaded -> component_callbacks list
(** [discover_all loaded] runs discovery for every enabled component. *)
