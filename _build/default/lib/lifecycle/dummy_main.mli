(** Dummy-main generation (Section 3, Figure 1).

    Synthesises the per-app entry point in which all components run in
    an arbitrary sequential order with repetition, each activity runs
    Figure 1's lifecycle with its associated callbacks between resume
    and pause, and — as extension features — fragments run attached to
    their host and AsyncTasks run with the background result feeding
    [onPostExecute].  All branching is on an opaque static-field read
    that no analysis stage evaluates. *)

open Fd_ir
open Fd_callgraph

val dummy_class_name : string
(** ["dummyMainClass"] *)

val dummy_method_name : string
(** ["dummyMain"] *)

val opaque_field : Types.field_sig
(** the opaque predicate: a static int field of the dummy class *)

val generate : Scene.t -> Callbacks.component_callbacks list -> Mkey.t
(** [generate scene ccs] builds the dummy-main class for the given
    per-component callback sets, registers it in [scene] (replacing a
    previous one), and returns the entry-point key. *)

val entry_of_plain_methods : Mkey.t list -> Mkey.t list
(** identity — explicit entry points for non-Android programs *)

val generate_plain : Scene.t -> Mkey.t list -> Mkey.t
(** [generate_plain scene entries] is the non-Android equivalent
    (FlowDroid's default entry-point creator): all given entry methods
    callable in any sequential order and number behind opaque
    branches — what lets static-field flows connect separately
    declared entry points (SecuriBench's Inter group). *)
