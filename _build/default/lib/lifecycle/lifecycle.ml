(** Android component lifecycles.

    Section 3 of the paper: every component kind has framework-driven
    lifecycle methods, and a faithful model of their ordering is what
    separates FlowDroid from entry-point heuristics.  This module
    declares the lifecycle method tables; {!Dummy_main} turns them
    into code. *)

open Fd_ir
module T = Types

(** A lifecycle method: name and parameter types (arguments are passed
    as [null] constants by the dummy main; parameter *sources* such as
    [onReceive]'s intent are seeded by the taint engine at the
    callback's identity statements). *)
type lc_method = { lc_name : string; lc_params : T.typ list }

let m name params = { lc_name = name; lc_params = params }

let bundle = T.Ref "android.os.Bundle"
let intent = T.Ref "android.content.Intent"
let context = T.Ref "android.content.Context"

(** Activity lifecycle, the methods appearing in Figure 1. *)
let activity_create = m "onCreate" [ bundle ]

let activity_start = m "onStart" []
let activity_resume = m "onResume" []
let activity_pause = m "onPause" []
let activity_stop = m "onStop" []
let activity_restart = m "onRestart" []
let activity_destroy = m "onDestroy" []

let activity_methods =
  [
    activity_create; activity_start; activity_resume; activity_pause;
    activity_stop; activity_restart; activity_destroy;
  ]

let service_create = m "onCreate" []
let service_start_command = m "onStartCommand" [ intent; T.Int; T.Int ]
let service_start = m "onStart" [ intent; T.Int ]
let service_bind = m "onBind" [ intent ]
let service_unbind = m "onUnbind" [ intent ]
let service_destroy = m "onDestroy" []

let service_methods =
  [
    service_create; service_start_command; service_start; service_bind;
    service_unbind; service_destroy;
  ]

let receiver_receive = m "onReceive" [ context; intent ]
let receiver_methods = [ receiver_receive ]

let provider_create = m "onCreate" []

let provider_methods =
  [
    provider_create;
    m "query" [ T.Ref "android.net.Uri" ];
    m "insert" [ T.Ref "android.net.Uri"; T.Ref "android.content.ContentValues" ];
    m "update" [ T.Ref "android.net.Uri"; T.Ref "android.content.ContentValues" ];
    m "delete" [ T.Ref "android.net.Uri" ];
  ]

(** [methods_of kind] is every lifecycle method of a component kind. *)
let methods_of = function
  | Fd_frontend.Framework.Activity -> activity_methods
  | Fd_frontend.Framework.Service -> service_methods
  | Fd_frontend.Framework.Receiver -> receiver_methods
  | Fd_frontend.Framework.Provider -> provider_methods

(** [implemented scene cls lc] resolves the lifecycle method [lc] to a
    concrete body-bearing implementation on [cls], if the app
    overrides it. *)
let implemented scene cls lc =
  match
    Scene.resolve_concrete scene cls (lc.lc_name, lc.lc_params)
  with
  | Some (decl, meth) when Jclass.has_body meth && not decl.Jclass.c_phantom ->
      Some (decl, meth)
  | _ -> None

(** [implemented_methods scene cls kind] is the lifecycle methods of a
    [kind] component class [cls] that the app actually implements —
    the entry points used to seed callback discovery. *)
let implemented_methods scene cls kind =
  List.filter_map (implemented scene cls) (methods_of kind)
