(** Plain-text table rendering, used to reproduce the paper's tables
    (Table 1, Table 2) on stdout. *)

type cell = string

type row =
  | Row of cell list  (** an ordinary data row *)
  | Sep  (** a horizontal separator *)
  | Section of string
      (** a full-width section header, e.g. a DroidBench category *)

type t

val make : header:cell list -> row list -> t
(** [make ~header rows] builds a table; [header] fixes the column
    count. *)

val render : t -> string
(** [render t] renders aligned text, one line per row, with a
    separator under the header. *)

val print : t -> unit
(** [print t] renders to stdout. *)

val pct : int -> int -> string
(** [pct num den] formats a percentage the way the paper does
    (["93%"]); ["n/a"] when [den = 0]. *)

val f_measure : float -> float -> float
(** [f_measure p r] is the harmonic mean [2pr/(p+r)], Table 1's bottom
    line. *)
