lib/util/table.mli:
