lib/util/prng.mli:
