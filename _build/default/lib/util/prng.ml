(** Deterministic pseudo-random number generator.

    A small, self-contained [splitmix64] generator.  The synthetic-corpus
    experiments (RQ3) must be exactly reproducible across runs and
    machines, so all randomness in this repository flows through this
    module with explicit seeds; nothing ever reads the wall clock. *)

type t = { mutable state : int64 }

(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)
let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

(** [next_int64 t] advances the state and returns the next raw 64-bit
    output of the splitmix64 sequence. *)
let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] returns a uniformly distributed integer in
    [\[0, bound)].  @raise Invalid_argument if [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** [float t bound] returns a uniformly distributed float in
    [\[0, bound)]. *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

(** [bool t] returns a uniformly distributed boolean. *)
let bool t = int t 2 = 0

(** [range t lo hi] returns an integer in [\[lo, hi\]] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

(** [choose t xs] picks a uniformly random element of [xs].
    @raise Invalid_argument on the empty list. *)
let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] returns a uniformly random permutation of [xs]
    (Fisher–Yates on an intermediate array). *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** [poisson t lambda] samples a Poisson-distributed integer with mean
    [lambda] using Knuth's multiplication method.  Suitable for the
    small means used by the corpus generator (e.g. 1.85 leaks/app). *)
let poisson t lambda =
  if lambda <= 0.0 then 0
  else begin
    let l = Stdlib.exp (-.lambda) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. float t 1.0;
      if !p <= l then continue := false
    done;
    !k - 1
  end

(** [split t] derives a new, independently seeded generator from [t],
    advancing [t].  Useful to give each generated app its own stream so
    that inserting an app does not perturb the others. *)
let split t = { state = next_int64 t }
