(** Plain-text table rendering.

    The evaluation harness reproduces the paper's tables (Table 1,
    Table 2) on stdout; this module renders aligned ASCII tables with
    optional separator rows, in the style of the paper's layout. *)

type cell = string

type row =
  | Row of cell list      (** an ordinary data row *)
  | Sep                   (** a horizontal separator *)
  | Section of string     (** a full-width section header (e.g. a
                              DroidBench category such as "Callbacks") *)

type t = { header : cell list; rows : row list }

(** [make ~header rows] builds a table; [header] gives the column
    titles and fixes the column count. *)
let make ~header rows = { header; rows }

let width_of t =
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let feed cells =
    List.iteri
      (fun i c ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  feed t.header;
  List.iter (function Row cells -> feed cells | Sep | Section _ -> ()) t.rows;
  widths

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

(** [render t] renders [t] to a string, one line per row, columns
    separated by two spaces, with a separator under the header. *)
let render t =
  let widths = width_of t in
  let total =
    Array.fold_left ( + ) 0 widths + (2 * max 0 (Array.length widths - 1))
  in
  let buf = Buffer.create 1024 in
  let line cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < Array.length widths then Buffer.add_string buf (pad c widths.(i)))
      cells;
    (* trim trailing padding *)
    let s = Buffer.contents buf in
    Buffer.clear buf;
    let s =
      let n = ref (String.length s) in
      while !n > 0 && s.[!n - 1] = ' ' do decr n done;
      String.sub s 0 !n
    in
    s
  in
  let out = Buffer.create 4096 in
  Buffer.add_string out (line t.header);
  Buffer.add_char out '\n';
  Buffer.add_string out (String.make total '-');
  Buffer.add_char out '\n';
  List.iter
    (fun r ->
      (match r with
      | Row cells -> Buffer.add_string out (line cells)
      | Sep -> Buffer.add_string out (String.make total '-')
      | Section s ->
          let tag = "== " ^ s ^ " " in
          Buffer.add_string out
            (tag ^ String.make (max 0 (total - String.length tag)) '='));
      Buffer.add_char out '\n')
    t.rows;
  Buffer.contents out

(** [print t] renders [t] to stdout. *)
let print t = print_string (render t)

(** [pct num den] formats the ratio as a percentage with no decimals,
    matching the paper's "93%" style; returns ["n/a"] when [den = 0]. *)
let pct num den =
  if den = 0 then "n/a"
  else Printf.sprintf "%.0f%%" (100.0 *. float_of_int num /. float_of_int den)

(** [f_measure p r] is the harmonic mean [2pr/(p+r)] of precision [p]
    and recall [r], as used in Table 1's bottom line. *)
let f_measure p r = if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
