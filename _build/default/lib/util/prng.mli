(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in this repository flows through this module with
    explicit seeds — the synthetic-corpus experiments (RQ3) are exactly
    reproducible across runs and machines; nothing reads the wall
    clock. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val next_int64 : t -> int64
(** [next_int64 t] advances the state and returns the next raw 64-bit
    output of the splitmix64 sequence. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a uniform coin flip. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val choose : t -> 'a list -> 'a
(** [choose t xs] picks a uniform element.
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** [shuffle t xs] is a uniform permutation (Fisher–Yates). *)

val poisson : t -> float -> int
(** [poisson t lambda] samples a Poisson-distributed count with mean
    [lambda] (Knuth's method; suitable for small means such as the
    1.85 leaks/app of RQ3). *)

val split : t -> t
(** [split t] derives an independently seeded generator, advancing
    [t]: gives each generated app its own stream so inserting one app
    does not perturb the others. *)
