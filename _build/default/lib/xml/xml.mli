(** A small, dependency-free XML parser for the Android resource
    dialect: prolog, comments, namespaced attributes, text, CDATA, the
    five predefined entities and ASCII character references.  DTDs and
    other processing instructions are not supported. *)

type t =
  | Element of string * (string * string) list * t list
      (** [Element (tag, attrs, children)] *)
  | Text of string

exception Parse_error of int * string
(** byte offset of the failure and a description *)

val parse_string : string -> t
(** [parse_string s] parses one document and returns its root element.
    @raise Parse_error on malformed input. *)

val tag : t -> string
(** @raise Invalid_argument on a text node *)

val attr : t -> string -> string option
val attr_dflt : t -> string -> default:string -> string

val children : t -> t list
(** child {e elements} (text nodes skipped) *)

val children_named : t -> string -> t list

val descendants_named : t -> string -> t list
(** whole-subtree search (excluding the node itself), document order *)

val text : t -> string
(** concatenated direct text children *)

val to_string : ?indent:int -> t -> string
(** serialisation; [parse_string (to_string e)] equals [e] up to
    insignificant whitespace *)
