lib/xml/xml.mli:
