lib/xml/xml.ml: Buffer Char List Printf String
