(* Textual frontend: writes an app to disk in the on-disk layout the
   CLI consumes (AndroidManifest.xml + res/layout/*.xml + .jimple
   sources in the textual µJimple format), loads it back with
   Apk.of_dir, and analyses it — the full file-based pipeline.

   Run with:  dune exec examples/textual_app.exe *)

let manifest =
  {|<?xml version="1.0" encoding="utf-8"?>
<manifest package="com.example.textual">
  <application>
    <activity android:name=".Main">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
  </application>
</manifest>
|}

let layout =
  {|<LinearLayout>
  <EditText android:id="@+id/secret" android:inputType="textPassword"/>
  <Button android:id="@+id/go" android:onClick="onGo"/>
</LinearLayout>
|}

(* the activity in textual µJimple; resource ids follow the generator's
   deterministic numbering (0x7f080000 = first control, 0x7f030000 =
   first layout) *)
let main_jimple =
  Printf.sprintf
    {|// com.example.textual.Main, in textual µJimple
class com.example.textual.Main extends android.app.Activity {
  field secret : java.lang.String;

  method void onCreate(android.os.Bundle) {
    local b : android.os.Bundle;
    this := @this: com.example.textual.Main;
    b := @parameter0;
    virtualinvoke this.android.app.Activity#setContentView(%d);
    return;
  }

  method void onStart() {
    local et : android.widget.EditText;
    local s : java.lang.String;
    this := @this: com.example.textual.Main;
    et = virtualinvoke this.android.app.Activity#findViewById(%d) @"src-secret";
    s = virtualinvoke et.android.widget.EditText#toString();
    this.com.example.textual.Main#secret = s;
    return;
  }

  method void onGo(android.view.View) {
    local v : android.view.View;
    local s : java.lang.String;
    this := @this: com.example.textual.Main;
    v := @parameter0;
    s = this.com.example.textual.Main#secret;
    staticinvoke android.util.Log#i("textual", s) @"sink-log";
    return;
  }
}
|}
    Fd_frontend.Layout.layout_id_base Fd_frontend.Layout.id_base

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let () =
  (* lay the app out on disk *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fd_textual_app" in
  let layout_dir = Filename.concat (Filename.concat dir "res") "layout" in
  List.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    [ dir; Filename.concat dir "res"; layout_dir ];
  write_file (Filename.concat dir "AndroidManifest.xml") manifest;
  write_file (Filename.concat layout_dir "main.xml") layout;
  write_file (Filename.concat dir "Main.jimple") main_jimple;
  Printf.printf "Wrote the app to %s\n\n" dir;

  (* load and analyse *)
  let apk = Fd_frontend.Apk.of_dir dir in
  let result = Fd_core.Infoflow.analyze_apk apk in
  Printf.printf "Flows found: %d\n"
    (List.length result.Fd_core.Infoflow.r_findings);
  List.iter
    (fun (fd : Fd_core.Bidi.finding) ->
      Printf.printf "  %s  -->  %s\n"
        (Option.value fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag
           ~default:fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc)
        (Option.value fd.Fd_core.Bidi.f_sink_tag ~default:"?"))
    result.Fd_core.Infoflow.r_findings;

  (* round-trip check: print the parsed class back out *)
  print_newline ();
  print_endline "The class as parsed and re-printed by the IR:";
  (match Fd_ir.Scene.find_class (Fd_callgraph.Callgraph.cg_scene result.Fd_core.Infoflow.r_icfg.Fd_callgraph.Icfg.cg) "com.example.textual.Main" with
  | Some c -> print_string (Fd_ir.Pretty.class_to_string c)
  | None -> print_endline "  (not found?)")
