(* Quickstart: build the paper's Listing 1 app with the µJimple DSL,
   run the full FlowDroid pipeline on it, and print the findings and
   the generated dummy-main control-flow graph (Figure 1).

   Run with:  dune exec examples/quickstart.exe *)

open Fd_ir
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

(* --- 1. the app: an activity that reads a password field and sends
       it via SMS when a button (bound in the layout XML) is clicked *)

let layout =
  {|<LinearLayout>
  <EditText android:id="@+id/username" android:inputType="text"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>|}

let cls = "de.ecspride.LeakageApp"
let f_pwd = B.fld ~ty:(T.Ref "java.lang.String") cls "pwd"

let activity =
  B.cls cls ~super:"android.app.Activity"
    ~fields:[ ("pwd", T.Ref "java.lang.String") ]
    [
      B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "savedState" in
          B.vcall m this "android.app.Activity" "setContentView"
            [ B.i Fd_frontend.Layout.layout_id_base ]);
      B.meth "onRestart" (fun m ->
          let this = B.this m in
          let pt = B.local m "passwordText" ~ty:(T.Ref "android.widget.EditText") in
          let pwd = B.local m "pwd" in
          (* the id resolves to the password-typed EditText: a source *)
          B.vcall m ~ret:pt this "android.app.Activity" "findViewById"
            [ B.i (Fd_frontend.Layout.id_base + 1) ];
          B.vcall m ~ret:pwd pt "android.widget.EditText" "toString" [];
          B.store m this f_pwd (B.v pwd));
      (* bound by android:onClick in the layout *)
      B.meth "sendMessage" ~params:[ T.Ref "android.view.View" ] (fun m ->
          let this = B.this m in
          let _v = B.param m 0 "view" in
          let p = B.local m "p" in
          let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
          B.load m p this f_pwd;
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m sms "android.telephony.SmsManager" "sendTextMessage"
            [ B.s "+44 020 7321 0905"; B.nul; B.v p; B.nul; B.nul ]);
    ]

let apk =
  Apk.make "Quickstart"
    ~manifest:(Apk.simple_manifest ~package:"de.ecspride" [ (FW.Activity, cls, []) ])
    ~layouts:[ ("main", layout) ]
    [ activity ]

(* --- 2. analyse -------------------------------------------------- *)

let () =
  let result = Fd_core.Infoflow.analyze_apk apk in
  Printf.printf "Found %d flow(s):\n"
    (List.length result.Fd_core.Infoflow.r_findings);
  List.iter
    (fun (fd : Fd_core.Bidi.finding) ->
      Printf.printf "  [%s] %s\n     leaks into %s\n"
        (Fd_frontend.Sourcesink.string_of_category
           fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_category)
        fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc
        (Fd_callgraph.Icfg.string_of_node fd.Fd_core.Bidi.f_sink_node))
    result.Fd_core.Infoflow.r_findings;

  (* --- 3. show the generated dummy main (Figure 1) --------------- *)
  print_newline ();
  print_endline
    "Generated dummy main (the lifecycle model of Figure 1; 'p' is the";
  print_endline "opaque predicate the analysis never evaluates):";
  print_newline ();
  let body =
    Fd_callgraph.Callgraph.body_of
      result.Fd_core.Infoflow.r_icfg.Fd_callgraph.Icfg.cg
      Fd_callgraph.Mkey.
        { mk_class = "dummyMainClass"; mk_name = "dummyMain"; mk_arity = 0 }
  in
  print_string (Pretty.cfg_to_string body)
