examples/quickstart.ml: Build Fd_callgraph Fd_core Fd_frontend Fd_ir List Pretty Printf Types
