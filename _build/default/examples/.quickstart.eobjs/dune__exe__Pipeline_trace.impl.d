examples/pipeline_trace.ml: Fd_appgen Fd_callgraph Fd_core List Printf
