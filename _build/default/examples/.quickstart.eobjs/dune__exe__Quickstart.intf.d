examples/quickstart.mli:
