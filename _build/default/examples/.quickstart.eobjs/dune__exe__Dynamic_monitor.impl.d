examples/dynamic_monitor.ml: Build Fd_core Fd_frontend Fd_interp Fd_ir List Option Printf Stmt String Types
