examples/textual_app.ml: Fd_callgraph Fd_core Fd_frontend Fd_ir Filename Fun List Option Printf Sys
