examples/textual_app.mli:
