examples/dynamic_monitor.mli:
