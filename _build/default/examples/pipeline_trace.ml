(* Pipeline trace: runs the full analysis on µInsecureBank while
   printing each pipeline phase as it starts — the architecture of the
   paper's Figure 4:

     parse manifest file / parse layout xmls / parse code
       -> source, sink and entry-point detection
       -> generate main method
       -> build call graph
       -> perform taint analysis

   Run with:  dune exec examples/pipeline_trace.exe *)

let () =
  print_endline "FlowDroid pipeline (Figure 4) on µInsecureBank:";
  print_newline ();
  let step = ref 0 in
  let result =
    Fd_core.Infoflow.analyze_apk
      ~phase:(fun name ->
        incr step;
        Printf.printf "  %d. %s\n%!" !step name)
      Fd_appgen.Insecurebank.apk
  in
  print_newline ();
  let stats = result.Fd_core.Infoflow.r_stats in
  Printf.printf "reachable methods : %d\n" stats.Fd_core.Infoflow.st_reachable;
  Printf.printf "call-graph edges  : %d\n" stats.Fd_core.Infoflow.st_cg_edges;
  Printf.printf "propagations      : %d\n"
    stats.Fd_core.Infoflow.st_propagations;
  Printf.printf "flows found       : %d\n"
    (List.length result.Fd_core.Infoflow.r_findings);
  print_newline ();
  print_endline "Each flow with its full propagation path:";
  List.iteri
    (fun i (fd : Fd_core.Bidi.finding) ->
      Printf.printf "%d) %s -> %s\n" (i + 1)
        fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc
        (Fd_callgraph.Icfg.string_of_node fd.Fd_core.Bidi.f_sink_node);
      List.iter
        (fun n ->
          Printf.printf "     %s\n" (Fd_callgraph.Icfg.string_of_node n))
        fd.Fd_core.Bidi.f_path)
    result.Fd_core.Infoflow.r_findings
