(* Static vs dynamic, side by side: builds one app with three planted
   behaviours and shows what each analysis sees —

   1. a real leak staged across lifecycle callbacks
      (both find it, the dynamic monitor only under thorough coverage);
   2. an array-index trap
      (the static engine's whole-array model false-alarms, the
      concrete monitor stays silent);
   3. a monitor-evasion probe
      (the dynamic monitor is detected and sees nothing; the static
      engine explores both branches and reports).

   This is the paper's Section 7 TaintDroid discussion as a runnable
   program.   Run with:  dune exec examples/dynamic_monitor.exe *)

open Fd_ir
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

let cls = "demo.Showcase"
let f_stash = B.fld ~ty:(T.Ref "java.lang.String") cls "stash"

let get_imei m ~tag ret =
  let tm = B.local m (ret.Stmt.l_name ^ "_tm")
      ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag ~ret tm "android.telephony.TelephonyManager" "getDeviceId" []

let app =
  Apk.make "Showcase"
    ~manifest:(Apk.simple_manifest ~package:"demo" [ (FW.Activity, cls, []) ])
    [
      B.cls cls ~super:"android.app.Activity"
        ~fields:[ ("stash", T.Ref "java.lang.String") ]
        [
          B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
              let this = B.this m in
              let _ = B.param m 0 "b" in
              (* 1. stage the IMEI for the later callback *)
              let x = B.local m "x" in
              get_imei m ~tag:"lifecycle-src" x;
              B.store m this f_stash (B.v x);
              (* 2. the array trap: taint arr[0], leak arr[1] *)
              let arr = B.local m "arr" ~ty:(T.Array (T.Ref "java.lang.String")) in
              let y = B.local m "y" and out = B.local m "out" in
              B.newarray m arr (T.Ref "java.lang.String") (B.i 2);
              B.astore m arr (B.i 1) (B.s "clean");
              get_imei m ~tag:"array-src" y;
              B.astore m arr (B.i 0) (B.v y);
              B.aload m out arr (B.i 1);
              B.scall m ~tag:"array-sink" "android.util.Log" "i"
                [ B.s "arr"; B.v out ];
              (* 3. the evasion probe *)
              let probe = B.local m "probe" ~ty:T.Int in
              let z = B.local m "z" in
              B.scall m ~ret:probe "android.os.Debug" "isDebuggerConnected" [];
              B.ifgoto m (B.v probe) Stmt.Cne (B.i 0) "quiet";
              get_imei m ~tag:"evasive-src" z;
              B.scall m ~tag:"evasive-sink" "android.util.Log" "e"
                [ B.s "evade"; B.v z ];
              B.label m "quiet";
              B.ret m);
          B.meth "onDestroy" (fun m ->
              let this = B.this m in
              let v = B.local m "v" in
              B.load m v this f_stash;
              B.scall m ~tag:"lifecycle-sink" "android.util.Log" "d"
                [ B.s "bye"; B.v v ]);
        ];
    ]

let show title findings =
  Printf.printf "%-34s %s\n" title
    (if findings = [] then "(nothing)"
     else
       String.concat ", "
         (List.map
            (fun (s, k) ->
              Printf.sprintf "%s->%s"
                (Option.value s ~default:"?")
                (Option.value k ~default:"?"))
            findings))

let () =
  print_endline "One app, three behaviours, three observers:\n";
  let static =
    Fd_core.Infoflow.analyze_apk app |> fun r ->
    List.map
      (fun (fd : Fd_core.Bidi.finding) ->
        (fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag, fd.Fd_core.Bidi.f_sink_tag))
      r.Fd_core.Infoflow.r_findings
    |> List.sort_uniq compare
  in
  let dynamic coverage =
    Fd_interp.Droid_runner.findings
      (Fd_interp.Droid_runner.run ~coverage (Apk.load app))
  in
  show "FlowDroid (static):" static;
  show "dynamic monitor (basic driver):" (dynamic Fd_interp.Droid_runner.Basic);
  show "dynamic monitor (thorough):" (dynamic Fd_interp.Droid_runner.Thorough);
  print_newline ();
  print_endline "Reading the result:";
  print_endline
    "  - lifecycle-src->lifecycle-sink: real; static always finds it, the\n\
    \    dynamic monitor only when the driver reaches onDestroy;";
  print_endline
    "  - array-src->array-sink: a false alarm of the static whole-array\n\
    \    model; the concrete monitor correctly stays silent;";
  print_endline
    "  - evasive-src->evasive-sink: real malware behaviour that hides from\n\
    \    the monitor; only the static analysis, which explores both\n\
    \    branches of the probe, reports it."
