test/test_icc.ml: Alcotest Bidi Build Fd_core Fd_frontend Fd_ir Icc Infoflow List Printf Stmt Taint Types
