test/test_bidi_edge.mli:
