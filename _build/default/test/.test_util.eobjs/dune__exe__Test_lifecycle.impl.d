test/test_lifecycle.ml: Alcotest Build Callbacks Dummy_main Fd_callgraph Fd_frontend Fd_ir Fd_lifecycle Jclass Lifecycle List Option Pretty Scene String Types
