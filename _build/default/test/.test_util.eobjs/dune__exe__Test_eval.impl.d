test/test_eval.ml: Alcotest Fd_appgen Fd_core Fd_eval Fd_frontend Fd_xml List Printf String
