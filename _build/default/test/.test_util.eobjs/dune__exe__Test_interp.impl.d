test/test_interp.ml: Alcotest Build Droid_runner Fd_core Fd_droidbench Fd_eval Fd_frontend Fd_interp Fd_ir Fd_securibench List Option Stmt Types
