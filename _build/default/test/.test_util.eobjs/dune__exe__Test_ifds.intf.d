test/test_ifds.mli:
