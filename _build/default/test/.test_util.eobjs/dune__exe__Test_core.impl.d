test/test_core.ml: Access_path Alcotest Bidi Build Config Fd_callgraph Fd_core Fd_frontend Fd_ir Infoflow List Option Printf QCheck QCheck_alcotest Stmt Taint Types
