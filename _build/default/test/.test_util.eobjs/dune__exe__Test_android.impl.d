test/test_android.ml: Alcotest Bidi Build Config Fd_callgraph Fd_core Fd_frontend Fd_ir Fd_lifecycle Infoflow Jclass List Option Pretty Scene Stmt String Taint Types
