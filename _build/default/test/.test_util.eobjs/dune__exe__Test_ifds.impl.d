test/test_ifds.ml: Alcotest Array Fd_ifds Fun Hashtbl List Printf String
