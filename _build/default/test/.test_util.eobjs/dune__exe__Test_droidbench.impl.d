test/test_droidbench.ml: Alcotest Droidbench_table Engines Fd_droidbench Fd_eval Lazy List Option Printf Scoring String
