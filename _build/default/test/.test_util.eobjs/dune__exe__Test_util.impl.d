test/test_util.ml: Alcotest Fd_util Fun List Printf Prng QCheck QCheck_alcotest String Table
