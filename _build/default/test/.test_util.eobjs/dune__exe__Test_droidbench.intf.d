test/test_droidbench.mli:
