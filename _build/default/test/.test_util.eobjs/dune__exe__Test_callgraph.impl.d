test/test_callgraph.ml: Alcotest Body Build Callgraph Fd_callgraph Fd_ir Icfg Jclass List Mkey Printf QCheck QCheck_alcotest Scene Stmt Types
