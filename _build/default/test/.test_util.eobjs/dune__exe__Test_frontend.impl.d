test/test_frontend.ml: Alcotest Apk Build Fd_frontend Fd_ir Fd_xml Framework Jclass Layout List Manifest Option Printf Rules Scene Sourcesink Sys
