test/test_properties.ml: Alcotest Build Fd_appgen Fd_callgraph Fd_core Fd_frontend Fd_interp Fd_ir Fun List Printf QCheck QCheck_alcotest Types
