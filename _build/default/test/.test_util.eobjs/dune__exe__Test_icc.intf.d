test/test_icc.mli:
