test/test_bidi_edge.ml: Alcotest Bidi Build Fd_callgraph Fd_core Fd_frontend Fd_ir Infoflow List Option Printf Stmt Taint Types
