test/test_roundtrip.ml: Alcotest Body Fd_core Fd_droidbench Fd_frontend Fd_ir Jclass List Pretty Printf Types
