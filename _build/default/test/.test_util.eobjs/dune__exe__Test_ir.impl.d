test/test_ir.ml: Alcotest Body Build Fd_ir Jclass Lexer List Option Parser Pretty Printf QCheck QCheck_alcotest Scene Stmt String Types
