test/test_xml.ml: Alcotest Fd_xml List Printf QCheck QCheck_alcotest
