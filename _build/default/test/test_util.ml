(* Tests for Fd_util: the PRNG and the table renderer. *)

open Fd_util

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_bounds () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int t 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_prng_range () =
  let t = Prng.create 9 in
  for _ = 1 to 1000 do
    let x = Prng.range t 3 7 in
    Alcotest.(check bool) "in [3,7]" true (x >= 3 && x <= 7)
  done

let test_prng_range_singleton () =
  let t = Prng.create 9 in
  Alcotest.(check int) "lo=hi" 5 (Prng.range t 5 5)

let test_prng_invalid () =
  let t = Prng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0));
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Prng.choose: empty list") (fun () ->
      ignore (Prng.choose t []))

let test_prng_float () =
  let t = Prng.create 11 in
  for _ = 1 to 1000 do
    let x = Prng.float t 1.0 in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_choose () =
  let t = Prng.create 5 in
  for _ = 1 to 100 do
    let x = Prng.choose t [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem x [ 1; 2; 3 ])
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create 8 in
  let xs = List.init 50 Fun.id in
  let ys = Prng.shuffle t xs in
  Alcotest.(check (list int)) "same multiset" xs (List.sort compare ys)

let test_prng_poisson_mean () =
  let t = Prng.create 99 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Prng.poisson t 1.85
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "poisson mean %.3f near 1.85" mean)
    true
    (mean > 1.7 && mean < 2.0)

let test_prng_poisson_zero () =
  let t = Prng.create 1 in
  Alcotest.(check int) "lambda<=0 gives 0" 0 (Prng.poisson t 0.0)

let test_prng_split_independent () =
  let t = Prng.create 13 in
  let a = Prng.split t in
  let b = Prng.split t in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

(* Table *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_alignment () =
  let t =
    Table.make ~header:[ "App"; "Found" ]
      [ Table.Row [ "A1"; "yes" ]; Table.Row [ "LongerName"; "no" ] ]
  in
  let s = Table.render t in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header starts with App" true
        (String.length header >= 3 && String.sub header 0 3 = "App")
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "mentions LongerName" true (contains s "LongerName")

let test_table_section_and_sep () =
  let t =
    Table.make ~header:[ "a"; "b" ]
      [ Table.Section "Lifecycle"; Table.Row [ "x"; "y" ]; Table.Sep ]
  in
  let s = Table.render t in
  Alcotest.(check bool) "section rendered" true (contains s "== Lifecycle")

let test_pct () =
  Alcotest.(check string) "93%" "93%" (Table.pct 26 28);
  Alcotest.(check string) "n/a" "n/a" (Table.pct 1 0);
  Alcotest.(check string) "100%" "100%" (Table.pct 5 5)

let test_f_measure () =
  let f = Table.f_measure 0.86 0.93 in
  Alcotest.(check bool) "f near 0.89" true (abs_float (f -. 0.894) < 0.01);
  Alcotest.(check (float 0.0001)) "degenerate" 0.0 (Table.f_measure 0.0 0.0)

(* property tests *)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~name:"prng int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let x = Prng.int t bound in
      x >= 0 && x < bound)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let t = Prng.create seed in
      List.sort compare (Prng.shuffle t xs) = List.sort compare xs)

let prop_table_render_line_count =
  QCheck.Test.make ~name:"table renders one line per row (+2 for header)"
    ~count:200
    QCheck.(small_list (small_list printable_string))
    (fun rows ->
      let rows = List.map (fun r -> Table.Row ("x" :: r)) rows in
      let t = Table.make ~header:[ "h" ] rows in
      let s = Table.render t in
      let nlines =
        String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s
      in
      nlines = List.length rows + 2)

let () =
  Alcotest.run "fd_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "different seeds" `Quick test_prng_different_seeds;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "range" `Quick test_prng_range;
          Alcotest.test_case "range singleton" `Quick test_prng_range_singleton;
          Alcotest.test_case "invalid args" `Quick test_prng_invalid;
          Alcotest.test_case "float bounds" `Quick test_prng_float;
          Alcotest.test_case "choose member" `Quick test_prng_choose;
          Alcotest.test_case "shuffle permutation" `Quick
            test_prng_shuffle_permutation;
          Alcotest.test_case "poisson mean" `Slow test_prng_poisson_mean;
          Alcotest.test_case "poisson zero" `Quick test_prng_poisson_zero;
          Alcotest.test_case "split independence" `Quick
            test_prng_split_independent;
        ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "sections" `Quick test_table_section_and_sep;
          Alcotest.test_case "pct" `Quick test_pct;
          Alcotest.test_case "f-measure" `Quick test_f_measure;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_prng_int_in_bounds;
            prop_shuffle_is_permutation;
            prop_table_render_line_count;
          ] );
    ]
