(* Regression tests for the DROIDBENCH reproduction (Table 1).

   These pin the per-engine aggregate results so that engine changes
   that would silently alter the headline numbers fail loudly. *)

open Fd_eval
module Suite = Fd_droidbench.Suite
module Bench_app = Fd_droidbench.Bench_app

let table =
  lazy
    (Droidbench_table.run
       [ Engines.appscan; Engines.fortify; Engines.flowdroid () ])

let test_suite_shape () =
  Alcotest.(check int) "51 apps (39 of DroidBench 1.0 + 12 extensions)" 51
    (List.length Suite.all);
  Alcotest.(check int) "35 scored rows (Table 1)" 35 (List.length Suite.scored);
  Alcotest.(check int) "28 expected leaks" 28 Suite.total_expected_leaks;
  (* names unique *)
  let names = List.map (fun a -> a.Bench_app.app_name) Suite.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_flowdroid_totals () =
  let t = Lazy.force table in
  let tp, fp, fn = Droidbench_table.totals_of t "FlowDroid" in
  Alcotest.(check int) "FlowDroid TP (paper: 26)" 26 tp;
  Alcotest.(check int) "FlowDroid FP (paper: 4)" 4 fp;
  Alcotest.(check int) "FlowDroid FN (paper: 2)" 2 fn

let test_comparator_totals () =
  let t = Lazy.force table in
  let atp, afp, afn = Droidbench_table.totals_of t "AppScan" in
  let ftp, ffp, ffn = Droidbench_table.totals_of t "Fortify" in
  (* paper: AppScan 14/5/14, Fortify 17/4/11 — we pin our simulated
     comparators' actual numbers, checking they stay in the paper's
     neighbourhood and preserve the ordering *)
  Alcotest.(check int) "AppScan TP" 13 atp;
  Alcotest.(check int) "AppScan FP" 5 afp;
  Alcotest.(check int) "AppScan FN" 15 afn;
  Alcotest.(check int) "Fortify TP" 18 ftp;
  Alcotest.(check int) "Fortify FP" 5 ffp;
  Alcotest.(check int) "Fortify FN" 10 ffn;
  Alcotest.(check bool) "recall ordering: AppScan < Fortify < FlowDroid" true
    (atp < ftp && ftp < 26)

let verdict_of app engine =
  let t = Lazy.force table in
  let row =
    List.find
      (fun r -> r.Droidbench_table.ar_app.Bench_app.app_name = app)
      t.Droidbench_table.rows
  in
  List.assoc engine row.Droidbench_table.ar_verdicts

let check_verdict app engine ~tp ~fp ~fn =
  let v = verdict_of app engine in
  Alcotest.(check (list int))
    (Printf.sprintf "%s/%s" app engine)
    [ tp; fp; fn ]
    [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

let test_flowdroid_known_fps () =
  (* the four deliberate imprecisions of Table 1 *)
  check_verdict "ArrayAccess1" "FlowDroid" ~tp:0 ~fp:1 ~fn:0;
  check_verdict "ArrayAccess2" "FlowDroid" ~tp:0 ~fp:1 ~fn:0;
  check_verdict "ListAccess1" "FlowDroid" ~tp:0 ~fp:1 ~fn:0;
  check_verdict "Button2" "FlowDroid" ~tp:2 ~fp:1 ~fn:0

let test_flowdroid_known_fns () =
  (* the two known misses *)
  check_verdict "IntentSink1" "FlowDroid" ~tp:0 ~fp:0 ~fn:1;
  check_verdict "StaticInitialization1" "FlowDroid" ~tp:0 ~fp:0 ~fn:1

let test_flowdroid_clean_categories () =
  (* precision showcases: no false alarms on the sensitivity traps *)
  List.iter
    (fun app -> check_verdict app "FlowDroid" ~tp:0 ~fp:0 ~fn:0)
    [
      "FieldSensitivity1"; "FieldSensitivity2"; "ObjectSensitivity1";
      "ObjectSensitivity2"; "UnreachableCode"; "InactiveActivity"; "LogNoLeak";
    ]

let test_flowdroid_lifecycle_category () =
  (* all six lifecycle leaks found — the headline advantage *)
  List.iter
    (fun app -> check_verdict app "FlowDroid" ~tp:1 ~fp:0 ~fn:0)
    [
      "BroadcastReceiverLifecycle1"; "ActivityLifecycle1"; "ActivityLifecycle2";
      "ActivityLifecycle3"; "ActivityLifecycle4"; "ServiceLifecycle1";
    ]

let test_comparators_miss_lifecycle_state () =
  (* without a lifecycle model, instance-field flows across callbacks
     are invisible to both comparators *)
  List.iter
    (fun app ->
      check_verdict app "AppScan" ~tp:0 ~fp:0 ~fn:1;
      check_verdict app "Fortify" ~tp:0 ~fp:0 ~fn:1)
    [ "ActivityLifecycle4"; "ServiceLifecycle1"; "Button1"; "PrivateDataLeak1" ]

let test_fortify_statics_by_chance () =
  (* Fortify's special static handling finds the static-field
     lifecycle cases (Section 6.1: "only happens by chance") *)
  List.iter
    (fun app ->
      check_verdict app "Fortify" ~tp:1 ~fp:0 ~fn:0;
      check_verdict app "AppScan" ~tp:0 ~fp:0 ~fn:1)
    [ "ActivityLifecycle1"; "ActivityLifecycle2"; "ActivityLifecycle3";
      "BroadcastReceiverLifecycle1" ]

let test_appscan_field_insensitive_fps () =
  check_verdict "FieldSensitivity1" "AppScan" ~tp:0 ~fp:1 ~fn:0;
  check_verdict "FieldSensitivity2" "AppScan" ~tp:0 ~fp:1 ~fn:0;
  check_verdict "FieldSensitivity1" "Fortify" ~tp:0 ~fp:0 ~fn:0;
  check_verdict "FieldSensitivity2" "Fortify" ~tp:0 ~fp:0 ~fn:0

let test_implicit_flows_silent () =
  (* the excluded implicit-flow apps: the engine must stay silent
     (explicit-flow analysis by design) *)
  let fd = Engines.flowdroid () in
  List.iter
    (fun (app : Bench_app.t) ->
      Alcotest.(check int)
        (app.Bench_app.app_name ^ " silent")
        0
        (List.length (fd.Engines.eng_run app.Bench_app.app_apk)))
    (Suite.by_category "Implicit Flows")

(* the post-1.0 extension cases: per-app expected engine behaviour,
   including the documented deviations *)
let test_extensions () =
  let fd = Engines.flowdroid () in
  List.iter
    (fun (name, exp_tp, exp_fp, exp_fn) ->
      let app = Option.get (Suite.find name) in
      let v =
        Scoring.score
          ~expected:
            (List.map Scoring.of_bench_expectation app.Bench_app.app_expected)
          ~findings:(fd.Engines.eng_run app.Bench_app.app_apk)
      in
      Alcotest.(check (list int))
        name
        [ exp_tp; exp_fp; exp_fn ]
        [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ])
    [
      ("FieldSensitivity5", 1, 0, 0);
      ("ObjectSensitivity3", 0, 0, 0);
      ("Exceptions1", 0, 0, 0);
      ("LocationLeak3", 1, 0, 0);
      (* reflection edges are not modelled: a documented miss *)
      ("Reflection1", 0, 0, 1);
      ("ServiceCommunication1", 1, 0, 0);
      ("Parcel1", 2, 0, 0);
      ("Threading1", 1, 0, 0);
      ("UnregisteredCallback1", 0, 0, 0);
      ("DeepAlias1", 1, 0, 0);
      ("AsyncTask1", 1, 0, 0);
      ("FragmentLifecycle1", 1, 0, 0);
    ]

let test_render_contains_rows () =
  let t = Lazy.force table in
  let s = Droidbench_table.render t in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun row -> Alcotest.(check bool) (row ^ " in render") true (contains row))
    [ "ArrayAccess1"; "== Lifecycle"; "Precision"; "F-measure"; "93%" ]

let () =
  Alcotest.run "fd_droidbench"
    [
      ( "suite",
        [
          Alcotest.test_case "shape" `Quick test_suite_shape;
          Alcotest.test_case "render" `Slow test_render_contains_rows;
        ] );
      ( "totals",
        [
          Alcotest.test_case "FlowDroid 26/4/2" `Slow test_flowdroid_totals;
          Alcotest.test_case "comparators" `Slow test_comparator_totals;
        ] );
      ( "per-app",
        [
          Alcotest.test_case "known FPs" `Slow test_flowdroid_known_fps;
          Alcotest.test_case "known FNs" `Slow test_flowdroid_known_fns;
          Alcotest.test_case "clean traps" `Slow test_flowdroid_clean_categories;
          Alcotest.test_case "lifecycle wins" `Slow
            test_flowdroid_lifecycle_category;
          Alcotest.test_case "comparators miss state" `Slow
            test_comparators_miss_lifecycle_state;
          Alcotest.test_case "Fortify statics by chance" `Slow
            test_fortify_statics_by_chance;
          Alcotest.test_case "AppScan field-insensitivity" `Slow
            test_appscan_field_insensitive_fps;
          Alcotest.test_case "implicit flows silent" `Slow
            test_implicit_flows_silent;
          Alcotest.test_case "extension cases" `Slow test_extensions;
        ] );
    ]
