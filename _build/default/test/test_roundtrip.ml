(* Whole-corpus integration test: every DroidBench app's code must
   survive a Pretty → Parser round trip, and the analysis of the
   re-parsed app must report exactly the same flows as the original.

   This exercises the textual µJimple frontend on ~39 realistic apps
   (every statement shape the benchmarks use) and pins the semantics
   of printing/parsing to "observably identical program". *)

open Fd_ir
module Bench_app = Fd_droidbench.Bench_app
module Apk = Fd_frontend.Apk

let reparse_apk (apk : Apk.t) =
  let sources =
    List.map Pretty.class_to_string apk.Apk.apk_classes
  in
  Apk.make_text (apk.Apk.apk_name ^ "-reparsed")
    ~manifest:apk.Apk.apk_manifest ~layouts:apk.Apk.apk_layouts sources

let findings apk =
  let r = Fd_core.Infoflow.analyze_apk apk in
  List.map
    (fun (fd : Fd_core.Bidi.finding) ->
      ( fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag,
        fd.Fd_core.Bidi.f_sink_tag ))
    r.Fd_core.Infoflow.r_findings
  |> List.sort_uniq compare

let test_roundtrip_app (app : Bench_app.t) () =
  let original = app.Bench_app.app_apk in
  let reparsed = reparse_apk original in
  (* structural: same classes, same methods with the same statement
     counts *)
  List.iter2
    (fun (c1 : Jclass.t) (c2 : Jclass.t) ->
      Alcotest.(check string) "class name" c1.Jclass.c_name c2.Jclass.c_name;
      Alcotest.(check int)
        (c1.Jclass.c_name ^ " method count")
        (List.length c1.Jclass.c_methods)
        (List.length c2.Jclass.c_methods);
      List.iter2
        (fun (m1 : Jclass.jmethod) (m2 : Jclass.jmethod) ->
          match (m1.Jclass.jm_body, m2.Jclass.jm_body) with
          | Some b1, Some b2 ->
              Alcotest.(check int)
                (Printf.sprintf "%s.%s stmt count" c1.Jclass.c_name
                   m1.Jclass.jm_sig.Types.m_name)
                (Body.length b1) (Body.length b2)
          | None, None -> ()
          | _ -> Alcotest.fail "body presence differs")
        c1.Jclass.c_methods c2.Jclass.c_methods)
    original.Apk.apk_classes reparsed.Apk.apk_classes;
  (* behavioural: identical analysis results *)
  Alcotest.(check (list (pair (option string) (option string))))
    "identical findings after round trip" (findings original)
    (findings reparsed)

let () =
  Alcotest.run "fd_roundtrip"
    [
      ( "droidbench-corpus",
        List.map
          (fun (app : Bench_app.t) ->
            Alcotest.test_case app.Bench_app.app_name `Slow
              (test_roundtrip_app app))
          Fd_droidbench.Suite.all );
    ]
