(* Tests for the taint engine core: access paths, the bidirectional
   solver on the paper's own example programs (Listing 2, Listing 3,
   Figure 2), and the deliberate imprecisions (arrays, no strong
   updates on the heap). *)

open Fd_ir
open Fd_core
module B = Build
module T = Types
module AP = Access_path
module SS = Fd_frontend.Sourcesink

(* ---------------- access paths ---------------- *)

let loc name = Stmt.mk_local name
let f name = Types.mk_field "t.C" name

let test_ap_basic () =
  let x = AP.of_local (loc "x") in
  let xf = AP.of_field (loc "x") (f "f") in
  Alcotest.(check string) "print" "x.f" (AP.to_string xf);
  Alcotest.(check bool) "x prefix of x.f" true (AP.has_prefix ~prefix:x xf);
  Alcotest.(check bool) "x.f not prefix of x" false (AP.has_prefix ~prefix:xf x);
  Alcotest.(check bool) "covers" true (AP.covers ~taint:x xf);
  Alcotest.(check bool) "reaches both ways" true (AP.reaches ~taint:xf x)

let test_ap_rebase () =
  let xfg =
    { AP.base = AP.Bloc (loc "x"); AP.fields = [ f "f"; f "g" ] }
  in
  let yf = AP.of_field (loc "y") (f "f") in
  (match AP.rebase ~k:5 ~from:(AP.of_local (loc "x")) ~to_:yf xfg with
  | Some ap -> Alcotest.(check string) "x.f.g[x->y.f]" "y.f.f.g" (AP.to_string ap)
  | None -> Alcotest.fail "rebase failed");
  (match
     AP.rebase ~k:5 ~from:(AP.of_field (loc "x") (f "f")) ~to_:(AP.of_local (loc "z")) xfg
   with
  | Some ap -> Alcotest.(check string) "x.f.g[x.f->z]" "z.g" (AP.to_string ap)
  | None -> Alcotest.fail "rebase failed");
  Alcotest.(check bool) "no match" true
    (AP.rebase ~k:5 ~from:(AP.of_field (loc "x") (f "h"))
       ~to_:(AP.of_local (loc "z")) xfg
    = None)

let test_ap_truncation () =
  let deep =
    { AP.base = AP.Bloc (loc "x");
      AP.fields = [ f "a"; f "b"; f "c"; f "d"; f "e"; f "f" ] }
  in
  let tr = AP.truncate ~k:3 deep in
  Alcotest.(check int) "len 3" 3 (AP.length tr);
  Alcotest.(check string) "kept prefix" "x.a.b.c" (AP.to_string tr);
  (* truncation widens: the truncated path covers the original *)
  Alcotest.(check bool) "covers original" true (AP.covers ~taint:tr deep)

(* property: rebase round-trips *)
let gen_fields = QCheck.Gen.(list_size (int_bound 4) (oneofl [ "f"; "g"; "h" ]))

let prop_rebase_roundtrip =
  QCheck.Test.make ~name:"rebase x->y then y->x is identity (k large)"
    ~count:300
    (QCheck.make gen_fields)
    (fun fields ->
      let ap =
        { AP.base = AP.Bloc (loc "x"); AP.fields = List.map f fields }
      in
      match
        AP.rebase ~k:100 ~from:(AP.of_local (loc "x"))
          ~to_:(AP.of_local (loc "y")) ap
      with
      | None -> false
      | Some ap' -> (
          match
            AP.rebase ~k:100 ~from:(AP.of_local (loc "y"))
              ~to_:(AP.of_local (loc "x")) ap'
          with
          | None -> false
          | Some ap'' -> AP.equal ap ap''))

let prop_truncate_widens =
  QCheck.Test.make ~name:"truncation covers the original path" ~count:300
    (QCheck.make QCheck.Gen.(pair (int_range 0 3) gen_fields))
    (fun (kk, fields) ->
      let ap = { AP.base = AP.Bloc (loc "x"); AP.fields = List.map f fields } in
      AP.covers ~taint:(AP.truncate ~k:kk ap) ap)

(* ---------------- engine harness ---------------- *)

let test_defs =
  SS.create
    [
      SS.Return_source { cls = "t.Source"; mname = "secret"; cat = SS.Generic };
      SS.Sink { cls = "t.Sink"; mname = "leak"; cat = SS.Generic };
    ]

let analyze ?config classes entries =
  Infoflow.analyze_plain ?config ~classes
    ~entries:
      (List.map
         (fun (c, m) ->
           Fd_callgraph.Mkey.{ mk_class = c; mk_name = m; mk_arity = 0 })
         entries)
    ~defs:test_defs ()

let flow_pairs (r : Infoflow.result) =
  List.map
    (fun (fd : Bidi.finding) ->
      ( Option.value fd.Bidi.f_source.Taint.si_tag ~default:"?",
        Option.value fd.Bidi.f_sink_tag ~default:"?" ))
    r.Infoflow.r_findings
  |> List.sort_uniq compare

let check_flows ?config name classes entries expected =
  let r = analyze ?config classes entries in
  Alcotest.(check (list (pair string string)))
    name
    (List.sort_uniq compare expected)
    (flow_pairs r)

(* shorthand for a source call: x = t.Source#secret() *)
let src m ?tag x = B.scall m ?tag ~ret:x "t.Source" "secret" []
let snk m ?tag x = B.scall m ?tag "t.Sink" "leak" [ B.v x ]

(* ---------------- direct flows ---------------- *)

let test_direct_flow () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            snk m ~tag:"k" x);
      ]
  in
  check_flows "direct" [ c ] [ ("t.A", "main") ] [ ("s", "k") ]

let test_no_flow () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" and y = B.local m "y" in
            src m ~tag:"s" x;
            B.const m y (B.s "benign");
            snk m ~tag:"k" y);
      ]
  in
  check_flows "no flow" [ c ] [ ("t.A", "main") ] []

let test_local_strong_update () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.const m x (B.s "overwritten");
            snk m ~tag:"k" x);
      ]
  in
  check_flows "local kill" [ c ] [ ("t.A", "main") ] []

let test_new_kills () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.newobj m x "t.Obj";
            snk m ~tag:"k" x);
      ]
  in
  check_flows "new kills" [ c ] [ ("t.A", "main") ] []

let test_no_heap_strong_update () =
  (* the Button2 imprecision: overwriting a field with clean data does
     not kill the taint *)
  let fld = B.fld "t.Box" "v" in
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let b = B.local m "b" and x = B.local m "x" and y = B.local m "y" in
            B.newc m b "t.Box" [];
            src m ~tag:"s" x;
            B.store m b fld (B.v x);
            B.const m x (B.s "clean");
            B.store m b fld (B.v x);
            B.load m y b fld;
            snk m ~tag:"k" y);
      ]
  in
  check_flows "no heap strong update (deliberate FP)" [ c ]
    [ ("t.A", "main") ]
    [ ("s", "k") ]

(* ---------------- field sensitivity ---------------- *)

let test_field_sensitivity () =
  let fpwd = B.fld "t.User" "pwd" and fname = B.fld "t.User" "name" in
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let u = B.local m "u" in
            let p = B.local m "p" and n = B.local m "n" in
            let o1 = B.local m "o1" and o2 = B.local m "o2" in
            B.newc m u "t.User" [];
            src m ~tag:"s" p;
            B.const m n (B.s "alice");
            B.store m u fpwd (B.v p);
            B.store m u fname (B.v n);
            B.load m o1 u fname;
            snk m ~tag:"kname" o1;
            B.load m o2 u fpwd;
            snk m ~tag:"kpwd" o2);
      ]
  in
  check_flows "field sensitive" [ c ] [ ("t.A", "main") ] [ ("s", "kpwd") ]

let test_whole_object_at_sink () =
  (* passing an object with a tainted field to a sink leaks *)
  let fpwd = B.fld "t.User" "pwd" in
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let u = B.local m "u" and p = B.local m "p" in
            B.newc m u "t.User" [];
            src m ~tag:"s" p;
            B.store m u fpwd (B.v p);
            snk m ~tag:"k" u);
      ]
  in
  check_flows "tainted field reaches sink via object" [ c ]
    [ ("t.A", "main") ]
    [ ("s", "k") ]

(* ---------------- arrays (deliberate imprecision) ---------------- *)

let test_array_whole_taint () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let arr = B.local m "arr" and x = B.local m "x" and y = B.local m "y" in
            B.newarray m arr T.Int (B.i 10);
            src m ~tag:"s" x;
            B.astore m arr (B.i 0) (B.v x);
            B.aload m y arr (B.i 1);
            snk m ~tag:"k" y);
      ]
  in
  (* index-insensitive: arr[1] reads report even though only arr[0] is
     tainted — the ArrayAccess false-positive class *)
  check_flows "array index insensitivity (deliberate FP)" [ c ]
    [ ("t.A", "main") ]
    [ ("s", "k") ]

(* ---------------- interprocedural ---------------- *)

let test_return_flow () =
  let c =
    B.cls "t.A"
      [
        B.meth "getSecret" ~static:true ~ret:(T.Ref "java.lang.String")
          (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.retv m (B.v x));
        B.meth "main" ~static:true (fun m ->
            let y = B.local m "y" in
            B.scall m ~ret:y "t.A" "getSecret" [];
            snk m ~tag:"k" y);
      ]
  in
  check_flows "return value" [ c ] [ ("t.A", "main") ] [ ("s", "k") ]

let test_param_flow () =
  let c =
    B.cls "t.A"
      [
        B.meth "send" ~static:true ~params:[ T.Ref "java.lang.String" ]
          (fun m ->
            let p = B.param m 0 "p" in
            snk m ~tag:"k" p);
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.scall m "t.A" "send" [ B.v x ]);
      ]
  in
  check_flows "parameter passing" [ c ] [ ("t.A", "main") ] [ ("s", "k") ]

let test_context_sensitivity_plain () =
  (* id() called with tainted and untainted values: only the tainted
     call site leaks *)
  let c =
    B.cls "t.A"
      [
        B.meth "id" ~static:true ~params:[ T.Ref "java.lang.Object" ]
          ~ret:(T.Ref "java.lang.Object") (fun m ->
            let p = B.param m 0 "p" in
            B.retv m (B.v p));
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" and y = B.local m "y" in
            let a = B.local m "a" and b = B.local m "b" in
            src m ~tag:"s" x;
            B.const m y (B.s "benign");
            B.scall m ~ret:a "t.A" "id" [ B.v x ];
            B.scall m ~ret:b "t.A" "id" [ B.v y ];
            snk m ~tag:"ka" a;
            snk m ~tag:"kb" b);
      ]
  in
  check_flows "context sensitivity" [ c ] [ ("t.A", "main") ] [ ("s", "ka") ]

let test_static_field_flow () =
  let g = B.fld ~ty:(T.Ref "java.lang.String") "t.G" "cache" in
  let c =
    B.cls "t.A"
      [
        B.meth "put" ~static:true (fun m ->
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.storestatic m g (B.v x));
        B.meth "get" ~static:true (fun m ->
            let y = B.local m "y" in
            B.loadstatic m y g;
            snk m ~tag:"k" y);
        B.meth "main" ~static:true (fun m ->
            B.scall m "t.A" "put" [];
            B.scall m "t.A" "get" []);
      ]
  in
  check_flows "static field" [ c ] [ ("t.A", "main") ] [ ("s", "k") ]

(* ---------------- the paper's programs ---------------- *)

(* Listing 2: context injection *)
let listing2 () =
  let ff = B.fld "t.Data" "f" in
  B.cls "t.L2"
    [
      B.meth "taintIt" ~static:true
        ~params:[ T.Ref "java.lang.String"; T.Ref "t.Data" ] (fun m ->
          let in_ = B.param m 0 "in" in
          let out = B.param m 1 "out" in
          let x = B.local m "x" in
          let v = B.local m "v" in
          B.move m x out;
          B.store m x ff (B.v in_);
          B.load m v out ff;
          snk m ~tag:"k11" v);
      B.meth "main" ~static:true (fun m ->
          let p = B.local m "p" and p2 = B.local m "p2" in
          let s = B.local m "s" and pub = B.local m "pub" in
          let v1 = B.local m "v1" and v2 = B.local m "v2" in
          B.newc m p "t.Data" [];
          B.newc m p2 "t.Data" [];
          src m ~tag:"s" s;
          B.scall m "t.L2" "taintIt" [ B.v s; B.v p ];
          B.load m v1 p ff;
          snk m ~tag:"k4" v1;
          B.const m pub (B.s "public");
          B.scall m "t.L2" "taintIt" [ B.v pub; B.v p2 ];
          B.load m v2 p2 ff;
          snk m ~tag:"k6" v2);
    ]

let test_listing2_context_injection () =
  (* leaks at line 11 (inside taintIt, tainted call only) and line 4
     (p.f); NO leak at line 6 (p2.f): that would be the unrealizable-
     path false positive of the naive handover *)
  check_flows "Listing 2 with context injection" [ listing2 () ]
    [ ("t.L2", "main") ]
    [ ("s", "k11"); ("s", "k4") ]

let test_listing2_naive_handover () =
  (* ablation reproducing Figure 3's naive handover: without context
     injection the p2.f leak at line 6 is (wrongly) reported too *)
  let config = { Config.default with Config.context_injection = false } in
  let r = analyze ~config [ listing2 () ] [ ("t.L2", "main") ] in
  let pairs = flow_pairs r in
  Alcotest.(check bool) "still finds the real leaks" true
    (List.mem ("s", "k11") pairs && List.mem ("s", "k4") pairs);
  Alcotest.(check bool) "naive handover adds the p2.f false positive" true
    (List.mem ("s", "k6") pairs)

(* Listing 3: activation statements *)
let listing3 () =
  let ff = B.fld "t.Data" "f" in
  B.cls "t.L3"
    [
      B.meth "main" ~static:true (fun m ->
          let p = B.local m "p" and p2 = B.local m "p2" in
          let s = B.local m "s" in
          let v1 = B.local m "v1" and v2 = B.local m "v2" in
          B.newc m p "t.Data" [];
          B.move m p2 p;
          B.load m v1 p2 ff;
          snk m ~tag:"k2" v1;
          src m ~tag:"s" s;
          B.store m p ff (B.v s);
          B.load m v2 p2 ff;
          snk m ~tag:"k4" v2);
    ]

let test_listing3_flow_sensitivity () =
  (* the first sink reads p2.f before p.f is tainted: no leak there *)
  check_flows "Listing 3 with activation statements" [ listing3 () ]
    [ ("t.L3", "main") ]
    [ ("s", "k4") ]

let test_listing3_andromeda_style () =
  (* ablation: without activation statements the alias p2.f is born
     active and the first sink reports a flow-insensitive false
     positive — the Andromeda behaviour the paper improves on *)
  let config = { Config.default with Config.activation_statements = false } in
  let r = analyze ~config [ listing3 () ] [ ("t.L3", "main") ] in
  let pairs = flow_pairs r in
  Alcotest.(check bool) "real leak found" true (List.mem ("s", "k4") pairs);
  Alcotest.(check bool) "flow-insensitive FP at the first sink" true
    (List.mem ("s", "k2") pairs)

(* Figure 2: taint analysis under realistic aliasing *)
let figure2 () =
  let fg = B.fld "t.A2" "g" in
  let ffld = B.fld "t.Obj" "f" in
  B.cls "t.F2"
    [
      B.meth "foo" ~static:true ~params:[ T.Ref "t.A2" ] (fun m ->
          let z = B.param m 0 "z" in
          let x = B.local m "x" in
          let w = B.local m "w" in
          B.load m x z fg;
          src m ~tag:"s" w;
          B.store m x ffld (B.v w));
      B.meth "main" ~static:true (fun m ->
          let a = B.local m "a" and b = B.local m "b" in
          let o = B.local m "o" and v = B.local m "v" in
          B.newc m a "t.A2" [];
          B.newc m o "t.Obj" [];
          B.store m a fg (B.v o);
          B.load m b a fg;
          B.scall m "t.F2" "foo" [ B.v a ];
          B.load m v b ffld;
          snk m ~tag:"k" v);
    ]

let test_figure2_aliasing () =
  check_flows "Figure 2: b.f tainted through deep aliasing" [ figure2 () ]
    [ ("t.F2", "main") ]
    [ ("s", "k") ]

let test_alias_search_off () =
  (* turning the backward analysis off loses the Figure 2 leak *)
  let config = { Config.default with Config.alias_search = false } in
  let r = analyze ~config [ figure2 () ] [ ("t.F2", "main") ] in
  Alcotest.(check (list (pair string string))) "missed without aliasing" []
    (flow_pairs r)

(* ---------------- wrappers & natives ---------------- *)

let test_stringbuilder_wrapper () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let sb = B.local m "sb" and x = B.local m "x" and out = B.local m "out" in
            B.newc m sb "java.lang.StringBuilder" [];
            src m ~tag:"s" x;
            B.vcall m sb "java.lang.StringBuilder" "append" [ B.v x ];
            B.vcall m ~ret:out sb "java.lang.StringBuilder" "toString" [];
            snk m ~tag:"k" out);
      ]
  in
  check_flows "StringBuilder shortcut rules" [ c ] [ ("t.A", "main") ]
    [ ("s", "k") ]

let test_collection_wrapper () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let l = B.local m "l" ~ty:(T.Ref "java.util.ArrayList") in
            let x = B.local m "x" and y = B.local m "y" in
            B.newc m l "java.util.ArrayList" [];
            src m ~tag:"s" x;
            B.vcall m l "java.util.ArrayList" "add" [ B.v x ];
            B.vcall m ~ret:y l "java.util.ArrayList" "get" [ B.i 0 ];
            snk m ~tag:"k" y);
      ]
  in
  check_flows "collection whole-container rule" [ c ] [ ("t.A", "main") ]
    [ ("s", "k") ]

let test_arraycopy_native () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let a = B.local m "a" and b = B.local m "b" in
            let x = B.local m "x" and y = B.local m "y" in
            B.newarray m a T.Char (B.i 8);
            B.newarray m b T.Char (B.i 8);
            src m ~tag:"s" x;
            B.astore m a (B.i 0) (B.v x);
            B.scall m "java.lang.System" "arraycopy"
              [ B.v a; B.i 0; B.v b; B.i 0; B.i 8 ];
            B.aload m y b (B.i 0);
            snk m ~tag:"k" y);
      ]
  in
  check_flows "System.arraycopy native rule" [ c ] [ ("t.A", "main") ]
    [ ("s", "k") ]

let test_sanitizing_rule () =
  (* a modelled method with no effects does not propagate: String.length *)
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" ~ty:(T.Ref "java.lang.String") in
            let n = B.local m "n" in
            src m ~tag:"s" x;
            B.vcall m ~ret:n x "java.lang.String" "length" [];
            snk m ~tag:"k" n);
      ]
  in
  check_flows "empty-effect rule blocks flow" [ c ] [ ("t.A", "main") ] []

(* ---------------- access-path length ablation ---------------- *)

let deep_chain_cls () =
  let fa = B.fld "t.N" "a" in
  B.cls "t.A"
    [
      B.meth "main" ~static:true (fun m ->
          let o = B.local m "o" and x = B.local m "x" in
          let c1 = B.local m "c1" and c2 = B.local m "c2" and c3 = B.local m "c3" in
          let r1 = B.local m "r1" and r2 = B.local m "r2" and r3 = B.local m "r3" in
          let v = B.local m "v" in
          B.newc m o "t.N" [];
          B.newc m c1 "t.N" [];
          B.newc m c2 "t.N" [];
          B.newc m c3 "t.N" [];
          B.store m o fa (B.v c1);
          B.store m c1 fa (B.v c2);
          B.store m c2 fa (B.v c3);
          src m ~tag:"s" x;
          B.store m c3 fa (B.v x);
          (* read back o.a.a.a.a *)
          B.load m r1 o fa;
          B.load m r2 r1 fa;
          B.load m r3 r2 fa;
          B.load m v r3 fa;
          snk m ~tag:"k" v);
    ]

let test_deep_chain_default_k () =
  check_flows "depth-4 chain found at k=5" [ deep_chain_cls () ]
    [ ("t.A", "main") ]
    [ ("s", "k") ]

let test_deep_chain_small_k_still_sound () =
  (* truncation widens, so small k keeps the leak (soundness), it only
     costs precision *)
  let config = { Config.default with Config.max_access_path = 1 } in
  let r = analyze ~config [ deep_chain_cls () ] [ ("t.A", "main") ] in
  Alcotest.(check (list (pair string string)))
    "still found at k=1"
    [ ("s", "k") ]
    (flow_pairs r)

let test_small_k_false_positive () =
  (* at k=1, o.a.b collapses with o.a.c: reading the clean sibling
     reports a false positive *)
  let fa = B.fld "t.N" "a" in
  let fb = B.fld "t.N" "b" in
  let fc = B.fld "t.N" "c" in
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let o = B.local m "o" and mid = B.local m "mid" in
            let x = B.local m "x" and r = B.local m "r" and v = B.local m "v" in
            B.newc m o "t.N" [];
            B.newc m mid "t.N" [];
            B.store m o fa (B.v mid);
            src m ~tag:"s" x;
            B.store m mid fb (B.v x);
            (* read o.a.c — clean *)
            B.load m r o fa;
            B.load m v r fc;
            snk m ~tag:"k" v);
      ]
  in
  let r1 = analyze [ c ] [ ("t.A", "main") ] in
  Alcotest.(check (list (pair string string))) "precise at k=5" [] (flow_pairs r1);
  let config = { Config.default with Config.max_access_path = 1 } in
  let r2 = analyze ~config [ c ] [ ("t.A", "main") ] in
  Alcotest.(check (list (pair string string)))
    "imprecise at k=1"
    [ ("s", "k") ]
    (flow_pairs r2)

(* ---------------- virtual dispatch ---------------- *)

let test_virtual_dispatch_flow () =
  let base =
    B.cls "t.Base"
      [
        B.meth "get" ~ret:(T.Ref "java.lang.String") (fun m ->
            let _ = B.this m in
            let x = B.local m "x" in
            B.const m x (B.s "clean");
            B.retv m (B.v x));
      ]
  in
  let sub =
    B.cls "t.Sub" ~super:"t.Base"
      [
        B.meth "get" ~ret:(T.Ref "java.lang.String") (fun m ->
            let _ = B.this m in
            let x = B.local m "x" in
            src m ~tag:"s" x;
            B.retv m (B.v x));
      ]
  in
  let main =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let o = B.local m "o" ~ty:(T.Ref "t.Base") in
            let y = B.local m "y" in
            B.newc m o "t.Sub" [];
            B.vcall m ~ret:y o "t.Base" "get" [];
            snk m ~tag:"k" y);
      ]
  in
  check_flows "CHA virtual dispatch" [ base; sub; main ] [ ("t.A", "main") ]
    [ ("s", "k") ]

(* ---------------- path reconstruction ---------------- *)

let test_path_reconstruction () =
  let c =
    B.cls "t.A"
      [
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" and y = B.local m "y" in
            src m ~tag:"s" x;
            B.move m y x;
            snk m ~tag:"k" y);
      ]
  in
  let r = analyze [ c ] [ ("t.A", "main") ] in
  match r.Infoflow.r_findings with
  | [ fd ] ->
      Alcotest.(check bool) "path nonempty" true (List.length fd.Bidi.f_path >= 2);
      let last = List.nth fd.Bidi.f_path (List.length fd.Bidi.f_path - 1) in
      Alcotest.(check bool) "path ends at sink" true
        (Fd_callgraph.Icfg.equal_node last fd.Bidi.f_sink_node)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

(* appended: activation statements across call boundaries — "activation
   statements are representatives of call trees" (Section 4.2): an
   alias discovered in the caller whose activating heap write sits
   inside a callee must activate when crossing the *call*, not before. *)
let test_activation_through_call () =
  let ff = B.fld "t.Data" "f" in
  let c =
    B.cls "t.ActCall"
      [
        B.meth "taintIt" ~static:true ~params:[ T.Ref "t.Data" ] (fun m ->
            let out = B.param m 0 "out" in
            let s = B.local m "s" in
            src m ~tag:"s" s;
            B.store m out ff (B.v s));
        B.meth "main" ~static:true (fun m ->
            let p = B.local m "p" and q = B.local m "q" in
            let v1 = B.local m "v1" and v2 = B.local m "v2" in
            B.newc m p "t.Data" [];
            B.move m q p;
            (* q.f read BEFORE the call: must stay silent *)
            B.load m v1 q ff;
            snk m ~tag:"k-before" v1;
            B.scall m "t.ActCall" "taintIt" [ B.v p ];
            (* q.f read AFTER the call: tainted via the alias *)
            B.load m v2 q ff;
            snk m ~tag:"k-after" v2);
      ]
  in
  check_flows "activation via the call tree" [ c ]
    [ ("t.ActCall", "main") ]
    [ ("s", "k-after") ]

let () =
  Alcotest.run "fd_core"
    [
      ( "access-paths",
        [
          Alcotest.test_case "basics" `Quick test_ap_basic;
          Alcotest.test_case "rebase" `Quick test_ap_rebase;
          Alcotest.test_case "truncation" `Quick test_ap_truncation;
        ] );
      ( "flows",
        [
          Alcotest.test_case "direct" `Quick test_direct_flow;
          Alcotest.test_case "no flow" `Quick test_no_flow;
          Alcotest.test_case "local strong update" `Quick test_local_strong_update;
          Alcotest.test_case "new kills" `Quick test_new_kills;
          Alcotest.test_case "no heap strong update" `Quick
            test_no_heap_strong_update;
          Alcotest.test_case "field sensitivity" `Quick test_field_sensitivity;
          Alcotest.test_case "whole object at sink" `Quick
            test_whole_object_at_sink;
          Alcotest.test_case "array whole-taint" `Quick test_array_whole_taint;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "return flow" `Quick test_return_flow;
          Alcotest.test_case "param flow" `Quick test_param_flow;
          Alcotest.test_case "context sensitivity" `Quick
            test_context_sensitivity_plain;
          Alcotest.test_case "static fields" `Quick test_static_field_flow;
          Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch_flow;
        ] );
      ( "paper-programs",
        [
          Alcotest.test_case "Listing 2 (context injection)" `Quick
            test_listing2_context_injection;
          Alcotest.test_case "Listing 2 naive ablation" `Quick
            test_listing2_naive_handover;
          Alcotest.test_case "Listing 3 (activation)" `Quick
            test_listing3_flow_sensitivity;
          Alcotest.test_case "Listing 3 Andromeda ablation" `Quick
            test_listing3_andromeda_style;
          Alcotest.test_case "Figure 2 (aliasing)" `Quick test_figure2_aliasing;
          Alcotest.test_case "alias search off" `Quick test_alias_search_off;
          Alcotest.test_case "activation through calls" `Quick
            test_activation_through_call;
        ] );
      ( "library-models",
        [
          Alcotest.test_case "StringBuilder" `Quick test_stringbuilder_wrapper;
          Alcotest.test_case "collections" `Quick test_collection_wrapper;
          Alcotest.test_case "arraycopy" `Quick test_arraycopy_native;
          Alcotest.test_case "sanitizing empty rule" `Quick test_sanitizing_rule;
        ] );
      ( "access-path-length",
        [
          Alcotest.test_case "deep chain at k=5" `Quick test_deep_chain_default_k;
          Alcotest.test_case "soundness at k=1" `Quick
            test_deep_chain_small_k_still_sound;
          Alcotest.test_case "precision loss at k=1" `Quick
            test_small_k_false_positive;
        ] );
      ( "reporting",
        [ Alcotest.test_case "path reconstruction" `Quick test_path_reconstruction ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rebase_roundtrip; prop_truncate_widens ] );
    ]
