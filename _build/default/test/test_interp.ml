(* Tests for the µJimple interpreter and the TaintDroid-sim dynamic
   analysis: concrete semantics, dynamic taint precision (where the
   static analysis over-approximates), coverage sensitivity, and the
   monitor-evasion behaviour from the paper's Section 7. *)

open Fd_ir
open Fd_interp
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

let load apk = Apk.load apk

let dynamic ?(coverage = Droid_runner.Thorough) apk =
  Droid_runner.findings (Droid_runner.run ~coverage (load apk))

let simple_activity name body =
  let cls = "dyn." ^ name in
  ( cls,
    Apk.make name
      ~manifest:(Apk.simple_manifest ~package:"dyn" [ (FW.Activity, cls, []) ])
      [
        B.cls cls ~super:"android.app.Activity"
          [
            B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                let this = B.this m in
                let _ = B.param m 0 "b" in
                body m this);
          ];
      ] )

let get_imei m ?(tag = "src") ret =
  let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
  B.newobj m tm "android.telephony.TelephonyManager";
  B.vcall m ~tag ~ret tm "android.telephony.TelephonyManager" "getDeviceId" []

let log_sink m ?(tag = "snk") v =
  B.scall m ~tag "android.util.Log" "i" [ B.s "t"; v ]

(* ---------------- concrete execution & propagation ---------------- *)

let test_direct_dynamic_leak () =
  let _, apk =
    simple_activity "Direct" (fun m _this ->
        let x = B.local m "x" in
        get_imei m x;
        log_sink m (B.v x))
  in
  Alcotest.(check (list (pair (option string) (option string))))
    "one dynamic leak"
    [ (Some "src", Some "snk") ]
    (dynamic apk)

let test_dynamic_strong_update () =
  (* overwritten local: the dynamic monitor correctly stays silent *)
  let _, apk =
    simple_activity "Strong" (fun m _this ->
        let x = B.local m "x" in
        get_imei m x;
        B.const m x (B.s "clean");
        log_sink m (B.v x))
  in
  Alcotest.(check int) "no leak after overwrite" 0 (List.length (dynamic apk))

let test_dynamic_array_precision () =
  (* the ArrayAccess trap: static reports, dynamic does not *)
  let _, apk =
    simple_activity "Arr" (fun m _this ->
        let arr = B.local m "arr" ~ty:(T.Array (T.Ref "java.lang.String")) in
        let x = B.local m "x" and y = B.local m "y" in
        B.newarray m arr (T.Ref "java.lang.String") (B.i 2);
        B.astore m arr (B.i 1) (B.s "clean");
        get_imei m x;
        B.astore m arr (B.i 0) (B.v x);
        B.aload m y arr (B.i 1);
        log_sink m (B.v y))
  in
  Alcotest.(check int) "per-cell precision: silent" 0 (List.length (dynamic apk))

let test_dynamic_heap_flow () =
  let cls = "dyn.Heap" in
  let f = B.fld cls "stash" in
  let apk =
    Apk.make "Heap"
      ~manifest:(Apk.simple_manifest ~package:"dyn" [ (FW.Activity, cls, []) ])
      [
        B.cls cls ~super:"android.app.Activity"
          ~fields:[ ("stash", T.Ref "java.lang.String") ]
          [
            B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                let this = B.this m in
                let _ = B.param m 0 "b" in
                let x = B.local m "x" in
                get_imei m x;
                B.store m this f (B.v x));
            B.meth "onDestroy" (fun m ->
                let this = B.this m in
                let y = B.local m "y" in
                B.load m y this f;
                log_sink m (B.v y));
          ];
      ]
  in
  (* the store happens in onCreate, the leak in onDestroy: found under
     thorough coverage, missed under basic *)
  Alcotest.(check int) "thorough finds it" 1 (List.length (dynamic apk));
  Alcotest.(check int) "basic misses it" 0
    (List.length (dynamic ~coverage:Droid_runner.Basic apk))

let test_dynamic_concrete_branching () =
  (* only the actually-executed branch leaks: 5 % 2 <> 0 selects the
     clean branch at runtime *)
  let _, apk =
    simple_activity "Branch" (fun m _this ->
        let x = B.local m "x" and y = B.local m "y" in
        let c = B.local m "c" ~ty:T.Int in
        get_imei m x;
        B.binop m c "%" (B.i 5) (B.i 2);
        B.ifgoto m (B.v c) Stmt.Cne (B.i 0) "clean";
        B.move m y x;
        B.goto m "send";
        B.label m "clean";
        B.const m y (B.s "benign");
        B.label m "send";
        log_sink m (B.v y))
  in
  Alcotest.(check int) "runtime path is the clean one" 0
    (List.length (dynamic apk))

let test_dynamic_stringbuilder () =
  let _, apk =
    simple_activity "Sb" (fun m _this ->
        let x = B.local m "x" and sb = B.local m "sb" and out = B.local m "out" in
        get_imei m x;
        B.newc m sb "java.lang.StringBuilder" [];
        B.vcall m sb "java.lang.StringBuilder" "append" [ B.s "id=" ];
        B.vcall m sb "java.lang.StringBuilder" "append" [ B.v x ];
        B.vcall m ~ret:out sb "java.lang.StringBuilder" "toString" [];
        log_sink m (B.v out))
  in
  Alcotest.(check int) "taint through the buffer" 1 (List.length (dynamic apk))

let test_dynamic_map_key_precision () =
  (* distinct map keys: static's whole-container model reports, the
     concrete map does not *)
  let _, apk =
    simple_activity "MapKeys" (fun m _this ->
        let h = B.local m "h" ~ty:(T.Ref "java.util.HashMap") in
        let x = B.local m "x" and z = B.local m "z" in
        B.newc m h "java.util.HashMap" [];
        get_imei m x;
        B.vcall m h "java.util.HashMap" "put" [ B.s "dirty"; B.v x ];
        B.vcall m h "java.util.HashMap" "put" [ B.s "clean"; B.s "ok" ];
        B.vcall m ~ret:z h "java.util.HashMap" "get" [ B.s "clean" ];
        log_sink m (B.v z))
  in
  Alcotest.(check int) "concrete keys: silent" 0 (List.length (dynamic apk))

let test_dynamic_intent_contents () =
  (* tainted extra inside an intent: the monitor inspects the parcel *)
  let _, apk =
    simple_activity "IntentSend" (fun m this ->
        let i = B.local m "i" ~ty:(T.Ref "android.content.Intent") in
        let x = B.local m "x" in
        B.newc m i "android.content.Intent" [];
        get_imei m x;
        B.vcall m i "android.content.Intent" "putExtra" [ B.s "id"; B.v x ];
        B.vcall m ~tag:"snk" this "android.app.Activity" "startActivity"
          [ B.v i ])
  in
  Alcotest.(check int) "deep labels at the send" 1 (List.length (dynamic apk))

let test_static_initializer_dynamic () =
  (* StaticInitialization1: the dynamic semantics run <clinit> at first
     use, so the leak is observed (the static analysis misses it) *)
  let cls = "dyn.ClinitApp" in
  let helper = "dyn.ClinitHelper" in
  let g = B.fld ~ty:(T.Ref "java.lang.String") cls "im" in
  let apk =
    Apk.make "ClinitApp"
      ~manifest:(Apk.simple_manifest ~package:"dyn" [ (FW.Activity, cls, []) ])
      [
        B.cls helper
          [
            B.meth "<clinit>" ~static:true (fun m ->
                let v = B.local m "v" in
                B.loadstatic m v g;
                log_sink m ~tag:"snk-clinit" (B.v v));
          ];
        B.cls cls ~super:"android.app.Activity"
          [
            B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                let _this = B.this m in
                let _ = B.param m 0 "b" in
                let x = B.local m "x" in
                let h = B.local m "h" ~ty:(T.Ref helper) in
                get_imei m x;
                B.storestatic m g (B.v x);
                B.newobj m h helper);
          ];
      ]
  in
  Alcotest.(check (list (pair (option string) (option string))))
    "clinit-at-first-use observes the leak"
    [ (Some "src", Some "snk-clinit") ]
    (dynamic apk)

(* ---------------- the evasion demo (Section 7) ---------------- *)

let evasive_apk () =
  (* malware that probes for the monitor and stays clean when watched:
     the dynamic analysis sees nothing, the static analysis explores
     both branches and reports the leak *)
  let cls = "dyn.Evasive" in
  let apk =
    Apk.make "Evasive"
      ~manifest:(Apk.simple_manifest ~package:"dyn" [ (FW.Activity, cls, []) ])
      [
        B.cls cls ~super:"android.app.Activity"
          [
            B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                let _this = B.this m in
                let _ = B.param m 0 "b" in
                let probe = B.local m "probe" ~ty:T.Int in
                let x = B.local m "x" in
                B.scall m ~ret:probe "android.os.Debug" "isDebuggerConnected" [];
                B.ifgoto m (B.v probe) Stmt.Cne (B.i 0) "quiet";
                get_imei m x;
                log_sink m (B.v x);
                B.label m "quiet";
                B.ret m);
          ];
      ]
  in
  apk

let test_evasion () =
  let apk = evasive_apk () in
  (* the dynamic monitor is detected: no leak observed *)
  Alcotest.(check int) "dynamic sees nothing (evaded)" 0
    (List.length (dynamic apk));
  (* the static analysis covers both branches *)
  let result = Fd_core.Infoflow.analyze_apk apk in
  Alcotest.(check int) "static still reports the leak" 1
    (List.length result.Fd_core.Infoflow.r_findings)

(* ---------------- suite-level regression ---------------- *)

let test_dynamic_suite_totals () =
  let t = Fd_eval.Dynamic_table.run () in
  let stp, sfp, sfn = Fd_eval.Dynamic_table.totals (fun r -> r.Fd_eval.Dynamic_table.dr_static) t in
  let btp, bfp, _ = Fd_eval.Dynamic_table.totals (fun r -> r.Fd_eval.Dynamic_table.dr_basic) t in
  let ttp, tfp, tfn = Fd_eval.Dynamic_table.totals (fun r -> r.Fd_eval.Dynamic_table.dr_thorough) t in
  Alcotest.(check (list int)) "static 26/4/2" [ 26; 4; 2 ] [ stp; sfp; sfn ];
  (* the dynamic monitor never false-alarms *)
  Alcotest.(check int) "basic: zero FPs" 0 bfp;
  Alcotest.(check int) "thorough: zero FPs" 0 tfp;
  (* coverage is the bottleneck *)
  Alcotest.(check bool) "basic recall far below static" true (btp * 2 < stp * 2 - 10);
  Alcotest.(check (list int)) "thorough 27/0/1" [ 27; 0; 1 ] [ ttp; tfp; tfn ]

let test_budget_exhaustion () =
  (* a diverging loop hits the step budget instead of hanging *)
  let cls = "dyn.Spin" in
  let apk =
    Apk.make "Spin"
      ~manifest:(Apk.simple_manifest ~package:"dyn" [ (FW.Activity, cls, []) ])
      [
        B.cls cls ~super:"android.app.Activity"
          [
            B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
                let _this = B.this m in
                let _ = B.param m 0 "b" in
                B.label m "spin";
                B.nop m;
                B.goto m "spin");
          ];
      ]
  in
  let leaks = Droid_runner.run ~max_steps:10_000 (load apk) in
  Alcotest.(check int) "terminates with no leaks" 0 (List.length leaks)

(* extension features: the dynamic driver fires async tasks and
   fragment lifecycles under thorough coverage *)
let test_dynamic_extension_features () =
  List.iter
    (fun name ->
      let app = Option.get (Fd_droidbench.Suite.find name) in
      let fs = dynamic app.Fd_droidbench.Bench_app.app_apk in
      Alcotest.(check int) (name ^ " observed dynamically") 1 (List.length fs))
    [ "AsyncTask1"; "FragmentLifecycle1" ]

(* ---------------- plain programs (SecuriBench-style) -------------- *)

let securibench_dynamic name =
  let case =
    List.find
      (fun c -> c.Fd_securibench.Sb_case.sb_name = name)
      Fd_securibench.Sb_suite.all
  in
  let defs =
    Fd_frontend.Sourcesink.of_string
      Fd_securibench.Sb_case.sources_sinks_config
  in
  Droid_runner.findings
    (Droid_runner.run_plain ~classes:case.Fd_securibench.Sb_case.sb_classes
       ~entries:case.Fd_securibench.Sb_case.sb_entries ~defs ())

let test_plain_dynamic_basic () =
  Alcotest.(check (list (pair (option string) (option string))))
    "Basic1 observed dynamically"
    [ (Some "s", Some "k") ]
    (securibench_dynamic "Basic1")

let test_plain_dynamic_array_precision () =
  (* Arrays1 statically reports 1 TP + 1 FP (whole-array); the monitor
     sees only the real leak *)
  Alcotest.(check (list (pair (option string) (option string))))
    "Arrays1: only the true leak"
    [ (Some "s", Some "k") ]
    (securibench_dynamic "Arrays1")

let test_plain_dynamic_strong_updates () =
  Alcotest.(check int) "StrongUpdates1 silent" 0
    (List.length (securibench_dynamic "StrongUpdates1"))

let () =
  Alcotest.run "fd_interp"
    [
      ( "semantics",
        [
          Alcotest.test_case "direct leak" `Quick test_direct_dynamic_leak;
          Alcotest.test_case "strong update" `Quick test_dynamic_strong_update;
          Alcotest.test_case "array precision" `Quick test_dynamic_array_precision;
          Alcotest.test_case "heap flow across lifecycle" `Quick
            test_dynamic_heap_flow;
          Alcotest.test_case "concrete branching" `Quick
            test_dynamic_concrete_branching;
          Alcotest.test_case "string builder" `Quick test_dynamic_stringbuilder;
          Alcotest.test_case "map key precision" `Quick
            test_dynamic_map_key_precision;
          Alcotest.test_case "intent contents" `Quick test_dynamic_intent_contents;
          Alcotest.test_case "clinit at first use" `Quick
            test_static_initializer_dynamic;
          Alcotest.test_case "budget" `Quick test_budget_exhaustion;
        ] );
      ( "tradeoffs",
        [
          Alcotest.test_case "monitor evasion" `Quick test_evasion;
          Alcotest.test_case "DroidBench totals" `Slow test_dynamic_suite_totals;
          Alcotest.test_case "extension features" `Quick
            test_dynamic_extension_features;
        ] );
      ( "plain-programs",
        [
          Alcotest.test_case "securibench Basic1" `Quick test_plain_dynamic_basic;
          Alcotest.test_case "array precision" `Quick
            test_plain_dynamic_array_precision;
          Alcotest.test_case "strong updates" `Quick
            test_plain_dynamic_strong_updates;
        ] );
    ]
