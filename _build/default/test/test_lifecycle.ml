(* Tests for the lifecycle model: lifecycle method tables, dummy-main
   generation across component kinds, and callback discovery edge
   cases. *)

open Fd_ir
open Fd_lifecycle
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let dummy_main_text loaded =
  let ccs = Callbacks.discover_all loaded in
  let _entry = Dummy_main.generate loaded.Apk.scene ccs in
  let dc = Option.get (Scene.find_class loaded.Apk.scene "dummyMainClass") in
  let dm = Option.get (Jclass.find_method_named dc "dummyMain") in
  Pretty.body_to_string (Option.get dm.Jclass.jm_body)

let load_app name comps classes =
  Apk.load
    (Apk.make name ~manifest:(Apk.simple_manifest ~package:"t" comps) classes)

(* ---------------- lifecycle tables ---------------- *)

let test_lifecycle_tables () =
  Alcotest.(check int) "activity methods" 7
    (List.length (Lifecycle.methods_of FW.Activity));
  Alcotest.(check int) "receiver methods" 1
    (List.length (Lifecycle.methods_of FW.Receiver));
  Alcotest.(check bool) "onCreate has a Bundle param" true
    (Lifecycle.activity_create.Lifecycle.lc_params
    = [ T.Ref "android.os.Bundle" ])

let test_implemented_filtering () =
  let scene = FW.fresh_scene () in
  Scene.add_class scene
    (B.cls "t.A" ~super:"android.app.Activity"
       [
         B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
             let _ = B.this m in
             B.ret m);
         B.meth "onPause" (fun m ->
             let _ = B.this m in
             B.ret m);
       ]);
  let impl = Lifecycle.implemented_methods scene "t.A" FW.Activity in
  Alcotest.(check (list string)) "only implemented methods"
    [ "onCreate"; "onPause" ]
    (List.map (fun (_, m) -> m.Jclass.jm_sig.T.m_name) impl
    |> List.sort compare)

(* ---------------- dummy mains per component kind ---------------- *)

let test_service_dummy_main () =
  let svc =
    B.cls "t.Svc" ~super:"android.app.Service"
      [
        B.meth "onCreate" (fun m -> let _ = B.this m in B.ret m);
        B.meth "onStartCommand"
          ~params:[ T.Ref "android.content.Intent"; T.Int; T.Int ] ~ret:T.Int
          (fun m ->
            let _ = B.this m in
            let r = B.local m "r" ~ty:T.Int in
            B.const m r (B.i 0);
            B.retv m (B.v r));
        B.meth "onDestroy" (fun m -> let _ = B.this m in B.ret m);
      ]
  in
  let loaded = load_app "SvcApp" [ (FW.Service, "t.Svc", []) ] [ svc ] in
  let text = dummy_main_text loaded in
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " called") true (contains text s))
    [ "onCreate"; "onStartCommand"; "onDestroy" ];
  Alcotest.(check bool) "unimplemented onBind absent" false
    (contains text "onBind")

let test_provider_dummy_main () =
  let prov =
    B.cls "t.Prov" ~super:"android.content.ContentProvider"
      [
        B.meth "onCreate" (fun m -> let _ = B.this m in B.ret m);
        B.meth "query" ~params:[ T.Ref "android.net.Uri" ]
          ~ret:(T.Ref "java.lang.Object") (fun m ->
            let _ = B.this m in
            let r = B.local m "r" in
            B.const m r B.nul |> ignore;
            B.retv m (B.v r));
      ]
  in
  let loaded = load_app "ProvApp" [ (FW.Provider, "t.Prov", []) ] [ prov ] in
  let text = dummy_main_text loaded in
  Alcotest.(check bool) "query offered" true (contains text "query");
  Alcotest.(check bool) "unimplemented insert absent" false
    (contains text "insert")

let test_multi_component_ordering () =
  (* two components: both sections exist and loop back to the main
     dispatcher, modelling arbitrary sequential order with repetition *)
  let a =
    B.cls "t.A1" ~super:"android.app.Activity"
      [ B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let _ = B.this m in
            B.ret m) ]
  in
  let b =
    B.cls "t.A2" ~super:"android.app.Activity"
      [ B.meth "onResume" (fun m -> let _ = B.this m in B.ret m) ]
  in
  let loaded =
    load_app "TwoApp"
      [ (FW.Activity, "t.A1", []); (FW.Activity, "t.A2", []) ]
      [ a; b ]
  in
  let text = dummy_main_text loaded in
  Alcotest.(check bool) "A1 present" true (contains text "t.A1");
  Alcotest.(check bool) "A2 present" true (contains text "t.A2");
  (* repetition: the printed body has backward gotos (the dispatcher
     loop); the textual labels are positional L<n> *)
  Alcotest.(check bool) "dispatcher loop (goto back-edges)" true
    (contains text "goto L")

(* ---------------- callback discovery ---------------- *)

let test_transitive_callback_registration () =
  (* a callback handler registers another callback: the fixed point
     must discover both *)
  let act = "t.ChainAct" in
  let l1 = "t.Listener1" in
  let l2 = "t.Listener2" in
  let mk_listener name ~registers =
    B.cls name ~interfaces:[ "android.view.View$OnClickListener" ]
      [
        B.meth "<init>" ~params:[ T.Ref act ] (fun m ->
            let _ = B.this m in
            let _ = B.param m 0 "o" in
            B.ret m);
        B.meth "onClick" ~params:[ T.Ref "android.view.View" ] (fun m ->
            let _this = B.this m in
            let v = B.param m 0 "v" in
            match registers with
            | Some next ->
                let l = B.local m "l" ~ty:(T.Ref next) in
                B.newc m l next [ B.nul ];
                B.vcall m v "android.view.View" "setOnClickListener" [ B.v l ]
            | None -> ());
      ]
  in
  let activity =
    B.cls act ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let btn = B.local m "btn" ~ty:(T.Ref "android.widget.Button") in
            let l = B.local m "l" ~ty:(T.Ref l1) in
            B.vcall m ~ret:btn this "android.app.Activity" "findViewById"
              [ B.i 1 ];
            B.newc m l l1 [ B.v this ];
            B.vcall m btn "android.widget.Button" "setOnClickListener" [ B.v l ]);
      ]
  in
  let loaded =
    load_app "ChainApp"
      [ (FW.Activity, act, []) ]
      [ activity; mk_listener l1 ~registers:(Some l2);
        mk_listener l2 ~registers:None ]
  in
  let ccs = Callbacks.discover_all loaded in
  let cbs =
    (List.hd ccs).Callbacks.cc_callbacks
    |> List.map (fun cb -> cb.Callbacks.cb_class)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "both listeners found" [ l1; l2 ] cbs

let test_callbacks_have_kinds () =
  let act = "t.KindsAct" in
  let layout = {|<LinearLayout><Button android:onClick="handleIt"/></LinearLayout>|} in
  let activity =
    B.cls act ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            B.vcall m this "android.app.Activity" "setContentView"
              [ B.i Fd_frontend.Layout.layout_id_base ]);
        B.meth "handleIt" ~params:[ T.Ref "android.view.View" ] (fun m ->
            let _ = B.this m in
            let _ = B.param m 0 "v" in
            B.ret m);
        B.meth "onBackPressed" (fun m -> let _ = B.this m in B.ret m);
      ]
  in
  let loaded =
    Apk.load
      (Apk.make "KindsApp"
         ~manifest:(Apk.simple_manifest ~package:"t" [ (FW.Activity, act, []) ])
         ~layouts:[ ("main", layout) ]
         [ activity ])
  in
  let ccs = Callbacks.discover_all loaded in
  let kinds =
    (List.hd ccs).Callbacks.cc_callbacks
    |> List.map (fun cb ->
           ( cb.Callbacks.cb_method.Jclass.jm_sig.T.m_name,
             match cb.Callbacks.cb_kind with
             | Callbacks.Xml_declared -> "xml"
             | Callbacks.Overridden -> "override"
             | Callbacks.Registered _ -> "registered" ))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string string)))
    "kinds recorded"
    [ ("handleIt", "xml"); ("onBackPressed", "override") ]
    kinds

let test_plain_dummy_main () =
  (* the non-Android entry-point creator used for SecuriBench *)
  let scene = FW.fresh_scene () in
  Scene.add_class scene
    (B.cls "t.S1"
       [
         B.meth "doGet" ~params:[ T.Ref "a.Req"; T.Ref "a.Out" ] (fun m ->
             let _ = B.this m in
             let _ = B.param m 0 "req" in
             let _ = B.param m 1 "out" in
             B.ret m);
         B.meth "helper" ~static:true (fun m -> B.ret m);
       ]);
  let entry =
    Dummy_main.generate_plain scene
      [
        Fd_callgraph.Mkey.{ mk_class = "t.S1"; mk_name = "doGet"; mk_arity = 2 };
        Fd_callgraph.Mkey.{ mk_class = "t.S1"; mk_name = "helper"; mk_arity = 0 };
      ]
  in
  let cg = Fd_callgraph.Callgraph.build scene ~entry:[ entry ] () in
  Alcotest.(check bool) "instance entry reachable" true
    (Fd_callgraph.Callgraph.is_reachable cg
       Fd_callgraph.Mkey.{ mk_class = "t.S1"; mk_name = "doGet"; mk_arity = 2 });
  Alcotest.(check bool) "static entry reachable" true
    (Fd_callgraph.Callgraph.is_reachable cg
       Fd_callgraph.Mkey.{ mk_class = "t.S1"; mk_name = "helper"; mk_arity = 0 })

let () =
  Alcotest.run "fd_lifecycle"
    [
      ( "tables",
        [
          Alcotest.test_case "method tables" `Quick test_lifecycle_tables;
          Alcotest.test_case "implemented filtering" `Quick
            test_implemented_filtering;
        ] );
      ( "dummy-main",
        [
          Alcotest.test_case "service" `Quick test_service_dummy_main;
          Alcotest.test_case "provider" `Quick test_provider_dummy_main;
          Alcotest.test_case "multi-component" `Quick
            test_multi_component_ordering;
          Alcotest.test_case "plain entry-point creator" `Quick
            test_plain_dummy_main;
        ] );
      ( "callbacks",
        [
          Alcotest.test_case "transitive registration" `Quick
            test_transitive_callback_registration;
          Alcotest.test_case "callback kinds" `Quick test_callbacks_have_kinds;
        ] );
    ]
