(* Tests for the evaluation harness: scoring, the SecuriBench-µ
   reproduction totals (Table 2), µInsecureBank (RQ2) and the corpus
   generator (RQ3). *)

module Scoring = Fd_eval.Scoring

(* ---------------- scoring ---------------- *)

let test_score_exact_match () =
  let v =
    Scoring.score
      ~expected:[ (Some "s", "k") ]
      ~findings:[ (Some "s", Some "k") ]
  in
  Alcotest.(check (list int)) "1/0/0" [ 1; 0; 0 ] [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

let test_score_wildcard_source () =
  let v =
    Scoring.score ~expected:[ (None, "k") ] ~findings:[ (Some "any", Some "k") ]
  in
  Alcotest.(check int) "wildcard matches" 1 v.Scoring.tp

let test_score_fp_and_fn () =
  let v =
    Scoring.score
      ~expected:[ (Some "s1", "k1"); (Some "s2", "k2") ]
      ~findings:[ (Some "s1", Some "k1"); (Some "x", Some "kx") ]
  in
  Alcotest.(check (list int)) "1 tp, 1 fp, 1 fn" [ 1; 1; 1 ]
    [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

let test_score_no_double_match () =
  (* two identical findings cannot both match one expectation *)
  let v =
    Scoring.score
      ~expected:[ (Some "s", "k") ]
      ~findings:[ (Some "s", Some "k"); (Some "s", Some "k") ]
  in
  Alcotest.(check (list int)) "second is spurious" [ 1; 1; 0 ]
    [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

let test_score_wrong_source () =
  let v =
    Scoring.score
      ~expected:[ (Some "s", "k") ]
      ~findings:[ (Some "other", Some "k") ]
  in
  Alcotest.(check (list int)) "wrong source is fp+fn" [ 0; 1; 1 ]
    [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

let test_markers () =
  let v =
    Scoring.score
      ~expected:[ (Some "s", "k"); (Some "s2", "k2") ]
      ~findings:[ (Some "s", Some "k"); (Some "x", Some "y") ]
  in
  Alcotest.(check string) "marker string" "\xe2\x97\x8f \xe2\x9c\xb1 \xe2\x97\x8b"
    (Scoring.markers v)

(* ---------------- Table 2 regression ---------------- *)

let test_securibench_totals () =
  let t = Fd_eval.Securibench_table.run () in
  let found, expected, fp = Fd_eval.Securibench_table.totals t in
  Alcotest.(check int) "expected 121 (Table 2)" 121 expected;
  Alcotest.(check int) "found 117 (Table 2)" 117 found;
  Alcotest.(check int) "9 false positives (Table 2)" 9 fp;
  (* per-group shape *)
  List.iter
    (fun (g, e_tp, e_exp, e_fp) ->
      let gr =
        List.find
          (fun r -> r.Fd_eval.Securibench_table.gr_group = g)
          t.Fd_eval.Securibench_table.group_results
      in
      Alcotest.(check (list int))
        (g ^ " group")
        [ e_tp; e_exp; e_fp ]
        [
          gr.Fd_eval.Securibench_table.gr_tp;
          gr.Fd_eval.Securibench_table.gr_expected;
          gr.Fd_eval.Securibench_table.gr_fp;
        ])
    [
      ("Aliasing", 11, 11, 0);
      ("Arrays", 9, 9, 6);
      ("Basic", 58, 60, 0);
      ("Collections", 14, 14, 3);
      ("Datastructure", 5, 5, 0);
      ("Factory", 3, 3, 0);
      ("Inter", 14, 16, 0);
      ("Session", 3, 3, 0);
      ("StrongUpdates", 0, 0, 0);
    ]

let test_securibench_na_groups () =
  let t = Fd_eval.Securibench_table.run () in
  List.iter
    (fun g ->
      let gr =
        List.find
          (fun r -> r.Fd_eval.Securibench_table.gr_group = g)
          t.Fd_eval.Securibench_table.group_results
      in
      Alcotest.(check bool) (g ^ " is n/a") true gr.Fd_eval.Securibench_table.gr_na)
    [ "Pred"; "Reflection"; "Sanitizer" ]

(* ---------------- RQ2 regression ---------------- *)

let test_insecurebank () =
  let result = Fd_core.Infoflow.analyze_apk Fd_appgen.Insecurebank.apk in
  let findings = Fd_eval.Engines.findings_of_result result in
  let v =
    Scoring.score ~expected:Fd_appgen.Insecurebank.expected_leaks ~findings
  in
  Alcotest.(check (list int)) "7/0/0 (paper: all seven leaks, no FP/FN)"
    [ 7; 0; 0 ]
    [ v.Scoring.tp; v.Scoring.fp; v.Scoring.fn ]

(* ---------------- RQ3 / generator ---------------- *)

let test_generator_determinism () =
  let a1 = Fd_appgen.Generator.generate ~profile:Fd_appgen.Generator.Malware ~seed:7 3 in
  let a2 = Fd_appgen.Generator.generate ~profile:Fd_appgen.Generator.Malware ~seed:7 3 in
  Alcotest.(check string) "same name" a1.Fd_appgen.Generator.ga_name
    a2.Fd_appgen.Generator.ga_name;
  Alcotest.(check int) "same class count" a1.Fd_appgen.Generator.ga_classes
    a2.Fd_appgen.Generator.ga_classes;
  Alcotest.(check int) "same planted leaks"
    (List.length a1.Fd_appgen.Generator.ga_expected)
    (List.length a2.Fd_appgen.Generator.ga_expected);
  let a3 = Fd_appgen.Generator.generate ~profile:Fd_appgen.Generator.Malware ~seed:8 3 in
  Alcotest.(check bool) "different seed differs somewhere" true
    (a3.Fd_appgen.Generator.ga_classes <> a1.Fd_appgen.Generator.ga_classes
    || List.length a3.Fd_appgen.Generator.ga_expected
       <> List.length a1.Fd_appgen.Generator.ga_expected
    || a3.Fd_appgen.Generator.ga_apk <> a1.Fd_appgen.Generator.ga_apk)

let test_generated_apps_load () =
  (* every generated app must pass frontend validation *)
  List.iter
    (fun profile ->
      List.iter
        (fun (ga : Fd_appgen.Generator.gen_app) ->
          ignore (Fd_frontend.Apk.load ga.Fd_appgen.Generator.ga_apk))
        (Fd_appgen.Generator.corpus ~profile ~seed:99 10))
    [ Fd_appgen.Generator.Play; Fd_appgen.Generator.Malware ]

let test_corpus_recall () =
  (* the engine must recover every planted leak (they are all explicit
     flows through modelled constructs) *)
  let t =
    Fd_eval.Corpus.run ~profile:Fd_appgen.Generator.Malware ~seed:1234 ~n:30 ()
  in
  let s = Fd_eval.Corpus.summarize t in
  Alcotest.(check (float 0.001)) "100% recall on planted leaks" 1.0
    s.Fd_eval.Corpus.s_recall

let test_corpus_leak_rate () =
  (* malware profile targets the paper's 1.85 leaks/app average *)
  let apps =
    Fd_appgen.Generator.corpus ~profile:Fd_appgen.Generator.Malware ~seed:5 300
  in
  let total =
    List.fold_left
      (fun acc (a : Fd_appgen.Generator.gen_app) ->
        acc + List.length a.Fd_appgen.Generator.ga_expected)
      0 apps
  in
  let mean = float_of_int total /. 300.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f in [1.5, 2.2]" mean)
    true
    (mean > 1.5 && mean < 2.2)

let test_profiles_differ_in_size () =
  let avg profile =
    let apps = Fd_appgen.Generator.corpus ~profile ~seed:77 20 in
    List.fold_left
      (fun a (g : Fd_appgen.Generator.gen_app) ->
        a + g.Fd_appgen.Generator.ga_classes)
      0 apps
    / 20
  in
  Alcotest.(check bool) "play apps larger than malware apps" true
    (avg Fd_appgen.Generator.Play > avg Fd_appgen.Generator.Malware)

(* ---------------- XML report ---------------- *)

let test_xml_report () =
  let result = Fd_core.Infoflow.analyze_apk Fd_appgen.Insecurebank.apk in
  let xml = Fd_core.Report.to_xml_string result in
  (* the emitted document parses with our own XML parser *)
  let doc = Fd_xml.Xml.parse_string xml in
  Alcotest.(check string) "root" "DataFlowResults" (Fd_xml.Xml.tag doc);
  let results = Fd_xml.Xml.descendants_named doc "Result" in
  Alcotest.(check int) "7 results" 7 (List.length results);
  (* every result has a sink and at least one source with a path *)
  List.iter
    (fun r ->
      Alcotest.(check int) "one sink" 1
        (List.length (Fd_xml.Xml.children_named r "Sink"));
      let sources = Fd_xml.Xml.descendants_named r "Source" in
      Alcotest.(check bool) "has source" true (sources <> []);
      Alcotest.(check bool) "has path elements" true
        (Fd_xml.Xml.descendants_named r "PathElement" <> []))
    results;
  (* performance data present *)
  Alcotest.(check bool) "perf entries" true
    (List.length (Fd_xml.Xml.descendants_named doc "PerformanceEntry") >= 3);
  (* summary line mentions the flow count *)
  let sum = Fd_core.Report.summary result in
  Alcotest.(check bool) "summary mentions 7" true
    (let re = "7 flow(s)" in
     String.length sum >= String.length re
     && String.sub sum 0 (String.length re) = re)

let () =
  Alcotest.run "fd_eval"
    [
      ( "scoring",
        [
          Alcotest.test_case "exact match" `Quick test_score_exact_match;
          Alcotest.test_case "wildcard source" `Quick test_score_wildcard_source;
          Alcotest.test_case "fp and fn" `Quick test_score_fp_and_fn;
          Alcotest.test_case "no double match" `Quick test_score_no_double_match;
          Alcotest.test_case "wrong source" `Quick test_score_wrong_source;
          Alcotest.test_case "markers" `Quick test_markers;
        ] );
      ( "securibench",
        [
          Alcotest.test_case "Table 2 totals" `Slow test_securibench_totals;
          Alcotest.test_case "n/a groups" `Quick test_securibench_na_groups;
        ] );
      ( "insecurebank",
        [ Alcotest.test_case "RQ2: 7/7" `Quick test_insecurebank ] );
      ( "report",
        [ Alcotest.test_case "XML output" `Quick test_xml_report ] );
      ( "corpus",
        [
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "generated apps load" `Quick test_generated_apps_load;
          Alcotest.test_case "planted-leak recall" `Slow test_corpus_recall;
          Alcotest.test_case "malware leak rate" `Quick test_corpus_leak_rate;
          Alcotest.test_case "profile sizes" `Quick test_profiles_differ_in_size;
        ] );
    ]
