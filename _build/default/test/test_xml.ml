(* Tests for the XML substrate (Fd_xml.Xml). *)

module X = Fd_xml.Xml

let parse = X.parse_string

let test_simple_element () =
  match parse "<a/>" with
  | X.Element ("a", [], []) -> ()
  | _ -> Alcotest.fail "expected <a/>"

let test_attrs () =
  let e = parse {|<activity android:name=".Main" enabled="true"/>|} in
  Alcotest.(check (option string)) "name" (Some ".Main") (X.attr e "android:name");
  Alcotest.(check (option string)) "enabled" (Some "true") (X.attr e "enabled");
  Alcotest.(check (option string)) "absent" None (X.attr e "exported");
  Alcotest.(check string) "default" "false" (X.attr_dflt e "exported" ~default:"false")

let test_single_quotes () =
  let e = parse "<e a='x y'/>" in
  Alcotest.(check (option string)) "single-quoted" (Some "x y") (X.attr e "a")

let test_nested () =
  let e = parse "<m><application><activity/><service/></application></m>" in
  let app = List.hd (X.children_named e "application") in
  Alcotest.(check int) "two components" 2 (List.length (X.children app));
  Alcotest.(check int) "one activity" 1 (List.length (X.children_named app "activity"))

let test_text () =
  let e = parse "<t>hello <b>world</b> tail</t>" in
  Alcotest.(check string) "direct text" "hello  tail" (X.text e)

let test_entities () =
  let e = parse {|<t a="a&amp;b&lt;c&gt;d&quot;e&apos;f">x &amp; y</t>|} in
  Alcotest.(check (option string)) "attr entities" (Some "a&b<c>d\"e'f") (X.attr e "a");
  Alcotest.(check string) "text entities" "x & y" (X.text e)

let test_char_refs () =
  let e = parse "<t>&#65;&#x42;</t>" in
  Alcotest.(check string) "numeric refs" "AB" (X.text e)

let test_prolog_and_comments () =
  let src =
    {|<?xml version="1.0" encoding="utf-8"?>
<!-- manifest for the test app -->
<manifest package="com.example">
  <!-- inner comment -->
  <application/>
</manifest>|}
  in
  let e = parse src in
  Alcotest.(check string) "root tag" "manifest" (X.tag e);
  Alcotest.(check int) "one child" 1 (List.length (X.children e))

let test_cdata () =
  let e = parse "<t><![CDATA[<not-xml> & raw]]></t>" in
  Alcotest.(check string) "cdata text" "<not-xml> & raw" (X.text e)

let test_descendants () =
  let e =
    parse
      "<LinearLayout><LinearLayout><EditText id='a'/></LinearLayout><EditText \
       id='b'/></LinearLayout>"
  in
  let ds = X.descendants_named e "EditText" in
  Alcotest.(check (list (option string)))
    "both edit texts, document order"
    [ Some "a"; Some "b" ]
    (List.map (fun d -> X.attr d "id") ds)

let check_parse_error src =
  match parse src with
  | exception X.Parse_error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" src)

let test_errors () =
  List.iter check_parse_error
    [
      "";
      "<a>";
      "<a></b>";
      "<a";
      "<a b=c/>";
      "<a b='x/>";
      "<a/><b/>";
      "<a>&unknown;</a>";
      "<a><!-- unterminated</a>";
      "text only";
    ]

let test_android_manifest_shape () =
  (* representative of the manifests the frontend will consume *)
  let src =
    {|<?xml version="1.0"?>
<manifest package="de.ecspride">
  <application android:label="LeakageApp">
    <activity android:name="de.ecspride.LeakageApp">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <service android:name="de.ecspride.BgService" android:enabled="false"/>
  </application>
</manifest>|}
  in
  let m = parse src in
  let app = List.hd (X.children_named m "application") in
  let acts = X.children_named app "activity" in
  let svcs = X.children_named app "service" in
  Alcotest.(check int) "1 activity" 1 (List.length acts);
  Alcotest.(check (option string))
    "service disabled" (Some "false")
    (X.attr (List.hd svcs) "android:enabled");
  let filters = X.descendants_named m "action" in
  Alcotest.(check (option string))
    "main action"
    (Some "android.intent.action.MAIN")
    (X.attr (List.hd filters) "android:name")

(* round-trip property: to_string then parse_string preserves structure
   (modulo whitespace-only text nodes, which our generator avoids). *)

let gen_xml : X.t QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "view"; "activity"; "item" ] in
  let attr_val =
    oneofl [ "x"; "hello world"; "a&b"; "<tag>"; "it's"; "\"q\"" ]
  in
  let attrs =
    list_size (int_bound 3)
      (pair (oneofl [ "k"; "android:name"; "id" ]) attr_val)
    >|= fun kvs ->
    (* attribute names must be unique within an element *)
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs
  in
  fix
    (fun self depth ->
      if depth = 0 then
        map2 (fun n a -> X.Element (n, a, [])) name attrs
      else
        map3
          (fun n a kids -> X.Element (n, a, kids))
          name attrs
          (list_size (int_bound 3) (self (depth - 1))))
    2

let arb_xml = QCheck.make ~print:X.to_string gen_xml

let prop_roundtrip =
  QCheck.Test.make ~name:"to_string/parse_string round-trip" ~count:300 arb_xml
    (fun e -> parse (X.to_string e) = e)

let () =
  Alcotest.run "fd_xml"
    [
      ( "parse",
        [
          Alcotest.test_case "simple" `Quick test_simple_element;
          Alcotest.test_case "attributes" `Quick test_attrs;
          Alcotest.test_case "single quotes" `Quick test_single_quotes;
          Alcotest.test_case "nesting" `Quick test_nested;
          Alcotest.test_case "text" `Quick test_text;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "char refs" `Quick test_char_refs;
          Alcotest.test_case "prolog+comments" `Quick test_prolog_and_comments;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "android manifest shape" `Quick
            test_android_manifest_shape;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
