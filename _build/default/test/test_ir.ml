(* Tests for the µJimple IR: types, bodies/CFG, scene & hierarchy,
   builder DSL, pretty-printer and textual parser round-trip. *)

open Fd_ir
module T = Types
module S = Stmt
module B = Build

(* ---------------- types ---------------- *)

let test_typ_string_roundtrip () =
  let cases =
    [ "void"; "boolean"; "char"; "int"; "long"; "float"; "double";
      "java.lang.String"; "int[]"; "java.lang.Object[][]" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) s s (T.string_of_typ (T.typ_of_string s)))
    cases

let test_typ_equal () =
  Alcotest.(check bool) "ref eq" true (T.equal_typ (T.Ref "a.B") (T.Ref "a.B"));
  Alcotest.(check bool) "ref ne" false (T.equal_typ (T.Ref "a.B") (T.Ref "a.C"));
  Alcotest.(check bool) "array" true
    (T.equal_typ (T.Array T.Int) (T.Array T.Int));
  Alcotest.(check bool) "array ne" false (T.equal_typ (T.Array T.Int) T.Int)

let test_method_sig_string () =
  let m = T.mk_method ~params:[ T.Int; T.Ref "java.lang.String" ] ~ret:T.Void
      "a.B" "foo" in
  Alcotest.(check string) "jimple style"
    "<a.B: void foo(int,java.lang.String)>"
    (T.string_of_method_sig m)

(* ---------------- builder & body ---------------- *)

let simple_class () =
  B.cls "t.Simple"
    [
      B.meth "run" (fun m ->
          let this = B.this m in
          let x = B.local m "x" in
          let y = B.local m "y" in
          B.const m x (B.i 1);
          B.label m "loop";
          B.binop m y "+" (B.v x) (B.i 1);
          B.ifgoto m (B.v y) S.Clt (B.i 10) "loop";
          B.vcall m this "t.Simple" "helper" [ B.v y ]);
    ]

let body_of cls name =
  match Jclass.find_method_named cls name with
  | Some m -> Option.get m.Jclass.jm_body
  | None -> Alcotest.fail ("method not found: " ^ name)

let test_builder_basic () =
  let c = simple_class () in
  let b = body_of c "run" in
  (* this-identity, x=1, y=x+1, if, call, auto return *)
  Alcotest.(check int) "6 statements" 6 (Body.length b);
  (match (Body.stmt b 0).S.s_kind with
  | S.Identity (_, S.Ithis "t.Simple") -> ()
  | _ -> Alcotest.fail "expected @this identity first");
  match (Body.stmt b 5).S.s_kind with
  | S.Return None -> ()
  | _ -> Alcotest.fail "expected auto-appended return"

let test_cfg_succs_preds () =
  let c = simple_class () in
  let b = body_of c "run" in
  (* stmt 3 is the conditional: succs are fall-through 4 and target 2 *)
  Alcotest.(check (list int)) "if succs" [ 4; 2 ] (Body.succs b 3);
  Alcotest.(check (list int)) "loop head preds" [ 1; 3 ] (Body.preds b 2);
  Alcotest.(check (list int)) "return succs" [] (Body.succs b 5)

let test_label_resolution_error () =
  Alcotest.check_raises "undefined label"
    (B.Build_error "undefined label \"nowhere\"") (fun () ->
      ignore
        (B.cls "t.Bad" [ B.meth "m" (fun m -> B.goto m "nowhere") ]))

let test_duplicate_label_error () =
  Alcotest.check_raises "duplicate label"
    (B.Build_error "duplicate label \"l\"") (fun () ->
      ignore
        (B.cls "t.Bad2"
           [
             B.meth "m" (fun m ->
                 B.label m "l";
                 B.nop m;
                 B.label m "l";
                 B.nop m;
                 B.goto m "l");
           ]))

let test_local_interning () =
  let c =
    B.cls "t.Intern"
      [
        B.meth "m" (fun m ->
            let a = B.local m "v" in
            let b = B.local m "v" in
            Alcotest.(check bool) "same local" true (a == b);
            B.const m a (B.i 0));
      ]
  in
  let b = body_of c "m" in
  Alcotest.(check int) "one local" 1 (List.length b.Body.locals)

let test_goto_no_auto_return () =
  (* a body ending in goto back into itself must not get an extra
     return *)
  let c =
    B.cls "t.Loop"
      [
        B.meth "m" (fun m ->
            B.label m "top";
            B.nop m;
            B.goto m "top");
      ]
  in
  let b = body_of c "m" in
  Alcotest.(check int) "2 stmts" 2 (Body.length b)

let test_exit_stmts () =
  let c =
    B.cls "t.Exits"
      [
        B.meth "m" (fun m ->
            let x = B.local m "x" in
            B.const m x (B.i 0);
            B.ifgoto m (B.v x) S.Ceq (B.i 0) "out";
            B.retv m (B.v x);
            B.label m "out";
            B.ret m);
      ]
  in
  let b = body_of c "m" in
  Alcotest.(check (list int)) "two exits" [ 2; 3 ] (Body.exit_stmts b)

let test_find_tagged () =
  let c =
    B.cls "t.Tagged"
      [
        B.meth "m" (fun m ->
            let x = B.local m "x" in
            B.const m ~tag:"src" x (B.s "secret");
            B.scall m ~tag:"sink" "t.Sink" "leak" [ B.v x ]);
      ]
  in
  let b = body_of c "m" in
  Alcotest.(check int) "one src" 1 (List.length (Body.find_tagged b "src"));
  Alcotest.(check int) "one sink" 1 (List.length (Body.find_tagged b "sink"));
  Alcotest.(check int) "none" 0 (List.length (Body.find_tagged b "zzz"))

let test_uses_local () =
  let c =
    B.cls "t.Uses"
      [
        B.meth "m" (fun m ->
            let x = B.local m "x" and y = B.local m "y" in
            B.const m x (B.i 1);
            B.move m y x;
            B.store m y (B.fld "t.Uses" "f") (B.v x));
      ]
  in
  let b = body_of c "m" in
  let x = S.mk_local "x" and y = S.mk_local "y" in
  Alcotest.(check bool) "x=1 doesn't use x" false (Body.uses_local (Body.stmt b 0) x);
  Alcotest.(check bool) "y=x uses x" true (Body.uses_local (Body.stmt b 1) x);
  Alcotest.(check bool) "y.f=x uses both" true
    (Body.uses_local (Body.stmt b 2) x && Body.uses_local (Body.stmt b 2) y)

(* ---------------- scene & hierarchy ---------------- *)

let hierarchy_scene () =
  let sc = Scene.create () in
  Scene.add_class sc (Jclass.mk "java.lang.Object" ~super:None);
  Scene.add_class sc
    (B.iface "t.Listener" [ B.abstract_meth "onEvent" ~params:[ T.Int ] ]);
  Scene.add_class sc (B.cls "t.Base" [ B.meth "m" (fun m -> B.ret m) ]);
  Scene.add_class sc
    (B.cls "t.Mid" ~super:"t.Base" ~interfaces:[ "t.Listener" ]
       [ B.meth "onEvent" ~params:[ T.Int ] (fun m -> B.ret m) ]);
  Scene.add_class sc
    (B.cls "t.Leaf" ~super:"t.Mid" [ B.meth "m" (fun m -> B.ret m) ]);
  sc

let test_subtyping () =
  let sc = hierarchy_scene () in
  Alcotest.(check bool) "leaf <: base" true (Scene.is_subtype sc "t.Leaf" "t.Base");
  Alcotest.(check bool) "leaf <: listener (via mid)" true
    (Scene.is_subtype sc "t.Leaf" "t.Listener");
  Alcotest.(check bool) "base not <: mid" false
    (Scene.is_subtype sc "t.Base" "t.Mid");
  Alcotest.(check bool) "anything <: Object" true
    (Scene.is_subtype sc "t.Base" "java.lang.Object");
  Alcotest.(check bool) "reflexive" true (Scene.is_subtype sc "t.Mid" "t.Mid")

let test_phantom_resolve () =
  let sc = hierarchy_scene () in
  let c = Scene.resolve sc "android.app.Activity" in
  Alcotest.(check bool) "phantom" true c.Jclass.c_phantom;
  Alcotest.(check bool) "now registered" true (Scene.mem sc "android.app.Activity");
  Alcotest.(check bool) "phantom <: Object" true
    (Scene.is_subtype sc "android.app.Activity" "java.lang.Object")

let test_dispatch () =
  let sc = hierarchy_scene () in
  (* m declared on Base, overridden on Leaf: call with static type Base
     can dispatch to Base.m (for Base/Mid receivers) or Leaf.m *)
  let targets = Scene.dispatch_targets sc ~static_type:"t.Base" ("m", []) in
  let names =
    List.sort compare
      (List.map (fun ((c : Jclass.t), _) -> c.Jclass.c_name) targets)
  in
  Alcotest.(check (list string)) "CHA targets" [ "t.Base"; "t.Leaf" ] names;
  (* dispatch on the interface type reaches the implementor *)
  let tgts2 =
    Scene.dispatch_targets sc ~static_type:"t.Listener" ("onEvent", [ T.Int ])
  in
  Alcotest.(check (list string)) "interface dispatch" [ "t.Mid" ]
    (List.map (fun ((c : Jclass.t), _) -> c.Jclass.c_name) tgts2)

let test_resolve_concrete_inherited () =
  let sc = hierarchy_scene () in
  (* Mid inherits m from Base *)
  match Scene.resolve_concrete sc "t.Mid" ("m", []) with
  | Some (c, _) -> Alcotest.(check string) "declared on Base" "t.Base" c.Jclass.c_name
  | None -> Alcotest.fail "resolution failed"

let test_duplicate_class () =
  let sc = hierarchy_scene () in
  Alcotest.check_raises "duplicate" (Scene.Duplicate_class "t.Base") (fun () ->
      Scene.add_class sc (B.cls "t.Base" []))

let test_superclasses_chain () =
  let sc = hierarchy_scene () in
  Alcotest.(check (list string)) "chain"
    [ "t.Mid"; "t.Base"; "java.lang.Object" ]
    (Scene.superclasses sc "t.Leaf")

(* ---------------- pretty / parser round-trip ---------------- *)

let leakage_like () =
  let user_t = T.Ref "de.User" in
  B.cls "de.LeakageApp" ~super:"android.app.Activity"
    ~fields:[ ("user", user_t) ]
    [
      B.meth "onRestart" (fun m ->
          let this = B.this m in
          let et = B.local m "et" ~ty:(T.Ref "android.widget.EditText") in
          let pwd = B.local m "pwd" in
          let u = B.local m "u" ~ty:user_t in
          B.vcall m ~ret:et this "android.app.Activity" "findViewById"
            [ B.i 42 ];
          B.vcall m ~ret:pwd et "android.widget.EditText" "toString" [];
          B.ifgoto m (B.v pwd) S.Ceq B.nul "out";
          B.newc m u "de.User" [ B.v pwd ];
          B.store m this (B.fld "de.LeakageApp" "user") (B.v u);
          B.label m "out";
          B.ret m);
      B.meth "sendMessage" ~params:[ T.Ref "android.view.View" ] (fun m ->
          let this = B.this m in
          let _view = B.param m 0 "view" in
          let u = B.local m "u" in
          let p = B.local m "p" in
          let sms = B.local m "sms" in
          let obf = B.local m "obf" in
          B.load m u this (B.fld "de.LeakageApp" "user");
          B.ifgoto m (B.v u) S.Ceq B.nul "out";
          B.vcall m ~ret:p u "de.User" "getPassword" [];
          B.const m obf (B.s "");
          B.label m "loop";
          B.binop m obf "+" (B.v obf) (B.v p);
          B.ifgoto m (B.v obf) S.Cne B.nul "loop";
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:"sms-sink" sms "android.telephony.SmsManager"
            "sendTextMessage"
            [ B.s "+44 020"; B.nul; B.v obf; B.nul; B.nul ];
          B.label m "out";
          B.ret m);
      B.native_meth "nativeHelper" ~params:[ T.Ref "java.lang.Object" ]
        ~ret:(T.Ref "java.lang.Object");
    ]

let norm_class (c : Jclass.t) = Pretty.class_to_string c

let test_roundtrip_leakage () =
  let c = leakage_like () in
  let printed = Pretty.class_to_string c in
  match Parser.parse_string printed with
  | [ c2 ] ->
      Alcotest.(check string) "round-trip stable" printed (norm_class c2)
  | cs -> Alcotest.fail (Printf.sprintf "expected 1 class, got %d" (List.length cs))

let test_parse_handwritten () =
  let src =
    {|
// a hand-written µJimple unit
class t.Handwritten extends java.lang.Object implements t.I {
  field data : java.lang.String;
  static method void main() {
    local o : t.Handwritten;
    local s : java.lang.String;
    local arr : int[];
    o = new t.Handwritten;
    specialinvoke o.t.Handwritten#<init>();
    s = staticinvoke t.Source#secret() @"src";
    o.t.Handwritten#data = s;
    s = o.t.Handwritten#data;
    arr = newarray int[10];
    arr[0] = 5;
    static t.G#cache = s;
    s = static t.G#cache;
   top:
    if s == null goto done;
    staticinvoke t.Sink#leak(s) @"snk";
    goto top;
   done:
    return;
  }
}
interface t.I {
  abstract method void poke(int);
}
|}
  in
  match Parser.parse_string src with
  | [ c; i ] ->
      Alcotest.(check string) "class name" "t.Handwritten" c.Jclass.c_name;
      Alcotest.(check bool) "interface flag" true i.Jclass.c_is_interface;
      Alcotest.(check (list string)) "implements" [ "t.I" ] c.Jclass.c_interfaces;
      let m = Option.get (Jclass.find_method_named c "main") in
      Alcotest.(check bool) "static" true m.Jclass.jm_static;
      let b = Option.get m.Jclass.jm_body in
      (* tags survived *)
      Alcotest.(check int) "src tag" 1 (List.length (Body.find_tagged b "src"));
      Alcotest.(check int) "snk tag" 1 (List.length (Body.find_tagged b "snk"));
      (* parse -> print -> parse is stable *)
      let p1 = Pretty.class_to_string c in
      (match Parser.parse_string p1 with
      | [ c2 ] -> Alcotest.(check string) "stable" p1 (Pretty.class_to_string c2)
      | _ -> Alcotest.fail "re-parse failed")
  | cs -> Alcotest.fail (Printf.sprintf "expected 2 classes, got %d" (List.length cs))

let test_parse_errors () =
  let bad =
    [
      "class {";
      "class A extends {";
      "class A { field x }";
      "class A { method void m() { x = ; } }";
      "class A { method void m() { goto missing; } }";
      "class A { method void m() { if x == goto l; } }";
      "klass A {}";
    ]
  in
  List.iter
    (fun src ->
      match Parser.parse_string src with
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected parse error on %S" src))
    bad

let test_parse_comments_and_ops () =
  let src =
    {|
class t.Ops {
  method int f(int, int) {
    local a : int; local b : int; local c : int;
    a := @parameter0;
    b := @parameter1;
    /* block comment */
    c = a + b;
    c = a - b;
    c = a * b;
    c = c << a;
    c = neg c;
    if a < b goto l;
    if a >= b goto l;
   l:
    return c;
  }
}
|}
  in
  match Parser.parse_string src with
  | [ c ] ->
      let m = Option.get (Jclass.find_method_named c "f") in
      let b = Option.get m.Jclass.jm_body in
      Alcotest.(check int) "stmt count" 10 (Body.length b);
      let p = Pretty.class_to_string c in
      (match Parser.parse_string p with
      | [ c2 ] -> Alcotest.(check string) "stable" p (Pretty.class_to_string c2)
      | _ -> Alcotest.fail "re-parse failed")
  | _ -> Alcotest.fail "parse failed"

(* property: every DSL-built random straight-line body round-trips *)

let gen_prog : Jclass.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 12 in
  let* ops = list_size (return n) (int_bound 6) in
  return
    (B.cls "t.Rand"
       [
         B.meth "m" (fun m ->
             let x = B.local m "x" and y = B.local m "y" in
             B.const m x (B.i 0);
             B.const m y (B.s "s");
             List.iter
               (fun op ->
                 match op with
                 | 0 -> B.move m x y
                 | 1 -> B.binop m x "+" (B.v x) (B.v y)
                 | 2 -> B.store m x (B.fld "t.Rand" "f") (B.v y)
                 | 3 -> B.load m y x (B.fld "t.Rand" "f")
                 | 4 -> B.scall m ~ret:y "t.Lib" "id" [ B.v x ]
                 | 5 -> B.newc m x "t.Rand" []
                 | _ -> B.cast m y (T.Ref "java.lang.String") (B.v x))
               ops);
       ])

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"pretty/parse round-trip (random programs)" ~count:100
    (QCheck.make ~print:Pretty.class_to_string gen_prog) (fun c ->
      let p = Pretty.class_to_string c in
      match Parser.parse_string p with
      | [ c2 ] -> Pretty.class_to_string c2 = p
      | _ -> false)

(* fuzz: arbitrary input never crashes the textual frontend with
   anything other than its declared exceptions *)
let prop_parser_total =
  QCheck.Test.make ~name:"parser is total (errors are Parse/Lex_error)"
    ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 200) QCheck.Gen.printable)
    (fun src ->
      match Parser.parse_string src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

(* fuzz around valid programs: mutate a printed class by deleting a
   random slice; must never crash with an unexpected exception *)
let prop_parser_mutation =
  QCheck.Test.make ~name:"parser survives mutations of valid programs"
    ~count:300
    QCheck.(pair (int_bound 1000) (pair small_nat small_nat))
    (fun (seed, (ofs, len)) ->
      ignore seed;
      let valid = Pretty.class_to_string (simple_class ()) in
      let n = String.length valid in
      let ofs = ofs mod n in
      let len = min len (n - ofs) in
      let mutated =
        String.sub valid 0 ofs ^ String.sub valid (ofs + len) (n - ofs - len)
      in
      match Parser.parse_string mutated with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

let prop_body_succs_in_range =
  QCheck.Test.make ~name:"all successors are valid indices" ~count:100
    (QCheck.make ~print:Pretty.class_to_string gen_prog) (fun c ->
      List.for_all
        (fun (m : Jclass.jmethod) ->
          match m.Jclass.jm_body with
          | None -> true
          | Some b ->
              let ok = ref true in
              Body.iter b (fun s ->
                  List.iter
                    (fun j -> if j < 0 || j >= Body.length b then ok := false)
                    (Body.succs b s.S.s_idx));
              !ok)
        c.Jclass.c_methods)

let () =
  Alcotest.run "fd_ir"
    [
      ( "types",
        [
          Alcotest.test_case "string round-trip" `Quick test_typ_string_roundtrip;
          Alcotest.test_case "equality" `Quick test_typ_equal;
          Alcotest.test_case "method sig printing" `Quick test_method_sig_string;
        ] );
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "cfg succs/preds" `Quick test_cfg_succs_preds;
          Alcotest.test_case "undefined label" `Quick test_label_resolution_error;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label_error;
          Alcotest.test_case "local interning" `Quick test_local_interning;
          Alcotest.test_case "no auto-return after goto" `Quick
            test_goto_no_auto_return;
          Alcotest.test_case "exit stmts" `Quick test_exit_stmts;
          Alcotest.test_case "tags" `Quick test_find_tagged;
          Alcotest.test_case "uses_local" `Quick test_uses_local;
        ] );
      ( "scene",
        [
          Alcotest.test_case "subtyping" `Quick test_subtyping;
          Alcotest.test_case "phantoms" `Quick test_phantom_resolve;
          Alcotest.test_case "CHA dispatch" `Quick test_dispatch;
          Alcotest.test_case "inherited resolution" `Quick
            test_resolve_concrete_inherited;
          Alcotest.test_case "duplicate class" `Quick test_duplicate_class;
          Alcotest.test_case "superclass chain" `Quick test_superclasses_chain;
        ] );
      ( "text",
        [
          Alcotest.test_case "round-trip LeakageApp" `Quick test_roundtrip_leakage;
          Alcotest.test_case "hand-written unit" `Quick test_parse_handwritten;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments and operators" `Quick
            test_parse_comments_and_ops;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_print_parse_roundtrip; prop_body_succs_in_range;
            prop_parser_total; prop_parser_mutation ] );
    ]
