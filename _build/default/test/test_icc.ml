(* Tests for the EPICC-lite ICC resolution extension (Fd_core.Icc):
   intent-target resolution and end-to-end flow composition. *)

open Fd_ir
open Fd_core
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

let intent_t = T.Ref "android.content.Intent"

(* sender activity: IMEI into an explicit intent to Receiver, started;
   receiver activity: reads the extra and logs it *)
let app ~explicit ~receiver_logs =
  let send_cls = "icc.Sender" in
  let recv_cls = "icc.Receiver" in
  let sender =
    B.cls send_cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let imei = B.local m "imei" in
            let tm =
              B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager")
            in
            B.newobj m i "android.content.Intent";
            (if explicit then
               B.spcall m i "android.content.Intent" "<init>"
                 [ Stmt.Iconst (Stmt.CClassRef recv_cls) ]
             else begin
               B.spcall m i "android.content.Intent" "<init>" [];
               B.vcall m i "android.content.Intent" "setAction"
                 [ B.s "icc.action.SHOW" ]
             end);
            B.newobj m tm "android.telephony.TelephonyManager";
            B.vcall m ~tag:"src-imei" ~ret:imei tm
              "android.telephony.TelephonyManager" "getDeviceId" [];
            B.vcall m i "android.content.Intent" "putExtra"
              [ B.s "id"; B.v imei ];
            B.vcall m ~tag:"sink-send" this "android.app.Activity"
              "startActivity" [ B.v i ]);
      ]
  in
  let receiver =
    B.cls recv_cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let s = B.local m "s" in
            B.vcall m ~ret:i this "android.app.Activity" "getIntent" [];
            B.vcall m ~tag:"src-extra" ~ret:s i "android.content.Intent"
              "getStringExtra" [ B.s "id" ];
            if receiver_logs then
              B.scall m ~tag:"sink-log" "android.util.Log" "i"
                [ B.s "rx"; B.v s ]
            else begin
              let tv = B.local m "tv" ~ty:(T.Ref "android.widget.TextView") in
              B.vcall m ~ret:tv this "android.app.Activity" "findViewById"
                [ B.i 3 ];
              B.vcall m tv "android.widget.TextView" "setText" [ B.v s ]
            end);
      ]
  in
  let manifest =
    Printf.sprintf
      {|<manifest package="icc">
  <application>
    <activity android:name="icc.Sender">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <activity android:name="icc.Receiver">
      <intent-filter>
        <action android:name="icc.action.SHOW"/>
      </intent-filter>
    </activity>
  </application>
</manifest>|}
  in
  Apk.make "IccApp" ~manifest [ sender; receiver ]

let run_with_icc apk =
  let loaded = Apk.load apk in
  let result = Infoflow.analyze_loaded loaded in
  let composed =
    Icc.compose ~icfg:result.Infoflow.r_icfg
      ~scene:loaded.Apk.scene ~manifest:loaded.Apk.manifest
      result.Infoflow.r_findings
  in
  (result, composed)

let test_explicit_intent_composition () =
  let _, composed = run_with_icc (app ~explicit:true ~receiver_logs:true) in
  match composed with
  | [ c ] ->
      Alcotest.(check string) "resolved target" "icc.Receiver"
        c.Icc.comp_target;
      Alcotest.(check (option string)) "original source"
        (Some "src-imei") c.Icc.comp_source.Taint.si_tag;
      Alcotest.(check (option string)) "transitive sink"
        (Some "sink-log") c.Icc.comp_sink_tag;
      Alcotest.(check bool) "path spans both components" true
        (List.length c.Icc.comp_path > 3)
  | cs ->
      Alcotest.fail
        (Printf.sprintf "expected exactly 1 composed flow, got %d"
           (List.length cs))

let test_action_intent_composition () =
  let _, composed = run_with_icc (app ~explicit:false ~receiver_logs:true) in
  Alcotest.(check int) "implicit action resolved" 1 (List.length composed);
  Alcotest.(check string) "target via intent filter" "icc.Receiver"
    (List.hd composed).Icc.comp_target

let test_no_receiving_sink_no_composition () =
  (* the receiver only displays the value: nothing composes *)
  let _, composed = run_with_icc (app ~explicit:true ~receiver_logs:false) in
  Alcotest.(check int) "no composed flow" 0 (List.length composed)

let test_composed_as_findings () =
  let _, composed = run_with_icc (app ~explicit:true ~receiver_logs:true) in
  let fds = Icc.composed_to_findings composed in
  Alcotest.(check int) "one finding view" 1 (List.length fds);
  let fd = List.hd fds in
  Alcotest.(check bool) "keeps original source" true
    (fd.Bidi.f_source.Taint.si_tag = Some "src-imei")

let test_unresolvable_target_ignored () =
  (* an intent whose target class is outside the app composes with
     nothing (it still shows up as the over-approximate send-sink
     finding) *)
  let cls = "icc.External" in
  let sender =
    B.cls cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let imei = B.local m "imei" in
            let tm =
              B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager")
            in
            B.newobj m i "android.content.Intent";
            B.spcall m i "android.content.Intent" "<init>"
              [ Stmt.Iconst (Stmt.CClassRef "other.app.Activity") ];
            B.newobj m tm "android.telephony.TelephonyManager";
            B.vcall m ~tag:"src" ~ret:imei tm
              "android.telephony.TelephonyManager" "getDeviceId" [];
            B.vcall m i "android.content.Intent" "putExtra" [ B.s "x"; B.v imei ];
            B.vcall m ~tag:"sink-send" this "android.app.Activity"
              "startActivity" [ B.v i ]);
      ]
  in
  let apk =
    Apk.make "ExtApp"
      ~manifest:(Apk.simple_manifest ~package:"icc" [ (FW.Activity, cls, []) ])
      [ sender ]
  in
  let result, composed = run_with_icc apk in
  Alcotest.(check int) "no composition" 0 (List.length composed);
  Alcotest.(check bool) "raw send finding kept" true
    (List.exists
       (fun (fd : Bidi.finding) -> fd.Bidi.f_sink_tag = Some "sink-send")
       result.Infoflow.r_findings)

let () =
  Alcotest.run "fd_icc"
    [
      ( "composition",
        [
          Alcotest.test_case "explicit intent" `Quick
            test_explicit_intent_composition;
          Alcotest.test_case "implicit action" `Quick
            test_action_intent_composition;
          Alcotest.test_case "no receiving sink" `Quick
            test_no_receiving_sink_no_composition;
          Alcotest.test_case "findings view" `Quick test_composed_as_findings;
          Alcotest.test_case "external target" `Quick
            test_unresolvable_target_ignored;
        ] );
    ]
