(* Edge-case tests for the bidirectional solver: recursion carrying
   taint, taint through overridden methods on [this], multiple sources
   into one sink, aliasing through recursion, and solver termination
   on pathological shapes. *)

open Fd_ir
open Fd_core
module B = Build
module T = Types
module SS = Fd_frontend.Sourcesink

let test_defs =
  SS.create
    [
      SS.Return_source { cls = "t.Source"; mname = "secret"; cat = SS.Generic };
      SS.Sink { cls = "t.Sink"; mname = "leak"; cat = SS.Generic };
    ]

let analyze ?config classes entries =
  Infoflow.analyze_plain ?config ~classes
    ~entries:
      (List.map
         (fun (c, m) ->
           Fd_callgraph.Mkey.{ mk_class = c; mk_name = m; mk_arity = 0 })
         entries)
    ~defs:test_defs ()

let flow_pairs (r : Infoflow.result) =
  List.map
    (fun (fd : Bidi.finding) ->
      ( Option.value fd.Bidi.f_source.Taint.si_tag ~default:"?",
        Option.value fd.Bidi.f_sink_tag ~default:"?" ))
    r.Infoflow.r_findings
  |> List.sort_uniq compare

let check ?config name classes entries expected =
  Alcotest.(check (list (pair string string)))
    name
    (List.sort_uniq compare expected)
    (flow_pairs (analyze ?config classes entries))

let src m ?tag x = B.scall m ?tag ~ret:x "t.Source" "secret" []
let snk m ?tag x = B.scall m ?tag "t.Sink" "leak" [ B.v x ]

(* taint carried through direct recursion on the heap *)
let test_recursive_heap_taint () =
  let node = "t.RNode" in
  let fv = B.fld node "v" in
  let fn = B.fld ~ty:(T.Ref node) node "next" in
  let c =
    B.cls "t.Rec"
      [
        (* walk to the end of a chain and read the value *)
        B.meth "last" ~static:true ~params:[ T.Ref node ]
          ~ret:(T.Ref "java.lang.String") (fun m ->
            let p = B.param m 0 "p" in
            let nxt = B.local m "nxt" ~ty:(T.Ref node) in
            let r = B.local m "r" in
            B.load m nxt p fn;
            B.ifgoto m (B.v nxt) Stmt.Ceq B.nul "base";
            B.scall m ~ret:r "t.Rec" "last" [ B.v nxt ];
            B.retv m (B.v r);
            B.label m "base";
            B.load m r p fv;
            B.retv m (B.v r));
        B.meth "main" ~static:true (fun m ->
            let a = B.local m "a" and b = B.local m "b" and cl = B.local m "c" in
            let x = B.local m "x" and out = B.local m "out" in
            B.newobj m a node;
            B.newobj m b node;
            B.newobj m cl node;
            B.store m a fn (B.v b);
            B.store m b fn (B.v cl);
            src m ~tag:"s" x;
            B.store m cl fv (B.v x);
            B.scall m ~ret:out "t.Rec" "last" [ B.v a ];
            snk m ~tag:"k" out);
      ]
  in
  check "recursion over the heap" [ B.cls "t.RNode" ~fields:[ ("v", T.Ref "java.lang.String"); ("next", T.Ref node) ] []; c ]
    [ ("t.Rec", "main") ]
    [ ("s", "k") ]

(* taint staged in [this] across an override chain *)
let test_this_through_overrides () =
  let base = "t.OBase" in
  let sub = "t.OSub" in
  let f = B.fld base "stash" in
  let classes =
    [
      B.cls base
        ~fields:[ ("stash", T.Ref "java.lang.String") ]
        [
          B.meth "put" ~params:[ T.Ref "java.lang.String" ] (fun m ->
              let this = B.this m in
              let p = B.param m 0 "p" in
              B.store m this f (B.v p));
          B.meth "get" ~ret:(T.Ref "java.lang.String") (fun m ->
              let this = B.this m in
              let r = B.local m "r" in
              B.load m r this f;
              B.retv m (B.v r));
        ];
      B.cls sub ~super:base
        [
          (* the override decorates but still stages through super's
             field via a super call *)
          B.meth "put" ~params:[ T.Ref "java.lang.String" ] (fun m ->
              let this = B.this m in
              let p = B.param m 0 "p" in
              let d = B.local m "d" in
              B.binop m d "+" (B.s ">") (B.v p);
              B.spcall m this base "put" [ B.v d ]);
        ];
      B.cls "t.OMain"
        [
          B.meth "main" ~static:true (fun m ->
              let o = B.local m "o" ~ty:(T.Ref base) in
              let x = B.local m "x" and out = B.local m "out" in
              B.newc m o sub [];
              src m ~tag:"s" x;
              B.vcall m o base "put" [ B.v x ];
              B.vcall m ~ret:out o base "get" [];
              snk m ~tag:"k" out);
        ];
    ]
  in
  check "this-field through override + super call" classes
    [ ("t.OMain", "main") ]
    [ ("s", "k") ]

(* two distinct sources reaching the same sink produce two findings *)
let test_two_sources_one_sink () =
  let c =
    B.cls "t.Two"
      [
        B.meth "main" ~static:true (fun m ->
            let a = B.local m "a" and b = B.local m "b" and j = B.local m "j" in
            src m ~tag:"s1" a;
            src m ~tag:"s2" b;
            B.binop m j "+" (B.v a) (B.v b);
            snk m ~tag:"k" j);
      ]
  in
  check "two sources, one sink" [ c ] [ ("t.Two", "main") ]
    [ ("s1", "k"); ("s2", "k") ]

(* mutually recursive methods exchanging the taint *)
let test_mutual_recursion () =
  let c =
    B.cls "t.Mut"
      [
        B.meth "ping" ~static:true ~params:[ T.Ref "java.lang.String"; T.Int ]
          ~ret:(T.Ref "java.lang.String") (fun m ->
            let p = B.param m 0 "p" in
            let n = B.param m 1 "n" in
            let r = B.local m "r" in
            B.ifgoto m (B.v n) Stmt.Cle (B.i 0) "base";
            let n' = B.local m "n2" ~ty:T.Int in
            B.binop m n' "-" (B.v n) (B.i 1);
            B.scall m ~ret:r "t.Mut" "pong" [ B.v p; B.v n' ];
            B.retv m (B.v r);
            B.label m "base";
            B.retv m (B.v p));
        B.meth "pong" ~static:true ~params:[ T.Ref "java.lang.String"; T.Int ]
          ~ret:(T.Ref "java.lang.String") (fun m ->
            let p = B.param m 0 "p" in
            let n = B.param m 1 "n" in
            let r = B.local m "r" in
            B.scall m ~ret:r "t.Mut" "ping" [ B.v p; B.v n ];
            B.retv m (B.v r));
        B.meth "main" ~static:true (fun m ->
            let x = B.local m "x" and out = B.local m "out" in
            src m ~tag:"s" x;
            B.scall m ~ret:out "t.Mut" "ping" [ B.v x; B.i 5 ];
            snk m ~tag:"k" out);
      ]
  in
  check "mutual recursion" [ c ] [ ("t.Mut", "main") ] [ ("s", "k") ]

(* the alias of an alias: x -> y -> z chains through two heap cells *)
let test_alias_of_alias () =
  let node = "t.ANode" in
  let f = B.fld node "f" in
  let c =
    B.cls "t.AA"
      [
        B.meth "main" ~static:true (fun m ->
            let o = B.local m "o" in
            let p = B.local m "p" and q = B.local m "q" in
            let x = B.local m "x" and out = B.local m "out" in
            B.newobj m o node;
            B.move m p o;
            B.move m q p;
            src m ~tag:"s" x;
            B.store m o f (B.v x);
            B.load m out q f;
            snk m ~tag:"k" out);
      ]
  in
  check "alias chains" [ B.cls node ~fields:[ ("f", T.Ref "java.lang.Object") ] []; c ]
    [ ("t.AA", "main") ]
    [ ("s", "k") ]

(* a sink receiving an untainted sibling while the tainted value flows
   elsewhere: no cross-contamination between findings *)
let test_no_cross_contamination () =
  let c =
    B.cls "t.NC"
      [
        B.meth "main" ~static:true (fun m ->
            let a = B.local m "a" and b = B.local m "b" in
            src m ~tag:"s" a;
            B.const m b (B.s "benign");
            snk m ~tag:"k-clean" b;
            snk m ~tag:"k-dirty" a);
      ]
  in
  check "no cross contamination" [ c ] [ ("t.NC", "main") ]
    [ ("s", "k-dirty") ]

(* a long linear pipeline: solver terminates quickly and keeps the
   taint end to end *)
let test_long_pipeline () =
  let n = 40 in
  let meths =
    List.init n (fun i ->
        B.meth
          (Printf.sprintf "step%d" i)
          ~static:true
          ~params:[ T.Ref "java.lang.String" ]
          ~ret:(T.Ref "java.lang.String")
          (fun m ->
            let p = B.param m 0 "p" in
            if i + 1 < n then begin
              let r = B.local m "r" in
              B.scall m ~ret:r "t.Pipe" (Printf.sprintf "step%d" (i + 1))
                [ B.v p ];
              B.retv m (B.v r)
            end
            else B.retv m (B.v p)))
  in
  let c =
    B.cls "t.Pipe"
      (meths
      @ [
          B.meth "main" ~static:true (fun m ->
              let x = B.local m "x" and out = B.local m "out" in
              src m ~tag:"s" x;
              B.scall m ~ret:out "t.Pipe" "step0" [ B.v x ];
              snk m ~tag:"k" out);
        ])
  in
  let r = analyze [ c ] [ ("t.Pipe", "main") ] in
  Alcotest.(check (list (pair string string))) "taint survives 40 hops"
    [ ("s", "k") ]
    (flow_pairs r);
  Alcotest.(check bool) "bounded work" true
    (r.Infoflow.r_stats.Infoflow.st_propagations < 100_000)

let () =
  Alcotest.run "fd_bidi_edge"
    [
      ( "edge-cases",
        [
          Alcotest.test_case "recursive heap taint" `Quick
            test_recursive_heap_taint;
          Alcotest.test_case "override + super" `Quick test_this_through_overrides;
          Alcotest.test_case "two sources" `Quick test_two_sources_one_sink;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
          Alcotest.test_case "alias of alias" `Quick test_alias_of_alias;
          Alcotest.test_case "no cross contamination" `Quick
            test_no_cross_contamination;
          Alcotest.test_case "long pipeline" `Quick test_long_pipeline;
        ] );
    ]
