(* Tests for call-graph construction (CHA and RTA) and the ICFG. *)

open Fd_ir
open Fd_callgraph
module B = Build
module T = Types

let mk cls name = Mkey.{ mk_class = cls; mk_name = name; mk_arity = 0 }

(* a small hierarchy with a virtual call whose receiver is only ever a
   Sub at runtime *)
let scene_with_dispatch () =
  let sc = Scene.create () in
  Scene.add_class sc (Jclass.mk T.object_class ~super:None);
  Scene.add_class sc
    (B.cls "t.Base"
       [ B.meth "m" (fun m -> let _ = B.this m in B.ret m) ]);
  Scene.add_class sc
    (B.cls "t.Sub" ~super:"t.Base"
       [ B.meth "m" (fun m -> let _ = B.this m in B.ret m) ]);
  Scene.add_class sc
    (B.cls "t.Other" ~super:"t.Base"
       [ B.meth "m" (fun m -> let _ = B.this m in B.ret m) ]);
  Scene.add_class sc
    (B.cls "t.Main"
       [
         B.meth "main" ~static:true (fun m ->
             let o = B.local m "o" ~ty:(T.Ref "t.Base") in
             B.newc m o "t.Sub" [];
             B.vcall m o "t.Base" "m" []);
       ]);
  sc

let target_names cg caller idx =
  Callgraph.callees cg caller idx
  |> List.map (fun k -> k.Mkey.mk_class)
  |> List.sort compare

let test_cha_dispatch () =
  let sc = scene_with_dispatch () in
  let cg = Callgraph.build sc ~entry:[ mk "t.Main" "main" ] () in
  (* CHA: all overrides in the cone, including the never-instantiated
     t.Other *)
  Alcotest.(check (list string))
    "CHA targets"
    [ "t.Base"; "t.Other"; "t.Sub" ]
    (target_names cg (mk "t.Main" "main") 2)

let test_rta_dispatch () =
  let sc = scene_with_dispatch () in
  let cg =
    Callgraph.build sc ~entry:[ mk "t.Main" "main" ] ~algorithm:Callgraph.Rta ()
  in
  (* RTA: only t.Sub is instantiated, so t.Other.m is not a target;
     t.Base.m is unreachable too since no Base instance exists *)
  Alcotest.(check (list string))
    "RTA targets" [ "t.Sub" ]
    (target_names cg (mk "t.Main" "main") 2)

let test_rta_subset_of_cha () =
  let sc = scene_with_dispatch () in
  let cha = Callgraph.build sc ~entry:[ mk "t.Main" "main" ] () in
  let rta =
    Callgraph.build sc ~entry:[ mk "t.Main" "main" ] ~algorithm:Callgraph.Rta ()
  in
  Alcotest.(check bool) "RTA edges <= CHA edges" true
    (Callgraph.edge_count rta <= Callgraph.edge_count cha)

let test_reachability () =
  let sc = scene_with_dispatch () in
  Scene.add_class sc
    (B.cls "t.Dead"
       [ B.meth "never" ~static:true (fun m -> B.ret m) ]);
  let cg = Callgraph.build sc ~entry:[ mk "t.Main" "main" ] () in
  Alcotest.(check bool) "main reachable" true
    (Callgraph.is_reachable cg (mk "t.Main" "main"));
  Alcotest.(check bool) "override reachable" true
    (Callgraph.is_reachable cg (mk "t.Sub" "m"));
  Alcotest.(check bool) "dead not reachable" false
    (Callgraph.is_reachable cg (mk "t.Dead" "never"))

let test_callers () =
  let sc = scene_with_dispatch () in
  let cg = Callgraph.build sc ~entry:[ mk "t.Main" "main" ] () in
  let callers = Callgraph.callers cg (mk "t.Sub" "m") in
  Alcotest.(check int) "one caller site" 1 (List.length callers);
  let caller, idx = List.hd callers in
  Alcotest.(check string) "caller is main" "t.Main" caller.Mkey.mk_class;
  Alcotest.(check int) "at the virtual call" 2 idx

let test_recursion () =
  let sc = Scene.create () in
  Scene.add_class sc (Jclass.mk T.object_class ~super:None);
  Scene.add_class sc
    (B.cls "t.R"
       [
         B.meth "f" ~static:true (fun m -> B.scall m "t.R" "g" []);
         B.meth "g" ~static:true (fun m -> B.scall m "t.R" "f" []);
       ]);
  let cg = Callgraph.build sc ~entry:[ mk "t.R" "f" ] () in
  Alcotest.(check bool) "mutual recursion terminates and reaches both" true
    (Callgraph.is_reachable cg (mk "t.R" "f")
    && Callgraph.is_reachable cg (mk "t.R" "g"))

let test_phantom_calls_have_no_targets () =
  let sc = Scene.create () in
  Scene.add_class sc (Jclass.mk T.object_class ~super:None);
  Scene.add_class sc
    (B.cls "t.M"
       [
         B.meth "main" ~static:true (fun m ->
             let x = B.local m "x" in
             B.scall m ~ret:x "android.framework.Thing" "get" []);
       ]);
  let cg = Callgraph.build sc ~entry:[ mk "t.M" "main" ] () in
  Alcotest.(check (list string)) "no targets into phantoms" []
    (target_names cg (mk "t.M" "main") 0)

(* --- ICFG --- *)

let test_icfg_navigation () =
  let sc = scene_with_dispatch () in
  let cg = Callgraph.build sc ~entry:[ mk "t.Main" "main" ] () in
  let g = Icfg.create cg in
  let entry = Icfg.start_node g (mk "t.Main" "main") in
  Alcotest.(check int) "start at 0" 0 entry.Icfg.n_idx;
  let succs = Icfg.succs g entry in
  Alcotest.(check int) "one successor" 1 (List.length succs);
  (* the call node is a call *)
  let call_node = Icfg.{ n_method = mk "t.Main" "main"; n_idx = 2 } in
  Alcotest.(check bool) "is_call" true (Icfg.is_call g call_node);
  Alcotest.(check int) "callees via icfg" 3
    (List.length (Icfg.callees g call_node));
  (* exits *)
  let exits = Icfg.exit_nodes g (mk "t.Main" "main") in
  Alcotest.(check int) "one exit" 1 (List.length exits);
  Alcotest.(check bool) "exit flagged" true (Icfg.is_exit g (List.hd exits));
  (* preds are the inverse of succs *)
  let back = Icfg.preds g (List.hd succs) in
  Alcotest.(check bool) "entry in preds of its succ" true
    (List.exists (Icfg.equal_node entry) back)

(* property: every callee of every reachable call site is itself
   reachable *)
let prop_callees_reachable =
  QCheck.Test.make ~name:"callees of reachable sites are reachable" ~count:50
    QCheck.(int_range 1 6)
    (fun n ->
      (* build a random static call chain of length n with a branch *)
      let sc = Scene.create () in
      Scene.add_class sc (Jclass.mk T.object_class ~super:None);
      for i = 0 to n do
        Scene.add_class sc
          (B.cls
             (Printf.sprintf "t.C%d" i)
             [
               B.meth "f" ~static:true (fun m ->
                   if i < n then
                     B.scall m (Printf.sprintf "t.C%d" (i + 1)) "f" []
                   else B.ret m);
             ])
      done;
      let cg = Callgraph.build sc ~entry:[ mk "t.C0" "f" ] () in
      List.for_all
        (fun caller ->
          match Callgraph.body_of cg caller with
          | exception Not_found -> true
          | body ->
              let ok = ref true in
              Body.iter body (fun s ->
                  List.iter
                    (fun tgt ->
                      if not (Callgraph.is_reachable cg tgt) then ok := false)
                    (Callgraph.callees cg caller s.Stmt.s_idx));
              !ok)
        (Callgraph.reachable_methods cg))

let () =
  Alcotest.run "fd_callgraph"
    [
      ( "construction",
        [
          Alcotest.test_case "CHA dispatch" `Quick test_cha_dispatch;
          Alcotest.test_case "RTA dispatch" `Quick test_rta_dispatch;
          Alcotest.test_case "RTA subset of CHA" `Quick test_rta_subset_of_cha;
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "callers" `Quick test_callers;
          Alcotest.test_case "recursion" `Quick test_recursion;
          Alcotest.test_case "phantom targets" `Quick
            test_phantom_calls_have_no_targets;
        ] );
      ("icfg", [ Alcotest.test_case "navigation" `Quick test_icfg_navigation ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_callees_reachable ]);
    ]
