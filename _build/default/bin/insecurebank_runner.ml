(* RQ2: analyse µInsecureBank; the paper reports 7/7 leaks found with
   no false positives or negatives. *)
let () =
  let t0 = Sys.time () in
  let result = Fd_core.Infoflow.analyze_apk Fd_appgen.Insecurebank.apk in
  let t1 = Sys.time () in
  let findings = Fd_eval.Engines.findings_of_result result in
  let v =
    Fd_eval.Scoring.score ~expected:Fd_appgen.Insecurebank.expected_leaks
      ~findings
  in
  Printf.printf "RQ2: InsecureBank\n";
  Printf.printf "  expected leaks : %d\n"
    (List.length Fd_appgen.Insecurebank.expected_leaks);
  Printf.printf "  found          : %d (TP %d, FP %d, FN %d)\n"
    (List.length findings) v.Fd_eval.Scoring.tp v.Fd_eval.Scoring.fp
    v.Fd_eval.Scoring.fn;
  Printf.printf "  analysis time  : %.4f s\n" (t1 -. t0);
  List.iter
    (fun (fd : Fd_core.Bidi.finding) ->
      Printf.printf "  leak: %-18s -> %s (%s)\n"
        (Option.value fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag ~default:"?")
        (Option.value fd.Fd_core.Bidi.f_sink_tag ~default:"?")
        (Fd_frontend.Sourcesink.string_of_category fd.Fd_core.Bidi.f_sink_cat))
    result.Fd_core.Infoflow.r_findings
