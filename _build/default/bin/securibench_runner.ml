(* Regenerates Table 2: SecuriBench-µ results for FlowDroid. *)
let () =
  let t = Fd_eval.Securibench_table.run () in
  print_string (Fd_eval.Securibench_table.render t);
  (* list any deviations from the expected counts, for debugging *)
  List.iter
    (fun (name, v) ->
      if v.Fd_eval.Scoring.fn > 0 || v.Fd_eval.Scoring.fp > 0 then
        Printf.printf "  %-18s tp=%d fp=%d fn=%d\n" name v.Fd_eval.Scoring.tp
          v.Fd_eval.Scoring.fp v.Fd_eval.Scoring.fn)
    t.Fd_eval.Securibench_table.per_case
