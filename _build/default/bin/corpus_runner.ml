(* RQ3: analyse the generated Play-profile / malware-profile corpora
   and report runtime + leak statistics. *)
open Cmdliner

let profile =
  let profile_conv =
    Arg.enum
      [ ("play", Fd_appgen.Generator.Play);
        ("malware", Fd_appgen.Generator.Malware) ]
  in
  Arg.(value & opt profile_conv Fd_appgen.Generator.Malware
       & info [ "profile" ] ~doc:"Corpus profile: play or malware.")

let n =
  Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of apps to generate.")

let seed =
  Arg.(value & opt int 20140609 & info [ "seed" ] ~doc:"Corpus seed.")

let run profile n seed =
  let t = Fd_eval.Corpus.run ~profile ~seed ~n () in
  print_string (Fd_eval.Corpus.render t)

let cmd =
  Cmd.v
    (Cmd.info "corpus_runner"
       ~doc:"RQ3 corpus analysis (generated Play/malware apps)")
    Term.(const run $ profile $ n $ seed)

let () = exit (Cmd.eval cmd)
