(* Demonstrations of the paper's figures and listings on the real
   engine: Figure 2 (aliasing handover), Listing 2 (context injection
   vs the naive handover of Figure 3), Listing 3 (activation
   statements vs Andromeda-style flow-insensitivity). *)
open Fd_ir
open Fd_core
module B = Build
module T = Types
module SS = Fd_frontend.Sourcesink

let defs =
  SS.create
    [
      SS.Return_source { cls = "t.Source"; mname = "secret"; cat = SS.Generic };
      SS.Sink { cls = "t.Sink"; mname = "leak"; cat = SS.Generic };
    ]

let src m ?tag x = B.scall m ?tag ~ret:x "t.Source" "secret" []
let snk m ?tag x = B.scall m ?tag "t.Sink" "leak" [ B.v x ]

let listing2 () =
  let ff = B.fld "t.Data" "f" in
  B.cls "t.L2"
    [
      B.meth "taintIt" ~static:true
        ~params:[ T.Ref "java.lang.String"; T.Ref "t.Data" ] (fun m ->
          let in_ = B.param m 0 "in" in
          let out = B.param m 1 "out" in
          let x = B.local m "x" in
          let v = B.local m "v" in
          B.move m x out;
          B.store m x ff (B.v in_);
          B.load m v out ff;
          snk m ~tag:"line11: sink(out.f) inside taintIt" v);
      B.meth "main" ~static:true (fun m ->
          let p = B.local m "p" and p2 = B.local m "p2" in
          let s = B.local m "s" and pub = B.local m "pub" in
          let v1 = B.local m "v1" and v2 = B.local m "v2" in
          B.newc m p "t.Data" [];
          B.newc m p2 "t.Data" [];
          src m ~tag:"line3: source()" s;
          B.scall m "t.L2" "taintIt" [ B.v s; B.v p ];
          B.load m v1 p ff;
          snk m ~tag:"line4: sink(p.f)" v1;
          B.const m pub (B.s "public");
          B.scall m "t.L2" "taintIt" [ B.v pub; B.v p2 ];
          B.load m v2 p2 ff;
          snk m ~tag:"line6: sink(p2.f) [SAFE]" v2);
    ]

let listing3 () =
  let ff = B.fld "t.Data" "f" in
  B.cls "t.L3"
    [
      B.meth "main" ~static:true (fun m ->
          let p = B.local m "p" and p2 = B.local m "p2" in
          let s = B.local m "s" in
          let v1 = B.local m "v1" and v2 = B.local m "v2" in
          B.newc m p "t.Data" [];
          B.move m p2 p;
          B.load m v1 p2 ff;
          snk m ~tag:"line2: sink(p2.f) [SAFE: before taint]" v1;
          src m ~tag:"line3: source()" s;
          B.store m p ff (B.v s);
          B.load m v2 p2 ff;
          snk m ~tag:"line4: sink(p2.f)" v2);
    ]

let figure2 () =
  let fg = B.fld "t.A2" "g" in
  let ffld = B.fld "t.Obj" "f" in
  B.cls "t.F2"
    [
      B.meth "foo" ~static:true ~params:[ T.Ref "t.A2" ] (fun m ->
          let z = B.param m 0 "z" in
          let x = B.local m "x" in
          let w = B.local m "w" in
          B.load m x z fg;
          src m ~tag:"w = source() in foo" w;
          B.store m x ffld (B.v w));
      B.meth "main" ~static:true (fun m ->
          let a = B.local m "a" and b = B.local m "b" in
          let o = B.local m "o" and v = B.local m "v" in
          B.newc m a "t.A2" [];
          B.newc m o "t.Obj" [];
          B.store m a fg (B.v o);
          B.load m b a fg;
          B.scall m "t.F2" "foo" [ B.v a ];
          B.load m v b ffld;
          snk m ~tag:"sink(b.f)" v);
    ]

let analyze ?(config = Config.default) cls entry =
  Infoflow.analyze_plain ~config ~classes:[ cls ]
    ~entries:[ Fd_callgraph.Mkey.{ mk_class = entry; mk_name = "main"; mk_arity = 0 } ]
    ~defs ()

let show title result =
  Printf.printf "%s\n" title;
  if result.Infoflow.r_findings = [] then Printf.printf "  (no leaks reported)\n"
  else
    List.iter
      (fun (fd : Bidi.finding) ->
        Printf.printf "  leak: %s  -->  %s\n"
          (Option.value fd.Bidi.f_source.Taint.si_tag ~default:"?")
          (Option.value fd.Bidi.f_sink_tag ~default:"?"))
      result.Infoflow.r_findings;
  print_newline ()

let run_figure2 () =
  show "Figure 2: taint analysis under realistic aliasing"
    (analyze (figure2 ()) "t.F2")

let run_listing2 () =
  show "Listing 2 with context injection (the paper's algorithm)"
    (analyze (listing2 ()) "t.L2");
  show "Listing 2 with the NAIVE handover of Figure 3 (ablation)"
    (analyze
       ~config:{ Config.default with Config.context_injection = false }
       (listing2 ()) "t.L2")

let run_listing3 () =
  show "Listing 3 with activation statements (flow-sensitive aliases)"
    (analyze (listing3 ()) "t.L3");
  show "Listing 3 with aliases born active (Andromeda-style, ablation)"
    (analyze
       ~config:{ Config.default with Config.activation_statements = false }
       (listing3 ()) "t.L3")

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "figure2" -> run_figure2 ()
  | "listing2" -> run_listing2 ()
  | "listing3" -> run_listing3 ()
  | _ ->
      run_figure2 ();
      run_listing2 ();
      run_listing3 ()
