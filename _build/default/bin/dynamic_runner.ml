(* Static vs dynamic (TaintDroid-sim) comparison over DROIDBENCH. *)
let () =
  let t = Fd_eval.Dynamic_table.run () in
  print_string (Fd_eval.Dynamic_table.render t)
