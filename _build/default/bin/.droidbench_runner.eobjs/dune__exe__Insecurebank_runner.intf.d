bin/insecurebank_runner.mli:
