bin/corpus_runner.mli:
