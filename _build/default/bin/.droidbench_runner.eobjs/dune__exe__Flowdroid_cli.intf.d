bin/flowdroid_cli.mli:
