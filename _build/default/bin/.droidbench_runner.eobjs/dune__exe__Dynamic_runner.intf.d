bin/dynamic_runner.mli:
