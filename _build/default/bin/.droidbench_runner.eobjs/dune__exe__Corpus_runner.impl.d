bin/corpus_runner.ml: Arg Cmd Cmdliner Fd_appgen Fd_eval Term
