bin/securibench_runner.ml: Fd_eval List Printf
