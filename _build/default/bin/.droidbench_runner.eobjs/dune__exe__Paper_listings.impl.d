bin/paper_listings.ml: Array Bidi Build Config Fd_callgraph Fd_core Fd_frontend Fd_ir Infoflow List Option Printf Sys Taint Types
