bin/droidbench_runner.ml: Fd_eval
