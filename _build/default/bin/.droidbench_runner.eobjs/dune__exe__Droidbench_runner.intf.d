bin/droidbench_runner.mli:
