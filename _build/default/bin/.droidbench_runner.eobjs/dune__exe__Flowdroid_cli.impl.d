bin/flowdroid_cli.ml: Arg Cmd Cmdliner Fd_callgraph Fd_core Fd_frontend Fd_ir Fun List Manpage Printf Term
