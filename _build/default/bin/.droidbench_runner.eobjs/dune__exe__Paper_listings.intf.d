bin/paper_listings.mli:
