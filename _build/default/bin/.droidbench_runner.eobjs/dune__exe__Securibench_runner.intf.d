bin/securibench_runner.mli:
