bin/insecurebank_runner.ml: Fd_appgen Fd_core Fd_eval Fd_frontend List Option Printf Sys
