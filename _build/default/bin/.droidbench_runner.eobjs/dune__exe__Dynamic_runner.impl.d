bin/dynamic_runner.ml: Fd_eval
