(* Regenerates Table 1: DROIDBENCH results for FlowDroid and the two
   simulated commercial comparators. *)
let () =
  let engines =
    [ Fd_eval.Engines.appscan; Fd_eval.Engines.fortify;
      Fd_eval.Engines.flowdroid () ]
  in
  let t = Fd_eval.Droidbench_table.run engines in
  print_string (Fd_eval.Droidbench_table.render t)
