(* Tests for the serve daemon: protocol framing, the bounded work
   queue, request/response round-trips over a real socket, admission
   control (queue-full rejection with retry_after_ms), worker-crash
   supervision landing on a degraded rung, graceful drain, and a
   chaos run proving exactly-one-reply with diagnosed outcomes. *)

module Json = Fd_obs.Json
module Squeue = Fd_serve.Squeue
module Protocol = Fd_serve.Protocol
module Server = Fd_serve.Server
module Client = Fd_serve.Client

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "fdserve-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let gen_app index =
  Protocol.App_gen
    { g_profile = Fd_appgen.Generator.Malware; g_seed = 2014; g_index = index }

let analyze_req ?id ?deadline_ms app =
  {
    Protocol.rq_id = Option.map (fun s -> Json.String s) id;
    rq_app = app;
    rq_apps = [];
    rq_deadline_ms = deadline_ms;
    rq_k = None;
    rq_rules = "default";
    rq_strict = false;
    rq_fresh_metrics = false;
    rq_icc = false;
    rq_targeted = [];
  }

let member_str k v =
  match Json.member k v with Some (Json.String s) -> Some s | _ -> None

let is_ok v = Json.member "ok" v = Some (Json.Bool true)

let diags_nonempty v =
  match Json.member "diags" v with
  | Some (Json.List (_ :: _)) -> true
  | _ -> false

let wait_for ?(timeout = 5.) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

(* ---------------- squeue ---------------- *)

let test_squeue_bounds () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Squeue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Squeue.try_push q 2);
  Alcotest.(check bool) "push 3 bounces" false (Squeue.try_push q 3);
  (* the supervision path may exceed capacity *)
  Squeue.push_force q 4;
  Alcotest.(check int) "depth 3" 3 (Squeue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Squeue.pop q);
  Squeue.close q;
  Alcotest.(check bool) "closed rejects" false (Squeue.try_push q 5);
  (* queued items still drain after close *)
  Alcotest.(check (option int)) "drain 2" (Some 2) (Squeue.pop q);
  Alcotest.(check (option int)) "drain 4" (Some 4) (Squeue.pop q);
  Alcotest.(check (option int)) "then None" None (Squeue.pop q)

let test_squeue_blocking_pop () =
  let q = Squeue.create ~capacity:4 in
  let got = Atomic.make (-1) in
  let th = Thread.create (fun () ->
      match Squeue.pop q with
      | Some v -> Atomic.set got v
      | None -> Atomic.set got (-2)) ()
  in
  Thread.delay 0.05;
  Squeue.push_force q 7;
  Thread.join th;
  Alcotest.(check int) "woken with the item" 7 (Atomic.get got)

(* ---------------- framing ---------------- *)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let v = Json.Obj [ ("verb", Json.String "ping"); ("n", Json.Int 42) ] in
  Protocol.write_frame a v;
  Protocol.write_frame a (Json.String "two");
  Alcotest.(check bool) "frame 1" true (Protocol.read_frame b = Some v);
  Alcotest.(check bool) "frame 2" true
    (Protocol.read_frame b = Some (Json.String "two"));
  Unix.close a;
  Alcotest.(check bool) "clean EOF" true (Protocol.read_frame b = None);
  Unix.close b

let test_framing_oversized_keeps_stream () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let big = Json.String (String.make 4096 'x') in
  let writer = Thread.create (fun () ->
      Protocol.write_frame a big;
      Protocol.write_frame a (Json.Int 1);
      Unix.close a) ()
  in
  (match Protocol.read_frame ~max_bytes:64 b with
  | exception Protocol.Oversized n ->
      Alcotest.(check bool) "declared size" true (n > 4096)
  | _ -> Alcotest.fail "expected Oversized");
  (* the oversized payload was discarded, the next frame is intact *)
  Alcotest.(check bool) "stream still framed" true
    (Protocol.read_frame b = Some (Json.Int 1));
  Thread.join writer;
  Unix.close b

let test_request_roundtrip () =
  let a = analyze_req ~id:"r1" ~deadline_ms:1500 (gen_app 3) in
  match Protocol.request_of_json (Protocol.json_of_analyze a) with
  | Ok (Protocol.Analyze a') ->
      Alcotest.(check bool) "id" true (a'.rq_id = Some (Json.String "r1"));
      Alcotest.(check bool) "deadline" true (a'.rq_deadline_ms = Some 1500);
      Alcotest.(check string) "name" "gen3" (Protocol.app_name a'.rq_app)
  | _ -> Alcotest.fail "analyze did not round-trip"

(* ---------------- server fixtures ---------------- *)

let base_cfg socket =
  {
    (Server.default_config ~socket) with
    Server.sv_workers = 1;
    sv_queue_capacity = 2;
    sv_default_deadline_s = 10.;
    sv_backoff_base_s = 0.001;
    sv_drain_grace_s = 5.;
  }

let with_server cfg f =
  let server = Server.start cfg in
  Fun.protect ~finally:(fun () -> Server.stop ~grace_s:5. server) (fun () ->
      f server)

let with_client socket f =
  let c = Client.connect socket in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* ---------------- cold-start backpressure hint ---------------- *)

(* on a freshly-booted daemon the latency histogram is empty (and the
   first samples can be degenerate 0s); the retry_after_ms estimate
   must still land inside its documented [50 ms, 10 s] envelope *)
let test_retry_after_cold_start () =
  let socket = fresh_socket () in
  Fd_obs.Metrics.reset ();
  with_server (base_cfg socket) (fun server ->
      let check_bounds label =
        let ms = Server.retry_after_ms server in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %d ms within [50, 10000]" label ms)
          true
          (ms >= 50 && ms <= 10_000)
      in
      (* empty histogram *)
      check_bounds "cold start";
      (* degenerate zero-duration samples: mean 0 must clamp up *)
      let h = Fd_obs.Metrics.histogram "serve.request_seconds" in
      Fd_obs.Metrics.observe h 0.;
      check_bounds "zero-duration sample";
      (* pathological huge sample: mean must clamp down, not overflow *)
      Fd_obs.Metrics.observe h 1e12;
      check_bounds "huge sample";
      (* after real traffic it stays bounded too *)
      with_client socket (fun c ->
          ignore (Client.analyze c (analyze_req (gen_app 0))));
      check_bounds "after a real request")

(* ---------------- round-trip ---------------- *)

let test_server_roundtrip () =
  let socket = fresh_socket () in
  with_server (base_cfg socket) (fun _server ->
      with_client socket (fun c ->
          Alcotest.(check bool) "pong" true (Client.ping c);
          let h = Client.health c in
          Alcotest.(check bool) "health ok" true (is_ok h);
          Alcotest.(check bool) "running" true
            (member_str "phase" h = Some "running");
          let r = Client.analyze c (analyze_req ~id:"rt" (gen_app 3)) in
          Alcotest.(check bool) "analyze ok" true (is_ok r);
          Alcotest.(check bool) "id echoed" true
            (Json.member "id" r = Some (Json.String "rt"));
          Alcotest.(check bool) "precise" true
            (member_str "completeness" r = Some "precise");
          Alcotest.(check bool) "has findings count" true
            (match Json.member "findings" r with
            | Some (Json.Int n) -> n >= 0
            | _ -> false);
          let s = Client.stats c in
          Alcotest.(check bool) "stats ok" true (is_ok s)))

let test_server_bad_requests () =
  let socket = fresh_socket () in
  with_server (base_cfg socket) (fun _server ->
      with_client socket (fun c ->
          let r = Client.request c (Json.Obj [ ("verb", Json.String "nope") ]) in
          Alcotest.(check (option string)) "unknown verb" (Some "bad-request")
            (member_str "error" r);
          let r =
            Client.analyze c
              { (analyze_req (gen_app 1)) with Protocol.rq_rules = "missing" }
          in
          Alcotest.(check (option string)) "unknown rules" (Some "bad-request")
            (member_str "error" r);
          let r =
            Client.analyze c (analyze_req (Protocol.App_dir "/nonexistent/app"))
          in
          Alcotest.(check (option string)) "bad app dir" (Some "bad-app")
            (member_str "error" r);
          (* the connection survives all of the above *)
          Alcotest.(check bool) "still serving" true (Client.ping c)))

(* ---------------- admission control ---------------- *)

let test_queue_full_rejection () =
  let socket = fresh_socket () in
  let hold = Atomic.make true in
  let cfg =
    {
      (base_cfg socket) with
      Server.sv_attempt_hook =
        Some (fun _ _ -> while Atomic.get hold do Unix.sleepf 0.005 done);
    }
  in
  with_server cfg (fun server ->
      Fun.protect ~finally:(fun () -> Atomic.set hold false) @@ fun () ->
      let replies = Squeue.create ~capacity:8 in
      let lane i =
        Thread.create
          (fun () ->
            with_client socket (fun c ->
                Squeue.push_force replies
                  (i, Client.analyze c (analyze_req (gen_app i)))))
          ()
      in
      (* build the saturated state step by step so the worker is
         guaranteed to be parked in the hook before the queue fills:
         1 in-flight + 2 queued = at capacity *)
      let l1 = lane 1 in
      Alcotest.(check bool) "first picked up" true
        (wait_for (fun () ->
             Server.in_flight server = 1 && Server.queue_depth server = 0));
      let l2 = lane 2 in
      Alcotest.(check bool) "second queued" true
        (wait_for (fun () -> Server.queue_depth server = 1));
      let l3 = lane 3 in
      let lanes = [ l1; l2; l3 ] in
      Alcotest.(check bool) "queue fills" true
        (wait_for (fun () ->
             Server.in_flight server = 1 && Server.queue_depth server = 2));
      with_client socket (fun c ->
          let r = Client.analyze c (analyze_req (gen_app 4)) in
          Alcotest.(check (option string)) "rejected" (Some "overloaded")
            (member_str "error" r);
          Alcotest.(check bool) "retry_after_ms present" true
            (match Json.member "retry_after_ms" r with
            | Some (Json.Int ms) -> ms > 0
            | _ -> false));
      Atomic.set hold false;
      List.iter Thread.join lanes;
      (* every admitted request got exactly one (successful) reply *)
      Squeue.close replies;
      let rec drain acc =
        match Squeue.pop replies with
        | Some r -> drain (r :: acc)
        | None -> acc
      in
      let got = drain [] in
      Alcotest.(check int) "three replies" 3 (List.length got);
      List.iter
        (fun (i, r) ->
          Alcotest.(check bool) (Printf.sprintf "lane %d ok" i) true (is_ok r))
        got)

(* ---------------- supervision ---------------- *)

let test_worker_crash_retries_degraded () =
  let socket = fresh_socket () in
  let cfg =
    {
      (base_cfg socket) with
      Server.sv_attempt_hook =
        Some
          (fun _ attempt ->
            (* kill the worker on every first attempt: supervision
               must restart it and land the retry on the next rung *)
            if attempt = 1 then failwith "injected worker crash");
    }
  in
  with_server cfg (fun _server ->
      with_client socket (fun c ->
          let r = Client.analyze c (analyze_req (gen_app 3)) in
          Alcotest.(check bool) "still answered" true (is_ok r);
          Alcotest.(check (option string)) "landed on the k=3 rung"
            (Some "degraded(k=3)")
            (member_str "completeness" r);
          Alcotest.(check bool) "crash diagnosed" true (diags_nonempty r);
          let h = Client.health c in
          Alcotest.(check bool) "restart counted" true
            (match Json.member "worker_restarts" h with
            | Some (Json.Int n) -> n >= 1
            | _ -> false)))

(* ---------------- graceful drain ---------------- *)

let test_graceful_drain () =
  let socket = fresh_socket () in
  let hold = Atomic.make true in
  let cfg =
    {
      (base_cfg socket) with
      Server.sv_attempt_hook =
        Some (fun _ _ -> while Atomic.get hold do Unix.sleepf 0.005 done);
    }
  in
  with_server cfg (fun server ->
      Fun.protect ~finally:(fun () -> Atomic.set hold false) @@ fun () ->
      let reply = Atomic.make None in
      let lane =
        Thread.create
          (fun () ->
            with_client socket (fun c ->
                Atomic.set reply
                  (Some (Client.analyze c (analyze_req (gen_app 3))))))
          ()
      in
      Alcotest.(check bool) "request picked up" true
        (wait_for (fun () -> Server.in_flight server = 1));
      with_client socket (fun c ->
          let d = Client.drain c in
          Alcotest.(check bool) "drain acknowledged" true (is_ok d);
          let r = Client.analyze c (analyze_req (gen_app 4)) in
          Alcotest.(check (option string)) "new work rejected"
            (Some "draining")
            (member_str "error" r));
      (* in-flight work completes once released *)
      Atomic.set hold false;
      Thread.join lane;
      (match Atomic.get reply with
      | Some r ->
          Alcotest.(check bool) "in-flight completed" true (is_ok r);
          Alcotest.(check (option string)) "precisely" (Some "precise")
            (member_str "completeness" r)
      | None -> Alcotest.fail "in-flight request never replied");
      Alcotest.(check bool) "drained to idle" true
        (wait_for (fun () ->
             Server.in_flight server = 0 && Server.queue_depth server = 0)))

(* ---------------- chaos ---------------- *)

let test_chaos_exactly_one_reply () =
  let socket = fresh_socket () in
  let cfg =
    {
      (base_cfg socket) with
      Server.sv_workers = 2;
      sv_queue_capacity = 64;
      sv_chaos_rate = 0.1;
      sv_chaos_seed = 1234;
      sv_default_deadline_s = 10.;
    }
  in
  let lanes = 3 and per_lane = 8 in
  with_server cfg (fun server ->
      let replies = Squeue.create ~capacity:(lanes * per_lane) in
      let lane l =
        Thread.create
          (fun () ->
            with_client socket (fun c ->
                for i = 0 to per_lane - 1 do
                  let idx = (l * per_lane) + i in
                  Squeue.push_force replies
                    (idx, Client.analyze c (analyze_req (gen_app idx)))
                done))
          ()
      in
      let threads = List.init lanes lane in
      List.iter Thread.join threads;
      Squeue.close replies;
      let rec drain acc =
        match Squeue.pop replies with
        | Some r -> drain (r :: acc)
        | None -> acc
      in
      let got = drain [] in
      (* exactly one reply per request, the daemon survived, and every
         non-precise outcome carries diagnostics *)
      Alcotest.(check int) "every request replied" (lanes * per_lane)
        (List.length got);
      Alcotest.(check bool) "daemon alive" true (Server.running server);
      List.iter
        (fun (idx, r) ->
          let label = Printf.sprintf "req %d" idx in
          match Json.member "ok" r with
          | Some (Json.Bool true) ->
              if member_str "completeness" r <> Some "precise" then
                Alcotest.(check bool) (label ^ " diagnosed") true
                  (diags_nonempty r)
          | Some (Json.Bool false) ->
              Alcotest.(check bool) (label ^ " failure diagnosed") true
                (diags_nonempty r)
          | _ -> Alcotest.fail (label ^ ": reply without ok field"))
        got)

let () =
  Alcotest.run "serve"
    [
      ( "squeue",
        [
          Alcotest.test_case "bounds and close" `Quick test_squeue_bounds;
          Alcotest.test_case "blocking pop" `Quick test_squeue_blocking_pop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "framing round-trip" `Quick
            test_framing_roundtrip;
          Alcotest.test_case "oversized keeps stream" `Quick
            test_framing_oversized_keeps_stream;
          Alcotest.test_case "analyze round-trip" `Quick
            test_request_roundtrip;
        ] );
      ( "server",
        [
          Alcotest.test_case "request/response round-trip" `Quick
            test_server_roundtrip;
          Alcotest.test_case "bad requests don't wedge" `Quick
            test_server_bad_requests;
          Alcotest.test_case "retry_after_ms bounded from cold start" `Quick
            test_retry_after_cold_start;
          Alcotest.test_case "queue-full rejection" `Quick
            test_queue_full_rejection;
          Alcotest.test_case "worker crash lands degraded" `Quick
            test_worker_crash_retries_degraded;
          Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
          Alcotest.test_case "chaos: exactly one reply" `Quick
            test_chaos_exactly_one_reply;
        ] );
    ]
