(* The differential-validation harness:

   - the verdict classifier's full decision table;
   - campaign determinism: verdict digests are bit-identical at any
     job count;
   - the generator's limitation plants land in their intended buckets,
     with the dynamic interpreter actually observing the FN plants
     (reflection model, clinit placement);
   - the delta-debugging minimizer shrinks an app while preserving the
     target verdict's full observation signature;
   - the checked-in minimized reproducers under examples/repro still
     witness their documented limitation category. *)

module Gen = Fd_appgen.Generator
module Dc = Fd_diffcheck.Diffcheck
module V = Fd_diffcheck.Verdict
module Minimize = Fd_diffcheck.Minimize
module Apk = Fd_frontend.Apk

let k src snk : V.key = (Some src, Some snk)

let bucket_of verdicts key =
  match List.find_opt (fun v -> v.V.v_key = key) verdicts with
  | Some v -> v.V.v_bucket
  | None -> Alcotest.failf "no verdict for key %s" (V.string_of_key key)

(* --- classifier decision table --- *)

let test_classify_table () =
  let gt = [ (Some "s1", "k1") ] in
  let limits =
    [
      ((Some "fpsrc", "fpsnk"), Gen.Lim_array_index);
      ((Some "fnsrc", "fnsnk"), Gen.Lim_reflection);
      ((Some "unex", "unex"), Gen.Lim_strong_update);
      ((Some "cold", "cold"), Gen.Lim_clinit);
    ]
  in
  let verdicts =
    V.classify ~fixed:[]
      ~static:[ k "s1" "k1"; k "both" "both"; k "fpsrc" "fpsnk"; k "bad" "bad" ]
      ~dynamic:[ k "both" "both"; k "fnsrc" "fnsnk"; k "ghost" "ghost" ]
      ~expected:((Some "missing", "missing") :: gt)
      ~limits
  in
  let check key expect =
    Alcotest.(check string)
      (V.string_of_key key) expect
      (V.string_of_bucket (bucket_of verdicts key))
  in
  check (k "both" "both") "confirmed";
  (* static-only but planted: ground truth corroborates *)
  check (k "s1" "k1") "confirmed";
  check (k "fpsrc" "fpsnk") "explained-FP(array-index)";
  check (k "bad" "bad") "DIVERGENCE(spurious-static)";
  check (k "fnsrc" "fnsnk") "explained-FN(reflection)";
  check (k "ghost" "ghost") "DIVERGENCE(missed-dynamic)";
  check (k "missing" "missing") "DIVERGENCE(missed-ground-truth)";
  (* an FP plant neither engine touched: precision exceeded the
     documented limitation *)
  check (k "unex" "unex") "unexercised(strong-update)";
  (* an FN plant neither engine touched: still an explained FN (the
     driver's coverage just did not reach it) *)
  check (k "cold" "cold") "explained-FN(clinit-placement)";
  (* output is keyed and sorted: classifying twice agrees *)
  let again =
    V.classify ~fixed:[]
      ~static:[ k "bad" "bad"; k "fpsrc" "fpsnk"; k "both" "both"; k "s1" "k1" ]
      ~dynamic:[ k "ghost" "ghost"; k "fnsrc" "fnsnk"; k "both" "both" ]
      ~expected:((Some "missing", "missing") :: gt)
      ~limits
  in
  Alcotest.(check bool) "order-insensitive" true (verdicts = again)

(* --- campaign determinism across job counts --- *)

let test_campaign_jobs_deterministic () =
  let run jobs = Dc.campaign ~jobs ~profile:Gen.Play ~seed:99 ~n:6 () in
  let c1 = run 1 and c2 = run 2 in
  Alcotest.(check string) "digest jobs=1 vs jobs=2" (Dc.digest c1)
    (Dc.digest c2);
  Alcotest.(check bool) "verdict lines equal" true
    (Dc.verdict_lines c1 = Dc.verdict_lines c2)

(* --- plants land in their buckets; FN plants are dynamically observed --- *)

let test_plants_classify () =
  let reports =
    List.concat_map
      (fun profile ->
        (Dc.campaign ~jobs:2 ~profile ~seed:20140609 ~n:40 ()).Dc.cp_reports)
      [ Gen.Play; Gen.Malware ]
  in
  let verdicts = List.concat_map (fun ar -> ar.Dc.ar_verdicts) reports in
  List.iter
    (fun ar ->
      Alcotest.(check (list string))
        (ar.Dc.ar_name ^ " has no divergences")
        []
        (List.map
           (fun v -> V.string_of_bucket v.V.v_bucket)
           (Dc.divergences ar)))
    reports;
  let observed_fn lim =
    List.exists
      (fun v ->
        v.V.v_bucket = V.Explained_fn lim && v.V.v_dynamic && not v.V.v_static)
      verdicts
  in
  (* the interpreter's reflection model and clinit placement really
     observe leaks the static engine misses — the FN buckets are not
     just the nobody-saw-it fallback *)
  Alcotest.(check bool) "reflection FN observed dynamically" true
    (observed_fn Gen.Lim_reflection);
  Alcotest.(check bool) "clinit FN observed dynamically" true
    (observed_fn Gen.Lim_clinit);
  let fp lim =
    List.exists (fun v -> v.V.v_bucket = V.Explained_fp lim) verdicts
  in
  Alcotest.(check bool) "array-index FP exercised" true
    (fp Gen.Lim_array_index);
  Alcotest.(check bool) "strong-update FP exercised" true
    (fp Gen.Lim_strong_update)

(* --- the minimizer preserves the observation signature and shrinks --- *)

let test_minimizer () =
  (* find a generated app carrying an exercised FP plant *)
  let apps = Gen.corpus ~profile:Gen.Malware ~seed:20140609 40 in
  let pick =
    List.find_map
      (fun (ga : Gen.gen_app) ->
        let ar = Dc.check_gen ga in
        Option.map
          (fun v -> (ga, v))
          (List.find_opt
             (fun v ->
               match v.V.v_bucket with V.Explained_fp _ -> true | _ -> false)
             ar.Dc.ar_verdicts))
      apps
  in
  match pick with
  | None -> Alcotest.fail "no exercised FP plant in 40 apps"
  | Some (ga, v) ->
      let before = Minimize.stmt_count ga.Gen.ga_apk in
      let small =
        Minimize.minimize ~expected:ga.Gen.ga_expected ~limits:ga.Gen.ga_limits
          ~target:v ga.Gen.ga_apk
      in
      let after = Minimize.stmt_count small in
      Alcotest.(check bool)
        (Printf.sprintf "shrank (%d -> %d stmts)" before after)
        true (after < before);
      Alcotest.(check bool)
        (Printf.sprintf "minimal reproducer is small (%d <= 30)" after)
        true (after <= 30);
      (* the verdict survives on the minimized app *)
      let ar =
        Dc.check_apk ~name:"minimized" ~expected:ga.Gen.ga_expected
          ~limits:ga.Gen.ga_limits small
      in
      let v' =
        List.find_opt (fun w -> w.V.v_key = v.V.v_key) ar.Dc.ar_verdicts
      in
      (match v' with
      | Some v' ->
          Alcotest.(check string)
            "bucket preserved"
            (V.string_of_bucket v.V.v_bucket)
            (V.string_of_bucket v'.V.v_bucket);
          Alcotest.(check bool) "static bit preserved" v.V.v_static v'.V.v_static;
          Alcotest.(check bool) "dynamic bit preserved" v.V.v_dynamic
            v'.V.v_dynamic
      | None -> Alcotest.fail "target key vanished from minimized app");
      (* the textual reproducer round-trips through the frontend *)
      let text =
        String.concat "\n\n"
          (List.map Fd_ir.Pretty.class_to_string small.Apk.apk_classes)
      in
      let reparsed =
        Apk.make_text "roundtrip" ~manifest:small.Apk.apk_manifest [ text ]
      in
      ignore (Apk.load reparsed)

(* --- checked-in minimized reproducers --- *)

let repro_root = Filename.concat (Filename.concat ".." "examples") "repro"

let read_repro_key dir =
  let ic = open_in (Filename.concat dir "REPRO.txt") in
  let rec find () =
    match input_line ic with
    | line when String.length line > 5 && String.sub line 0 5 = "key: " ->
        close_in ic;
        String.sub line 5 (String.length line - 5)
    | _ -> find ()
    | exception End_of_file ->
        close_in ic;
        Alcotest.failf "no key line in %s/REPRO.txt" dir
  in
  find ()

let parse_key s : V.key =
  match String.index_opt s '-' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '>' ->
      let part p = if p = "?" then None else Some p in
      ( part (String.sub s 0 i),
        part (String.sub s (i + 2) (String.length s - i - 2)) )
  | _ -> Alcotest.failf "malformed key %S" s

let check_repro ~fn dir () =
  let dir = Filename.concat repro_root dir in
  let key = parse_key (read_repro_key dir) in
  let apk = Apk.of_dir dir in
  let static, _ = Dc.static_findings apk in
  let dynamic = Dc.dynamic_findings apk in
  if fn then begin
    (* a real leak the static engine is documented to miss *)
    Alcotest.(check bool) "dynamic observes the leak" true
      (List.mem key dynamic);
    Alcotest.(check bool) "static misses the leak" false (List.mem key static)
  end
  else begin
    (* a spurious flow the static engine is documented to report *)
    Alcotest.(check bool) "static reports the flow" true (List.mem key static);
    Alcotest.(check bool) "dynamic never observes it" false
      (List.mem key dynamic)
  end

let () =
  Alcotest.run "diffcheck"
    [
      ( "verdict",
        [
          Alcotest.test_case "classifier decision table" `Quick
            test_classify_table;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "digest invariant under job count" `Quick
            test_campaign_jobs_deterministic;
          Alcotest.test_case "plants classify, FNs dynamically observed"
            `Slow test_plants_classify;
        ] );
      ( "minimize",
        [ Alcotest.test_case "shrinks preserving verdict" `Slow test_minimizer ]
      );
      ( "repro",
        [
          Alcotest.test_case "fn-reflection" `Quick
            (check_repro ~fn:true "fn-reflection");
          Alcotest.test_case "fn-clinit-placement" `Quick
            (check_repro ~fn:true "fn-clinit-placement");
          Alcotest.test_case "fp-array-index" `Quick
            (check_repro ~fn:false "fp-array-index");
          Alcotest.test_case "fp-strong-update" `Quick
            (check_repro ~fn:false "fp-strong-update");
        ] );
    ]
