(* Unit tests for the generic IFDS solver (Fd_ifds.Ifds) on a small
   hand-built supergraph, independent of the taint domain.

   The test problem is "possibly-uninitialised variables": facts are
   variable names, gen/kill at assignment nodes, parameter passing at
   calls — a classic IFDS instance with known expected results. *)

(* --- a tiny program representation --------------------------------

   procedures are arrays of instructions; facts are variable names.

   main:  0: def a          callee:  0: def t (from param p)
          1: call callee(b)          1: ret t
          2: use r (= retval)
          3: exit

   Variables: "a" defined; "b" never defined -> uninitialised; the
   callee copies its parameter, so the return value is uninitialised
   exactly when the argument is. *)

type instr =
  | Def of string
  | CopyFrom of string * string  (** CopyFrom (dst, src) *)
  | Call of { callee : string; arg : string; ret : string }
  | Exit

type proc = { pname : string; code : instr array; params : string list }

let procs : (string, proc) Hashtbl.t = Hashtbl.create 7
let add_proc p = Hashtbl.replace procs p.pname p
let proc name = Hashtbl.find procs name

module P = struct
  type nonrec proc = string
  type node = string * int
  type fact = string (* "" = zero; otherwise: variable may be uninitialised *)

  let proc_equal = String.equal
  let proc_hash = Hashtbl.hash
  let node_equal (a : node) (b : node) = a = b
  let node_hash = Hashtbl.hash
  let fact_equal = String.equal
  let fact_hash = Hashtbl.hash
  let zero = ""
  let proc_of (p, _) = p
  let start_of p = (p, 0)

  let succs (p, i) =
    let pr = proc p in
    if i + 1 < Array.length pr.code then [ (p, i + 1) ] else []

  let is_exit (p, i) = (proc p).code.(i) = Exit

  let callees (p, i) =
    match (proc p).code.(i) with Call { callee; _ } -> [ callee ] | _ -> []

  (* at procedure start, every local is possibly-uninitialised: model
     by generating facts from zero at node 0 *)
  let locals_of p =
    Array.to_list (proc p).code
    |> List.concat_map (function
         | Def v -> [ v ]
         | CopyFrom (d, s) -> [ d; s ]
         | Call { arg; ret; _ } -> [ arg; ret ]
         | Exit -> [])
    |> List.sort_uniq compare

  let normal_flow (p, i) d =
    match (proc p).code.(i) with
    | Def v ->
        if d = zero && i = 0 then
          (* entry: all locals (except those that are parameters bound
             by the caller) start uninitialised *)
          zero
          :: List.filter (fun l -> not (List.mem l (proc p).params)) (locals_of p)
          |> List.filter (fun f -> f <> v)
        else if d = v then [] (* defined: kill *)
        else [ d ]
    | CopyFrom (dst, src) ->
        if d = zero && i = 0 then
          zero
          :: List.filter (fun l -> not (List.mem l (proc p).params)) (locals_of p)
          |> List.filter (fun f -> f <> dst || f = src)
        else if d = dst then [] (* overwritten *)
        else if d = src then [ d; dst ] (* copied uninitialised-ness *)
        else [ d ]
    | Call _ | Exit -> if d = zero && i = 0 then [ zero ] else [ d ]

  let call_flow (p, i) callee d =
    match (proc p).code.(i) with
    | Call { arg; _ } ->
        let formals = (proc callee).params in
        if d = zero then [ zero ]
        else if d = arg then List.map (fun f -> f) formals
        else []
    | _ -> []

  let return_flow ~call ~callee ~exit:_ ~return_site:_ d =
    match (proc (fst call)).code.(snd call) with
    | Call { ret; _ } ->
        ignore callee;
        (* the callee returns its local "t": map the uninitialised-ness
           of t to the caller's ret variable *)
        if d = "t" then [ ret ] else []
    | _ -> []

  let call_to_return_flow (p, i) d =
    match (proc p).code.(i) with
    | Call { ret; _ } ->
        if d = zero then [ zero ] else if d = ret then [] else [ d ]
    | _ -> [ d ]
end

module S = Fd_ifds.Ifds.Make (P)

let setup () =
  Hashtbl.reset procs;
  add_proc
    {
      pname = "main";
      params = [];
      code =
        [|
          Def "a";
          Call { callee = "callee"; arg = "b"; ret = "r" };
          Def "z";
          Exit;
        |];
    };
  add_proc
    {
      pname = "callee";
      params = [ "p" ];
      code = [| CopyFrom ("t", "p"); Exit |];
    }

let solve () = S.solve ~seeds:[ (("main", 0), P.zero) ] ()

let test_uninit_basics () =
  setup ();
  let t = solve () in
  let at n = List.sort compare (S.results_at t n) in
  (* before node 1: a was defined at 0, b/r/z still uninitialised *)
  let facts1 = at ("main", 1) in
  Alcotest.(check bool) "a initialised" true (not (List.mem "a" facts1));
  Alcotest.(check bool) "b uninitialised" true (List.mem "b" facts1);
  (* before node 2 (after the call): r inherits b's uninitialised-ness
     through the callee *)
  let facts2 = at ("main", 2) in
  Alcotest.(check bool) "r uninitialised via callee" true (List.mem "r" facts2);
  (* before node 3: z was defined at 2 *)
  let facts3 = at ("main", 3) in
  Alcotest.(check bool) "z defined" true (not (List.mem "z" facts3));
  Alcotest.(check bool) "r still uninitialised" true (List.mem "r" facts3)

let test_context_separation () =
  (* two calls: one with a defined argument, one without; only the
     undefined one makes the return value uninitialised *)
  Hashtbl.reset procs;
  add_proc
    {
      pname = "main";
      params = [];
      code =
        [|
          Def "a";
          Call { callee = "callee"; arg = "a"; ret = "r1" };
          Call { callee = "callee"; arg = "b"; ret = "r2" };
          Exit;
        |];
    };
  add_proc
    {
      pname = "callee";
      params = [ "p" ];
      code = [| CopyFrom ("t", "p"); Exit |];
    };
  let t = solve () in
  let facts = List.sort compare (S.results_at t ("main", 3)) in
  Alcotest.(check bool) "r1 initialised (defined arg)" true
    (not (List.mem "r1" facts));
  Alcotest.(check bool) "r2 uninitialised (undefined arg)" true
    (List.mem "r2" facts)

let test_summary_reuse () =
  (* many calls to the same callee: summaries mean the edge count grows
     far slower than quadratically *)
  Hashtbl.reset procs;
  let calls = 30 in
  add_proc
    {
      pname = "main";
      params = [];
      code =
        Array.init (calls + 2) (fun i ->
            (* the entry instruction generates the initial
               uninitialised-locals facts *)
            if i = 0 then Def "a0"
            else if i <= calls then
              Call
                { callee = "callee"; arg = "b"; ret = Printf.sprintf "r%d" (i - 1) }
            else Exit);
    };
  add_proc
    {
      pname = "callee";
      params = [ "p" ];
      code = [| CopyFrom ("t", "p"); Exit |];
    };
  let t = solve () in
  let facts = S.results_at t ("main", calls + 1) in
  Alcotest.(check bool) "all returns uninitialised" true
    (List.for_all
       (fun i -> List.mem (Printf.sprintf "r%d" i) facts)
       (List.init calls Fun.id));
  Alcotest.(check bool) "edge count bounded" true (S.edge_count t < 5000)

let test_zero_reaches_everywhere () =
  setup ();
  let t = solve () in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "zero at %s/%d" (fst n) (snd n))
        true
        (List.mem P.zero (S.results_at t n)))
    [ ("main", 0); ("main", 1); ("main", 2); ("main", 3); ("callee", 0);
      ("callee", 1) ]

let test_unreached_proc () =
  setup ();
  add_proc { pname = "dead"; params = []; code = [| Def "x"; Exit |] };
  let t = solve () in
  Alcotest.(check (list string)) "no facts in unreached code" []
    (S.results_at t ("dead", 0))

let () =
  Alcotest.run "fd_ifds"
    [
      ( "tabulation",
        [
          Alcotest.test_case "uninitialised-variable basics" `Quick
            test_uninit_basics;
          Alcotest.test_case "context separation" `Quick test_context_separation;
          Alcotest.test_case "summary reuse" `Quick test_summary_reuse;
          Alcotest.test_case "zero fact reachability" `Quick
            test_zero_reaches_everywhere;
          Alcotest.test_case "unreached procedures" `Quick test_unreached_proc;
        ] );
    ]
