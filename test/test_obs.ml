(* Tests for Fd_obs: the metrics registry, the span tracer and the
   JSON utilities the observability layer exports through. *)

module M = Fd_obs.Metrics
module T = Fd_obs.Trace
module J = Fd_obs.Json
module R = Fd_obs.Ring
module P = Fd_obs.Profile

(* every test starts from a clean registry and trace so that tests do
   not observe each other's metrics (the reset-isolation contract) *)
let fresh () =
  M.reset ();
  T.reset ()

(* ---------------- counters and gauges ---------------- *)

let test_counter_basics () =
  fresh ();
  let c = M.counter "test.c" in
  Alcotest.(check int) "starts at zero" 0 (M.value c);
  M.incr c;
  M.incr c;
  M.add c 40;
  Alcotest.(check int) "incr and add" 42 (M.value c);
  Alcotest.(check int) "lookup by name" 42 (M.counter_value "test.c");
  Alcotest.(check int) "unknown name is 0" 0 (M.counter_value "test.absent")

let test_counter_identity () =
  fresh ();
  let a = M.counter "test.same" and b = M.counter "test.same" in
  M.incr a;
  Alcotest.(check int) "one registration per name" 1 (M.value b)

let test_gauge () =
  fresh ();
  let g = M.gauge "test.g" in
  M.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (M.gauge_value g);
  M.set_int g 7;
  Alcotest.(check (float 0.0)) "set_int" 7.0 (M.gauge_value g)

(* ---------------- histograms ---------------- *)

let test_histogram_semantics () =
  fresh ();
  let h = M.histogram "test.h" in
  Alcotest.(check int) "empty" 0 (M.hist_count h);
  List.iter (M.observe h) [ 0.001; 0.002; 0.004; 1.0 ];
  Alcotest.(check int) "count" 4 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1.007 (M.hist_sum h);
  let buckets = M.hist_buckets h in
  Alcotest.(check int) "bucket total" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
  (* bucket upper bounds are sorted and each sample is <= its bound *)
  let bounds = List.map fst buckets in
  Alcotest.(check bool) "bounds ascending" true
    (List.sort compare bounds = bounds);
  List.iter
    (fun (le, _) -> Alcotest.(check bool) "log-scale bound" true (le > 0.))
    buckets

let test_histogram_extremes () =
  fresh ();
  let h = M.histogram "test.extreme" in
  (* zero, negative and huge samples clamp into the edge buckets
     instead of escaping the array *)
  List.iter (M.observe h) [ 0.0; -1.0; 1e12 ];
  Alcotest.(check int) "count" 3 (M.hist_count h);
  Alcotest.(check int) "bucket total" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (M.hist_buckets h))

let test_time () =
  fresh ();
  let h = M.histogram "test.time" in
  let x = M.time h (fun () -> 42) in
  Alcotest.(check int) "result passes through" 42 x;
  Alcotest.(check int) "one sample" 1 (M.hist_count h);
  (* the observation happens even when the timed function raises *)
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "sample on raise" 2 (M.hist_count h)

(* ---------------- quantiles ---------------- *)

let test_quantiles_single_bucket () =
  fresh ();
  let h = M.histogram "test.q1" in
  for _ = 1 to 100 do
    M.observe h 0.001
  done;
  let hs = List.assoc "test.q1" (M.snapshot ()).M.sn_histograms in
  (* min = max, so the clamp pins every quantile to the exact value *)
  Alcotest.(check (float 1e-12)) "p50" 0.001 hs.M.hs_p50;
  Alcotest.(check (float 1e-12)) "p99" 0.001 hs.M.hs_p99

let test_quantiles_spread () =
  fresh ();
  let h = M.histogram "test.q2" in
  for _ = 1 to 90 do
    M.observe h 0.001
  done;
  for _ = 1 to 10 do
    M.observe h 1.0
  done;
  let hs = List.assoc "test.q2" (M.snapshot ()).M.sn_histograms in
  Alcotest.(check bool) "p50 <= p90" true (hs.M.hs_p50 <= hs.M.hs_p90);
  Alcotest.(check bool) "p90 <= p99" true (hs.M.hs_p90 <= hs.M.hs_p99);
  Alcotest.(check bool) "within [min,max]" true
    (hs.M.hs_p50 >= hs.M.hs_min && hs.M.hs_p99 <= hs.M.hs_max);
  (* rank 50 falls among the 0.001 samples, rank 99 among the 1.0s *)
  Alcotest.(check bool) "p50 is small" true (hs.M.hs_p50 <= 0.002);
  Alcotest.(check bool) "p99 is large" true (hs.M.hs_p99 >= 0.5)

let test_quantiles_empty () =
  fresh ();
  let h = M.histogram "test.q3" in
  ignore h;
  let hs = List.assoc "test.q3" (M.snapshot ()).M.sn_histograms in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 hs.M.hs_p50;
  Alcotest.(check (float 0.0)) "empty p99" 0.0 hs.M.hs_p99

(* ---------------- ring buffer and flight recorder ---------------- *)

let test_ring_basics () =
  let r = R.create ~capacity:4 in
  Alcotest.(check (list int)) "empty" [] (R.to_list r);
  R.push r 1;
  R.push r 2;
  Alcotest.(check (list int)) "fifo before wrap" [ 1; 2 ] (R.to_list r);
  List.iter (R.push r) [ 3; 4; 5; 6 ];
  Alcotest.(check (list int)) "newest cap items, oldest first" [ 3; 4; 5; 6 ]
    (R.to_list r);
  Alcotest.(check int) "length" 4 (R.length r);
  Alcotest.(check int) "pushed is monotonic" 6 (R.pushed r);
  R.clear r;
  Alcotest.(check (list int)) "cleared" [] (R.to_list r);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (R.create ~capacity:0))

(* wrap-around property: for any push sequence and capacity, the ring
   holds exactly the last [min cap n] values, in push order *)
let test_ring_wraparound_property =
  QCheck.Test.make ~name:"ring keeps the suffix" ~count:500
    QCheck.(pair (int_range 1 20) (small_list small_int))
    (fun (cap, xs) ->
      let r = R.create ~capacity:cap in
      List.iter (R.push r) xs;
      let n = List.length xs in
      let expect =
        List.filteri (fun i _ -> i >= n - min cap n) xs
      in
      R.to_list r = expect && R.pushed r = n && R.length r = min cap n)

let test_flight_recorder () =
  let module F = R.Flight in
  F.clear ();
  Alcotest.(check int) "starts empty" 0 (F.recorded ());
  Alcotest.(check string) "empty dump line" "" (F.dump_line ());
  F.mark "start";
  let evaluated = ref 0 in
  F.record (fun () ->
      incr evaluated;
      "lazy event");
  Alcotest.(check int) "lazy until dumped" 0 !evaluated;
  Alcotest.(check (list string)) "dump renders" [ "start"; "lazy event" ]
    (F.dump ());
  Alcotest.(check int) "recorded" 2 (F.recorded ());
  (* elision marker: more events than the dump-line limit *)
  F.clear ();
  for i = 1 to 5 do
    F.mark (string_of_int i)
  done;
  Alcotest.(check string) "limited dump elides" "4 | 5 (+3 earlier)"
    (F.dump_line ~limit:2 ());
  F.clear ();
  Alcotest.(check int) "cleared" 0 (F.recorded ())

(* ---------------- profiler ---------------- *)

let test_profile_basics () =
  P.reset ();
  Alcotest.(check bool) "disabled when empty" false (P.enabled ());
  let a = P.cell "A.m/1" and b = P.cell "B.n/0" in
  Alcotest.(check bool) "enabled after registration" true (P.enabled ());
  P.add_pop a ~seconds:0.002;
  P.add_pop a ~seconds:0.001;
  P.add_fact a;
  P.add_pop b ~seconds:0.010;
  (match P.entries () with
  | [ hot; cold ] ->
      Alcotest.(check string) "hottest first" "B.n/0" hot.P.e_name;
      Alcotest.(check int) "pops" 1 hot.P.e_pops;
      Alcotest.(check int) "facts" 1 cold.P.e_facts;
      Alcotest.(check (float 1e-9)) "time accumulates" 0.003 cold.P.e_seconds
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Alcotest.(check int) "top k" 1 (List.length (P.top ~k:1));
  (* collapsed-stack lines: flowdroid;<method> <usec> *)
  let lines = String.split_on_char '\n' (String.trim (P.collapsed ())) in
  Alcotest.(check int) "one line per method" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "frame prefix" true
        (String.length l > 10 && String.sub l 0 10 = "flowdroid;"))
    lines;
  (* same-name lookup returns the same accumulator *)
  P.add_fact (P.cell "A.m/1");
  Alcotest.(check int) "cell identity" 2
    (List.find (fun e -> e.P.e_name = "A.m/1") (P.entries ())).P.e_facts;
  P.reset ();
  Alcotest.(check (list string)) "reset drops cells" []
    (List.map (fun e -> e.P.e_name) (P.entries ()))

let test_profile_json () =
  P.reset ();
  P.add_pop (P.cell "Hot.m/0") ~seconds:0.5;
  (match P.to_json () with
  | J.List [ J.Obj fields ] ->
      Alcotest.(check bool) "method field" true
        (List.assoc_opt "method" fields = Some (J.String "Hot.m/0"));
      Alcotest.(check bool) "pops field" true
        (List.assoc_opt "pops" fields = Some (J.Int 1))
  | j -> Alcotest.failf "unexpected profile JSON %s" (J.to_string j));
  P.reset ()

(* ---------------- reset isolation ---------------- *)

let test_reset_isolates () =
  fresh ();
  let c = M.counter "test.reset.c" in
  let g = M.gauge "test.reset.g" in
  let h = M.histogram "test.reset.h" in
  M.add c 10;
  M.set g 3.0;
  M.observe h 0.5;
  M.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (M.gauge_value g);
  Alcotest.(check int) "histogram emptied" 0 (M.hist_count h);
  Alcotest.(check bool) "histogram buckets emptied" true (M.hist_buckets h = []);
  (* the handle survives the reset: no re-registration needed *)
  M.incr c;
  Alcotest.(check int) "handle still live" 1 (M.counter_value "test.reset.c")

(* ---------------- span tracing ---------------- *)

let test_span_nesting () =
  fresh ();
  Alcotest.(check int) "no open span" 0 (T.depth ());
  T.with_span "outer" (fun () ->
      Alcotest.(check int) "outer open" 1 (T.depth ());
      T.with_span "inner" (fun () ->
          Alcotest.(check int) "inner open" 2 (T.depth ()));
      Alcotest.(check int) "inner closed" 1 (T.depth ()));
  Alcotest.(check int) "balanced" 0 (T.depth ());
  let spans = T.spans () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let outer = List.nth spans 0 and inner = List.nth spans 1 in
  Alcotest.(check string) "start order" "outer" outer.T.sp_name;
  Alcotest.(check int) "outer top-level" 0 outer.T.sp_depth;
  Alcotest.(check int) "inner nested" 1 inner.T.sp_depth;
  Alcotest.(check int) "inner's parent is outer" 0 inner.T.sp_parent;
  Alcotest.(check bool) "inner within outer" true
    (inner.T.sp_start >= outer.T.sp_start
    && inner.T.sp_start +. inner.T.sp_dur
       <= outer.T.sp_start +. outer.T.sp_dur +. 1e-6)

let test_span_balance_on_raise () =
  fresh ();
  (try T.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "closed despite raise" 0 (T.depth ());
  Alcotest.check_raises "unmatched end_span"
    (Invalid_argument "Trace.end_span: no open span") (fun () -> T.end_span ())

let test_span_aggregate () =
  fresh ();
  T.with_span "phase" (fun () -> ());
  T.with_span "phase" (fun () -> T.with_span "sub" (fun () -> ()));
  match T.aggregate () with
  | [ ("phase", _, n_phase); ("sub", _, n_sub) ] ->
      Alcotest.(check int) "phase count" 2 n_phase;
      Alcotest.(check int) "sub count" 1 n_sub
  | other ->
      Alcotest.failf "unexpected aggregate of %d entries" (List.length other)

let test_trace_reset () =
  fresh ();
  T.with_span "gone" (fun () -> ());
  T.reset ();
  Alcotest.(check int) "spans dropped" 0 (List.length (T.spans ()));
  Alcotest.(check int) "stack cleared" 0 (T.depth ())

(* ---------------- JSON round-trips ---------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("flags", J.List [ J.Bool true; J.Bool false ]);
        ("n", J.Int (-42));
        ("pi", J.Float 3.25);
        ("s", J.String "a \"quoted\"\n\tstring \\ with escapes");
        ("empty_obj", J.Obj []);
        ("empty_list", J.List []);
      ]
  in
  Alcotest.(check bool) "compact round-trip" true
    (J.equal v (J.parse_string (J.to_string v)));
  Alcotest.(check bool) "indented round-trip" true
    (J.equal v (J.parse_string (J.to_string ~indent:2 v)))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse_string s with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_snapshot_roundtrip () =
  fresh ();
  M.add (M.counter "ifds.path_edges") 5742;
  M.set (M.gauge "cg.edges") 17.0;
  M.observe (M.histogram "core.analysis_seconds") 0.016;
  T.with_span "taint.solve" (fun () -> ());
  let json = Fd_obs.Export.stats_json () in
  let reparsed = J.parse_string (J.to_string ~indent:1 json) in
  Alcotest.(check bool) "stats JSON round-trips" true (J.equal json reparsed);
  (match J.member "counters" reparsed with
  | Some (J.Obj counters) ->
      Alcotest.(check bool) "counter preserved" true
        (List.assoc_opt "ifds.path_edges" counters = Some (J.Int 5742))
  | _ -> Alcotest.fail "no counters object");
  match J.member "phases" reparsed with
  | Some (J.Obj phases) ->
      Alcotest.(check bool) "phase recorded" true
        (List.mem_assoc "taint.solve" phases)
  | _ -> Alcotest.fail "no phases object"

let test_chrome_trace_valid () =
  fresh ();
  T.with_span "a" (fun () -> T.with_span "b" (fun () -> ()));
  T.with_span "c" (fun () -> ());
  let doc = J.parse_string (T.to_chrome_string ()) in
  match J.member "traceEvents" doc with
  | Some (J.List events) ->
      Alcotest.(check int) "one event per span" 3 (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (Printf.sprintf "event has %s" k)
                true
                (J.member k ev <> None))
            [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check bool) "complete event" true
            (J.member "ph" ev = Some (J.String "X")))
        events
  | _ -> Alcotest.fail "no traceEvents array"

(* the engine actually feeds the registry: analysing one app yields
   non-zero solver counters and a solve phase *)
let test_engine_populates_registry () =
  fresh ();
  let app =
    match Fd_droidbench.Suite.find "DirectLeak1" with
    | Some a -> a.Fd_droidbench.Bench_app.app_apk
    | None -> Alcotest.fail "DirectLeak1 missing from the suite"
  in
  let result = Fd_core.Infoflow.analyze_apk app in
  Alcotest.(check bool) "found the leak" true
    (result.Fd_core.Infoflow.r_findings <> []);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s > 0" name)
        true
        (M.counter_value name > 0))
    [
      "ifds.path_edges"; "ifds.worklist_pops"; "ifds.flow.normal";
      "bidi.fw_propagations"; "core.findings";
    ];
  (* the snapshot in the result record agrees with the registry *)
  let sn = result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_metrics in
  Alcotest.(check bool) "snapshot has path edges" true
    (List.assoc_opt "ifds.path_edges" sn.M.sn_counters
    = Some (M.counter_value "ifds.path_edges"));
  Alcotest.(check bool) "solve phase traced" true
    (List.exists (fun (n, _, _) -> n = "taint.solve") (T.aggregate ()))

(* with provenance on, the same app yields a witness per finding and
   the Chrome trace / witnesses JSON stay valid; with it off (the
   default, exercised above) findings carry no witness *)
let test_provenance_engine () =
  fresh ();
  let app =
    match Fd_droidbench.Suite.find "DirectLeak1" with
    | Some a -> a.Fd_droidbench.Bench_app.app_apk
    | None -> Alcotest.fail "DirectLeak1 missing from the suite"
  in
  let plain = Fd_core.Infoflow.analyze_apk app in
  List.iter
    (fun (fd : Fd_core.Bidi.finding) ->
      Alcotest.(check bool) "no witness when provenance is off" true
        (fd.Fd_core.Bidi.f_witness = []))
    plain.Fd_core.Infoflow.r_findings;
  fresh ();
  let config =
    { Fd_core.Config.default with Fd_core.Config.provenance = true }
  in
  let result = Fd_core.Infoflow.analyze_apk ~config app in
  let findings = result.Fd_core.Infoflow.r_findings in
  Alcotest.(check bool) "found the leak" true (findings <> []);
  List.iter
    (fun (fd : Fd_core.Bidi.finding) ->
      Alcotest.(check bool) "witness recorded" true
        (fd.Fd_core.Bidi.f_witness <> []))
    findings;
  Alcotest.(check bool) "provenance does not change the flows" true
    (List.map
       (fun (fd : Fd_core.Bidi.finding) ->
         (fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag,
          fd.Fd_core.Bidi.f_sink_tag))
       findings
    = List.map
        (fun (fd : Fd_core.Bidi.finding) ->
          (fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag,
           fd.Fd_core.Bidi.f_sink_tag))
        plain.Fd_core.Infoflow.r_findings);
  (* the Chrome trace is still valid JSON after a provenance-on run *)
  (match J.member "traceEvents" (J.parse_string (T.to_chrome_string ())) with
  | Some (J.List events) ->
      Alcotest.(check bool) "trace has events" true (events <> [])
  | _ -> Alcotest.fail "no traceEvents array");
  (* the witnesses array round-trips through the JSON printer/parser *)
  let wj = Fd_core.Report.witnesses_json findings in
  (match wj with
  | J.List ws ->
      Alcotest.(check int) "one entry per witnessed finding"
        (List.length findings) (List.length ws)
  | _ -> Alcotest.fail "witnesses is not a list");
  Alcotest.(check bool) "witnesses JSON round-trips" true
    (J.equal wj (J.parse_string (J.to_string ~indent:1 wj)))

let () =
  Alcotest.run "fd_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram semantics" `Quick
            test_histogram_semantics;
          Alcotest.test_case "histogram extremes" `Quick
            test_histogram_extremes;
          Alcotest.test_case "time" `Quick test_time;
          Alcotest.test_case "reset isolates" `Quick test_reset_isolates;
          Alcotest.test_case "quantiles single bucket" `Quick
            test_quantiles_single_bucket;
          Alcotest.test_case "quantiles spread" `Quick test_quantiles_spread;
          Alcotest.test_case "quantiles empty" `Quick test_quantiles_empty;
        ] );
      ( "ring",
        [
          Alcotest.test_case "basics" `Quick test_ring_basics;
          QCheck_alcotest.to_alcotest test_ring_wraparound_property;
          Alcotest.test_case "flight recorder" `Quick test_flight_recorder;
        ] );
      ( "profile",
        [
          Alcotest.test_case "basics" `Quick test_profile_basics;
          Alcotest.test_case "json" `Quick test_profile_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "balance on raise" `Quick
            test_span_balance_on_raise;
          Alcotest.test_case "aggregate" `Quick test_span_aggregate;
          Alcotest.test_case "reset" `Quick test_trace_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_valid;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine populates registry" `Quick
            test_engine_populates_registry;
          Alcotest.test_case "provenance engine run" `Quick
            test_provenance_engine;
        ] );
    ]
