(* Tests for Fd_obs: the metrics registry, the span tracer and the
   JSON utilities the observability layer exports through. *)

module M = Fd_obs.Metrics
module T = Fd_obs.Trace
module J = Fd_obs.Json

(* every test starts from a clean registry and trace so that tests do
   not observe each other's metrics (the reset-isolation contract) *)
let fresh () =
  M.reset ();
  T.reset ()

(* ---------------- counters and gauges ---------------- *)

let test_counter_basics () =
  fresh ();
  let c = M.counter "test.c" in
  Alcotest.(check int) "starts at zero" 0 (M.value c);
  M.incr c;
  M.incr c;
  M.add c 40;
  Alcotest.(check int) "incr and add" 42 (M.value c);
  Alcotest.(check int) "lookup by name" 42 (M.counter_value "test.c");
  Alcotest.(check int) "unknown name is 0" 0 (M.counter_value "test.absent")

let test_counter_identity () =
  fresh ();
  let a = M.counter "test.same" and b = M.counter "test.same" in
  M.incr a;
  Alcotest.(check int) "one registration per name" 1 (M.value b)

let test_gauge () =
  fresh ();
  let g = M.gauge "test.g" in
  M.set g 2.5;
  Alcotest.(check (float 0.0)) "set" 2.5 (M.gauge_value g);
  M.set_int g 7;
  Alcotest.(check (float 0.0)) "set_int" 7.0 (M.gauge_value g)

(* ---------------- histograms ---------------- *)

let test_histogram_semantics () =
  fresh ();
  let h = M.histogram "test.h" in
  Alcotest.(check int) "empty" 0 (M.hist_count h);
  List.iter (M.observe h) [ 0.001; 0.002; 0.004; 1.0 ];
  Alcotest.(check int) "count" 4 (M.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 1.007 (M.hist_sum h);
  let buckets = M.hist_buckets h in
  Alcotest.(check int) "bucket total" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
  (* bucket upper bounds are sorted and each sample is <= its bound *)
  let bounds = List.map fst buckets in
  Alcotest.(check bool) "bounds ascending" true
    (List.sort compare bounds = bounds);
  List.iter
    (fun (le, _) -> Alcotest.(check bool) "log-scale bound" true (le > 0.))
    buckets

let test_histogram_extremes () =
  fresh ();
  let h = M.histogram "test.extreme" in
  (* zero, negative and huge samples clamp into the edge buckets
     instead of escaping the array *)
  List.iter (M.observe h) [ 0.0; -1.0; 1e12 ];
  Alcotest.(check int) "count" 3 (M.hist_count h);
  Alcotest.(check int) "bucket total" 3
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (M.hist_buckets h))

let test_time () =
  fresh ();
  let h = M.histogram "test.time" in
  let x = M.time h (fun () -> 42) in
  Alcotest.(check int) "result passes through" 42 x;
  Alcotest.(check int) "one sample" 1 (M.hist_count h);
  (* the observation happens even when the timed function raises *)
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "sample on raise" 2 (M.hist_count h)

(* ---------------- reset isolation ---------------- *)

let test_reset_isolates () =
  fresh ();
  let c = M.counter "test.reset.c" in
  let g = M.gauge "test.reset.g" in
  let h = M.histogram "test.reset.h" in
  M.add c 10;
  M.set g 3.0;
  M.observe h 0.5;
  M.reset ();
  Alcotest.(check int) "counter zeroed" 0 (M.value c);
  Alcotest.(check (float 0.0)) "gauge zeroed" 0.0 (M.gauge_value g);
  Alcotest.(check int) "histogram emptied" 0 (M.hist_count h);
  Alcotest.(check bool) "histogram buckets emptied" true (M.hist_buckets h = []);
  (* the handle survives the reset: no re-registration needed *)
  M.incr c;
  Alcotest.(check int) "handle still live" 1 (M.counter_value "test.reset.c")

(* ---------------- span tracing ---------------- *)

let test_span_nesting () =
  fresh ();
  Alcotest.(check int) "no open span" 0 (T.depth ());
  T.with_span "outer" (fun () ->
      Alcotest.(check int) "outer open" 1 (T.depth ());
      T.with_span "inner" (fun () ->
          Alcotest.(check int) "inner open" 2 (T.depth ()));
      Alcotest.(check int) "inner closed" 1 (T.depth ()));
  Alcotest.(check int) "balanced" 0 (T.depth ());
  let spans = T.spans () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let outer = List.nth spans 0 and inner = List.nth spans 1 in
  Alcotest.(check string) "start order" "outer" outer.T.sp_name;
  Alcotest.(check int) "outer top-level" 0 outer.T.sp_depth;
  Alcotest.(check int) "inner nested" 1 inner.T.sp_depth;
  Alcotest.(check int) "inner's parent is outer" 0 inner.T.sp_parent;
  Alcotest.(check bool) "inner within outer" true
    (inner.T.sp_start >= outer.T.sp_start
    && inner.T.sp_start +. inner.T.sp_dur
       <= outer.T.sp_start +. outer.T.sp_dur +. 1e-6)

let test_span_balance_on_raise () =
  fresh ();
  (try T.with_span "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "closed despite raise" 0 (T.depth ());
  Alcotest.check_raises "unmatched end_span"
    (Invalid_argument "Trace.end_span: no open span") (fun () -> T.end_span ())

let test_span_aggregate () =
  fresh ();
  T.with_span "phase" (fun () -> ());
  T.with_span "phase" (fun () -> T.with_span "sub" (fun () -> ()));
  match T.aggregate () with
  | [ ("phase", _, n_phase); ("sub", _, n_sub) ] ->
      Alcotest.(check int) "phase count" 2 n_phase;
      Alcotest.(check int) "sub count" 1 n_sub
  | other ->
      Alcotest.failf "unexpected aggregate of %d entries" (List.length other)

let test_trace_reset () =
  fresh ();
  T.with_span "gone" (fun () -> ());
  T.reset ();
  Alcotest.(check int) "spans dropped" 0 (List.length (T.spans ()));
  Alcotest.(check int) "stack cleared" 0 (T.depth ())

(* ---------------- JSON round-trips ---------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("flags", J.List [ J.Bool true; J.Bool false ]);
        ("n", J.Int (-42));
        ("pi", J.Float 3.25);
        ("s", J.String "a \"quoted\"\n\tstring \\ with escapes");
        ("empty_obj", J.Obj []);
        ("empty_list", J.List []);
      ]
  in
  Alcotest.(check bool) "compact round-trip" true
    (J.equal v (J.parse_string (J.to_string v)));
  Alcotest.(check bool) "indented round-trip" true
    (J.equal v (J.parse_string (J.to_string ~indent:2 v)))

let test_json_errors () =
  List.iter
    (fun s ->
      match J.parse_string s with
      | exception J.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let test_snapshot_roundtrip () =
  fresh ();
  M.add (M.counter "ifds.path_edges") 5742;
  M.set (M.gauge "cg.edges") 17.0;
  M.observe (M.histogram "core.analysis_seconds") 0.016;
  T.with_span "taint.solve" (fun () -> ());
  let json = Fd_obs.Export.stats_json () in
  let reparsed = J.parse_string (J.to_string ~indent:1 json) in
  Alcotest.(check bool) "stats JSON round-trips" true (J.equal json reparsed);
  (match J.member "counters" reparsed with
  | Some (J.Obj counters) ->
      Alcotest.(check bool) "counter preserved" true
        (List.assoc_opt "ifds.path_edges" counters = Some (J.Int 5742))
  | _ -> Alcotest.fail "no counters object");
  match J.member "phases" reparsed with
  | Some (J.Obj phases) ->
      Alcotest.(check bool) "phase recorded" true
        (List.mem_assoc "taint.solve" phases)
  | _ -> Alcotest.fail "no phases object"

let test_chrome_trace_valid () =
  fresh ();
  T.with_span "a" (fun () -> T.with_span "b" (fun () -> ()));
  T.with_span "c" (fun () -> ());
  let doc = J.parse_string (T.to_chrome_string ()) in
  match J.member "traceEvents" doc with
  | Some (J.List events) ->
      Alcotest.(check int) "one event per span" 3 (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              Alcotest.(check bool)
                (Printf.sprintf "event has %s" k)
                true
                (J.member k ev <> None))
            [ "name"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check bool) "complete event" true
            (J.member "ph" ev = Some (J.String "X")))
        events
  | _ -> Alcotest.fail "no traceEvents array"

(* the engine actually feeds the registry: analysing one app yields
   non-zero solver counters and a solve phase *)
let test_engine_populates_registry () =
  fresh ();
  let app =
    match Fd_droidbench.Suite.find "DirectLeak1" with
    | Some a -> a.Fd_droidbench.Bench_app.app_apk
    | None -> Alcotest.fail "DirectLeak1 missing from the suite"
  in
  let result = Fd_core.Infoflow.analyze_apk app in
  Alcotest.(check bool) "found the leak" true
    (result.Fd_core.Infoflow.r_findings <> []);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s > 0" name)
        true
        (M.counter_value name > 0))
    [
      "ifds.path_edges"; "ifds.worklist_pops"; "ifds.flow.normal";
      "bidi.fw_propagations"; "core.findings";
    ];
  (* the snapshot in the result record agrees with the registry *)
  let sn = result.Fd_core.Infoflow.r_stats.Fd_core.Infoflow.st_metrics in
  Alcotest.(check bool) "snapshot has path edges" true
    (List.assoc_opt "ifds.path_edges" sn.M.sn_counters
    = Some (M.counter_value "ifds.path_edges"));
  Alcotest.(check bool) "solve phase traced" true
    (List.exists (fun (n, _, _) -> n = "taint.solve") (T.aggregate ()))

let () =
  Alcotest.run "fd_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter identity" `Quick test_counter_identity;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram semantics" `Quick
            test_histogram_semantics;
          Alcotest.test_case "histogram extremes" `Quick
            test_histogram_extremes;
          Alcotest.test_case "time" `Quick test_time;
          Alcotest.test_case "reset isolates" `Quick test_reset_isolates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "balance on raise" `Quick
            test_span_balance_on_raise;
          Alcotest.test_case "aggregate" `Quick test_span_aggregate;
          Alcotest.test_case "reset" `Quick test_trace_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "snapshot round-trip" `Quick
            test_snapshot_roundtrip;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_valid;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine populates registry" `Quick
            test_engine_populates_registry;
        ] );
    ]
