(* Tests for the µJimple linter: the three defect classes flag on
   purpose-built bad inputs, and the linter is clean on the full
   generated corpus and the checked-in example apps — the µJimple
   idioms those rely on (never-defined locals, branch-dependent
   initialisation, framework calls) must stay silent. *)

open Fd_ir
module L = Lint
module Gen = Fd_appgen.Generator
module Apk = Fd_frontend.Apk

let kinds issues = List.map (fun i -> i.L.li_kind) issues

let check_kinds msg expected issues =
  Alcotest.(check (list string))
    msg
    (List.map L.string_of_kind expected)
    (List.map L.string_of_kind (kinds issues))

(* ---------------- labels (token-level) ---------------- *)

let test_duplicate_label () =
  let src =
    {|class t.A extends java.lang.Object {
  method void run() {
    goto L0;
  L0:
    return;
  L0:
    return;
  }
}|}
  in
  let issues = L.lint_source ~file:"t.A.jimple" src in
  check_kinds "duplicate" [ L.Duplicate_label ] issues;
  Alcotest.(check (option int))
    "line of the second definition" (Some 6)
    (List.hd issues).L.li_line

let test_undefined_label () =
  let src =
    {|class t.A extends java.lang.Object {
  method void run() {
    goto Lnope;
  L0:
    return;
  }
}|}
  in
  check_kinds "undefined" [ L.Undefined_label ]
    (L.lint_source ~file:"t.A.jimple" src)

let test_labels_clean () =
  (* locals, @this identity and well-formed labels all involve colons
     the scan must not mistake for label definitions *)
  let src =
    {|class t.A extends java.lang.Object {
  method void run() {
    local x : java.lang.Object;
    this := @this: t.A;
    x = "v";
    goto L1;
  L0:
    return;
  L1:
    goto L0;
  }
}|}
  in
  check_kinds "clean" [] (L.lint_source ~file:"t.A.jimple" src);
  (* and the parser agrees the unit is fine *)
  Alcotest.(check int) "parses" 1 (List.length (Parser.parse_string src))

(* ---------------- use-before-def (IR-level) ---------------- *)

let parse1 src = Parser.parse_string src

let test_use_before_def () =
  let cs =
    parse1
      {|class t.A extends java.lang.Object {
  method void run() {
    local x : java.lang.Object;
    local y : java.lang.Object;
    y = x;
    x = "late";
    return;
  }
}|}
  in
  check_kinds "use before def" [ L.Use_before_def ] (L.lint_classes cs)

let test_never_defined_local_ok () =
  (* never-defined locals are legal µJimple (null-initialised); the
     checked-in reproducers rely on them *)
  let cs =
    parse1
      {|class t.A extends java.lang.Object {
  method void run() {
    local x : java.lang.Object;
    local y : java.lang.Object;
    y = x;
    return;
  }
}|}
  in
  check_kinds "never defined is silent" [] (L.lint_classes cs)

let test_branch_dependent_def_ok () =
  (* defined on one path only: a MAY analysis stays silent *)
  let cs =
    parse1
      {|class t.A extends java.lang.Object {
  method void run(int) {
    local n : int;
    local x : java.lang.Object;
    local y : java.lang.Object;
    n := @parameter0;
    if n == 0 goto L0;
    x = "set";
  L0:
    y = x;
    return;
  }
}|}
  in
  check_kinds "branch-dependent def is silent" [] (L.lint_classes cs)

(* ---------------- call arity (IR-level) ---------------- *)

let test_arity_mismatch () =
  let cs =
    parse1
      {|class t.A extends java.lang.Object {
  method void run() {
    staticinvoke t.A#two("a");
    return;
  }
  method void two(java.lang.String, java.lang.String) {
    return;
  }
}|}
  in
  check_kinds "arity" [ L.Arity_mismatch ] (L.lint_classes cs)

let test_arity_framework_ok () =
  (* calls into undeclared (framework) classes are not ours to judge *)
  let cs =
    parse1
      {|class t.A extends java.lang.Object {
  method void run() {
    staticinvoke android.util.Log#i("t", "m");
    return;
  }
}|}
  in
  check_kinds "framework silent" [] (L.lint_classes cs)

let test_arity_inherited () =
  (* the declared superclass chain supplies the signature *)
  let cs =
    parse1
      {|class t.Base extends java.lang.Object {
  method void two(java.lang.String, java.lang.String) {
    return;
  }
}
class t.Sub extends t.Base {
  method void run() {
    local s : t.Sub;
    s = new t.Sub;
    virtualinvoke s.t.Sub#two("only-one");
    return;
  }
}|}
  in
  check_kinds "inherited arity" [ L.Arity_mismatch ] (L.lint_classes cs)

(* ---------------- lenient frontend wiring ---------------- *)

let manifest =
  Apk.simple_manifest ~package:"t" [ (Fd_frontend.Framework.Activity, "t.A", []) ]

let test_lenient_diags () =
  let src =
    {|class t.A extends android.app.Activity {
  method void onCreate(android.os.Bundle) {
    local x : java.lang.Object;
    local y : java.lang.Object;
    y = x;
    x = "late";
    return;
  }
}|}
  in
  let apk = Apk.make_text ~mode:`Lenient "t" ~manifest [ src ] in
  let has_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let lint_diags =
    List.filter
      (fun d -> has_sub (Fd_resilience.Diag.to_string d) "lint: ")
      apk.Apk.apk_diags
  in
  Alcotest.(check int) "one lint diag" 1 (List.length lint_diags);
  (* strict mode must not lint (and must not fail on lint issues) *)
  let strict = Apk.make_text ~mode:`Strict "t" ~manifest [ src ] in
  Alcotest.(check int) "strict: no diags" 0 (List.length strict.Apk.apk_diags)

(* ---------------- cleanliness sweeps ---------------- *)

let lint_apk (apk : Apk.t) =
  L.lint_classes apk.Apk.apk_classes
  @ List.concat_map
      (fun c -> L.lint_source ~file:c.Jclass.c_name (Pretty.class_to_string c))
      apk.Apk.apk_classes

let test_corpus_clean () =
  List.iter
    (fun profile ->
      List.iter
        (fun (ga : Gen.gen_app) ->
          match lint_apk ga.Gen.ga_apk with
          | [] -> ()
          | i :: _ ->
              Alcotest.failf "%s: %s" ga.Gen.ga_name (L.string_of_issue i))
        (Gen.corpus ~profile ~seed:20140609 40))
    [ Gen.Play; Gen.Malware ]

let test_examples_clean () =
  let roots = [ "../examples/apps"; "../examples/repro" ] in
  let apps =
    List.concat_map
      (fun root ->
        if Sys.file_exists root && Sys.is_directory root then
          Sys.readdir root |> Array.to_list |> List.sort compare
          |> List.filter_map (fun d ->
                 let p = Filename.concat root d in
                 if
                   Sys.is_directory p
                   && Sys.file_exists (Filename.concat p "AndroidManifest.xml")
                 then Some p
                 else None)
        else [])
      roots
  in
  Alcotest.(check bool) "found example apps" true (apps <> []);
  List.iter
    (fun dir ->
      let apk = Apk.of_dir dir in
      match lint_apk apk with
      | [] -> ()
      | i :: _ -> Alcotest.failf "%s: %s" dir (L.string_of_issue i))
    apps

let () =
  Alcotest.run "fd_lint"
    [
      ( "labels",
        [
          Alcotest.test_case "duplicate" `Quick test_duplicate_label;
          Alcotest.test_case "undefined" `Quick test_undefined_label;
          Alcotest.test_case "clean" `Quick test_labels_clean;
        ] );
      ( "use-before-def",
        [
          Alcotest.test_case "flags" `Quick test_use_before_def;
          Alcotest.test_case "never-defined ok" `Quick
            test_never_defined_local_ok;
          Alcotest.test_case "branch-dependent ok" `Quick
            test_branch_dependent_def_ok;
        ] );
      ( "arity",
        [
          Alcotest.test_case "flags" `Quick test_arity_mismatch;
          Alcotest.test_case "framework ok" `Quick test_arity_framework_ok;
          Alcotest.test_case "inherited" `Quick test_arity_inherited;
        ] );
      ( "wiring",
        [ Alcotest.test_case "lenient diags" `Quick test_lenient_diags ] );
      ( "clean",
        [
          Alcotest.test_case "generated corpus" `Quick test_corpus_clean;
          Alcotest.test_case "examples" `Quick test_examples_clean;
        ] );
    ]
