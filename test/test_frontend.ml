(* Tests for the Android frontend: manifest parsing, layout parsing,
   the source/sink configuration format, and the rules format. *)

open Fd_frontend
module X = Fd_xml.Xml

(* ---------------- manifest ---------------- *)

let manifest_src =
  {|<?xml version="1.0" encoding="utf-8"?>
<manifest package="de.ecspride">
  <uses-permission android:name="android.permission.SEND_SMS"/>
  <uses-permission android:name="android.permission.INTERNET"/>
  <application android:label="Leak">
    <activity android:name=".MainActivity">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <activity android:name="de.ecspride.Second" android:enabled="false"/>
    <service android:name=".Worker"/>
    <receiver android:name=".BootListener" android:exported="true">
      <intent-filter>
        <action android:name="android.intent.action.BOOT_COMPLETED"/>
      </intent-filter>
    </receiver>
  </application>
</manifest>|}

let test_manifest_parse () =
  let m = Manifest.parse manifest_src in
  Alcotest.(check string) "package" "de.ecspride" m.Manifest.package;
  Alcotest.(check int) "4 components" 4 (List.length m.Manifest.components);
  Alcotest.(check int) "3 enabled" 3 (List.length (Manifest.enabled_components m));
  Alcotest.(check (list string))
    "permissions"
    [ "android.permission.SEND_SMS"; "android.permission.INTERNET" ]
    m.Manifest.permissions;
  (match Manifest.launcher m with
  | Some c ->
      Alcotest.(check string) "launcher resolved" "de.ecspride.MainActivity"
        c.Manifest.comp_class
  | None -> Alcotest.fail "no launcher");
  match Manifest.find m "de.ecspride.BootListener" with
  | Some c ->
      Alcotest.(check bool) "receiver kind" true
        (c.Manifest.comp_kind = Framework.Receiver);
      Alcotest.(check bool) "exported" true c.Manifest.comp_exported;
      Alcotest.(check (list string)) "actions"
        [ "android.intent.action.BOOT_COMPLETED" ]
        c.Manifest.comp_actions
  | None -> Alcotest.fail "receiver missing"

let test_manifest_relative_names () =
  let m = Manifest.parse manifest_src in
  Alcotest.(check bool) "dot-relative resolved" true
    (Manifest.find m "de.ecspride.Worker" <> None)

let test_manifest_errors () =
  (match Manifest.parse "<notmanifest/>" with
  | exception Manifest.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed");
  match
    Manifest.parse
      {|<manifest package="p"><application><activity/></application></manifest>|}
  with
  | exception Manifest.Malformed _ -> ()
  | _ -> Alcotest.fail "component without name should fail"

(* ---------------- layout ---------------- *)

let layout_src =
  {|<?xml version="1.0" encoding="utf-8"?>
<LinearLayout android:orientation="vertical">
  <EditText android:id="@+id/username" android:inputType="text"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
  <LinearLayout>
    <TextView android:id="@+id/label"/>
  </LinearLayout>
</LinearLayout>|}

let test_layout_parse () =
  let l = Layout.parse [ ("activity_main", layout_src) ] in
  Alcotest.(check int) "4 controls" 4 (List.length l.Layout.controls);
  let pwd = Option.get (Layout.control_by_name l "pwdString") in
  Alcotest.(check bool) "password flagged" true pwd.Layout.ctl_password;
  let user = Option.get (Layout.control_by_name l "username") in
  Alcotest.(check bool) "username not password" false user.Layout.ctl_password;
  Alcotest.(check string) "widget class" "android.widget.EditText"
    pwd.Layout.ctl_class;
  Alcotest.(check (list string)) "xml callbacks" [ "sendMessage" ]
    (Layout.xml_callbacks l "activity_main");
  (* ids are dense from the aapt-style base, in declaration order *)
  Alcotest.(check int) "first id" Layout.id_base user.Layout.ctl_id;
  Alcotest.(check int) "second id" (Layout.id_base + 1) pwd.Layout.ctl_id;
  Alcotest.(check (option int)) "layout id" (Some Layout.layout_id_base)
    (Layout.layout_id l "activity_main");
  match Layout.control_by_id l (Layout.id_base + 1) with
  | Some c -> Alcotest.(check string) "lookup by id" "pwdString" c.Layout.ctl_name
  | None -> Alcotest.fail "id lookup failed"

let test_layout_input_type_union () =
  let l =
    Layout.parse
      [ ("l", {|<EditText android:id="@+id/x" android:inputType="text|textPassword"/>|}) ]
  in
  let c = Option.get (Layout.control_by_name l "x") in
  Alcotest.(check bool) "union input type" true c.Layout.ctl_password

(* ---------------- source/sink format ---------------- *)

let test_susi_parse () =
  let defs =
    Sourcesink.parse_string
      {|% comment line
<android.telephony.TelephonyManager: java.lang.String getDeviceId()> -> _SOURCE_ {IMEI}
<a.B: void cb(android.location.Location)> param0 -> _SOURCE_ {LOCATION}
<android.util.Log: int d(java.lang.String,java.lang.String)> -> _SINK_ {LOG}
<x.Y: void f()> -> _SINK_
|}
  in
  Alcotest.(check int) "4 defs" 4 (List.length defs);
  let t = Sourcesink.create defs in
  Alcotest.(check bool) "source found" true
    (Sourcesink.is_return_source t ~cls:"android.telephony.TelephonyManager"
       ~mname:"getDeviceId"
    = Some Sourcesink.Imei);
  Alcotest.(check bool) "param source" true
    (match Sourcesink.param_source t ~cls:"a.B" ~mname:"cb" with
    | Some ([ 0 ], Sourcesink.Location) -> true
    | _ -> false);
  Alcotest.(check bool) "sink" true
    (Sourcesink.is_sink t ~cls:"android.util.Log" ~mname:"d"
    = Some Sourcesink.Log);
  Alcotest.(check bool) "category defaults to generic" true
    (Sourcesink.is_sink t ~cls:"x.Y" ~mname:"f" = Some Sourcesink.Generic)

let test_susi_errors () =
  let bad =
    [
      "nonsense line";
      "<a.B void f()> -> _SOURCE_";
      "<a.B: void f()> -> _NEITHER_";
      "<a.B: void f()> param0 -> _SINK_";
      "<a.B: void f()> -> _SOURCE_ CAT";
    ]
  in
  List.iter
    (fun line ->
      match Sourcesink.parse_string line with
      | exception Sourcesink.Bad_line _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected Bad_line on %S" line))
    bad

let test_default_config_parses () =
  let t = Sourcesink.default () in
  Alcotest.(check bool) "IMEI source present" true
    (Sourcesink.is_return_source t ~cls:"android.telephony.TelephonyManager"
       ~mname:"getDeviceId"
    <> None);
  Alcotest.(check bool) "SMS sink present" true
    (Sourcesink.is_sink t ~cls:"android.telephony.SmsManager"
       ~mname:"sendTextMessage"
    <> None);
  Alcotest.(check bool) "putExtra is NOT a sink (IntentSink1 design)" true
    (Sourcesink.is_sink t ~cls:"android.content.Intent" ~mname:"putExtra" = None)

(* ---------------- rules format ---------------- *)

let test_rules_parse () =
  let r =
    Rules.of_string
      {|% wrapper rules
java.lang.StringBuilder append : recv<-args, ret<-recv
java.util.Map get : ret<-recv
java.lang.String length :
java.lang.System arraycopy : arg2<-arg0
|}
  in
  (match Rules.lookup r ~cls:"java.lang.StringBuilder" ~mname:"append" with
  | Some [ e1; e2 ] ->
      Alcotest.(check bool) "recv<-args" true
        (e1.Rules.eff_to = Rules.To_recv && e1.Rules.eff_from = Rules.From_any_arg);
      Alcotest.(check bool) "ret<-recv" true
        (e2.Rules.eff_to = Rules.To_ret && e2.Rules.eff_from = Rules.From_recv)
  | _ -> Alcotest.fail "append rule wrong");
  Alcotest.(check bool) "empty effect list registered" true
    (Rules.lookup r ~cls:"java.lang.String" ~mname:"length" = Some []);
  (match Rules.lookup r ~cls:"java.lang.System" ~mname:"arraycopy" with
  | Some [ e ] ->
      Alcotest.(check bool) "arg2<-arg0" true
        (e.Rules.eff_to = Rules.To_arg 2 && e.Rules.eff_from = Rules.From_arg 0)
  | _ -> Alcotest.fail "arraycopy rule wrong");
  Alcotest.(check bool) "missing rule" true
    (Rules.lookup r ~cls:"x.Y" ~mname:"z" = None)

let test_rules_errors () =
  List.iter
    (fun line ->
      match Rules.parse_string line with
      | exception Rules.Bad_rule _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "expected Bad_rule on %S" line))
    [ "no colon here"; "a.B m : garbage"; "a.B m : ret<-nowhere"; "a.B m : what<-recv" ]

let test_default_rules_parse () =
  let w = Rules.default_wrappers () in
  Alcotest.(check bool) "StringBuilder.append modelled" true
    (Rules.mem w ~cls:"java.lang.StringBuilder" ~mname:"append");
  Alcotest.(check bool) "Map.put modelled" true
    (Rules.mem w ~cls:"java.util.Map" ~mname:"put");
  let n = Rules.default_natives () in
  Alcotest.(check bool) "arraycopy modelled" true
    (Rules.mem n ~cls:"java.lang.System" ~mname:"arraycopy")

(* ---------------- framework skeleton ---------------- *)

let test_framework_hierarchy () =
  let sc = Framework.fresh_scene () in
  let open Fd_ir in
  Alcotest.(check bool) "Activity <: Context" true
    (Scene.is_subtype sc "android.app.Activity" "android.content.Context");
  Alcotest.(check bool) "EditText <: View" true
    (Scene.is_subtype sc "android.widget.EditText" "android.view.View");
  Alcotest.(check bool) "interface registered" true
    (match Scene.find_class sc "android.view.View$OnClickListener" with
    | Some c -> c.Jclass.c_is_interface
    | None -> false)

let test_component_kind () =
  let sc = Framework.fresh_scene () in
  let open Fd_ir in
  Scene.add_class sc
    (Build.cls "app.Main" ~super:"android.app.Activity" []);
  Scene.add_class sc (Build.cls "app.Svc" ~super:"android.app.Service" []);
  Scene.add_class sc (Build.cls "app.Plain" []);
  Alcotest.(check bool) "activity" true
    (Framework.component_kind_of sc "app.Main" = Some Framework.Activity);
  Alcotest.(check bool) "service" true
    (Framework.component_kind_of sc "app.Svc" = Some Framework.Service);
  Alcotest.(check bool) "plain" true
    (Framework.component_kind_of sc "app.Plain" = None)

let test_callback_methods_of () =
  let sc = Framework.fresh_scene () in
  let open Fd_ir in
  Scene.add_class sc
    (Build.cls "app.Handler" ~interfaces:[ "android.view.View$OnClickListener" ]
       [
         Build.meth "onClick" ~params:[ Fd_ir.Types.Ref "android.view.View" ]
           (fun m -> Build.ret m);
       ]);
  let cbs = Framework.callback_methods_of sc "app.Handler" in
  Alcotest.(check int) "one callback" 1 (List.length cbs);
  let iface, decl, _ = List.hd cbs in
  Alcotest.(check string) "interface" "android.view.View$OnClickListener" iface;
  Alcotest.(check string) "declared on" "app.Handler" decl.Jclass.c_name

(* ---------------- APK loading ---------------- *)

let test_apk_load_validation () =
  let open Fd_ir in
  let manifest =
    Apk.simple_manifest ~package:"t" [ (Framework.Activity, "t.Main", []) ]
  in
  (* missing class *)
  (match Apk.load (Apk.make "bad1" ~manifest []) with
  | exception Apk.Load_error _ -> ()
  | _ -> Alcotest.fail "expected load error for missing class");
  (* wrong superclass *)
  (match
     Apk.load (Apk.make "bad2" ~manifest [ Build.cls "t.Main" [] ])
   with
  | exception Apk.Load_error _ -> ()
  | _ -> Alcotest.fail "expected load error for non-activity");
  (* good *)
  let good =
    Apk.make "good" ~manifest
      [ Build.cls "t.Main" ~super:"android.app.Activity" [] ]
  in
  let loaded = Apk.load good in
  Alcotest.(check int) "one component" 1 (List.length loaded.Apk.components)

let test_apk_text_source () =
  let manifest =
    Apk.simple_manifest ~package:"t" [ (Framework.Activity, "t.Main", []) ]
  in
  let apk =
    Apk.make_text "textual" ~manifest
      [ {|class t.Main extends android.app.Activity {
            method void onCreate(android.os.Bundle) {
              this := @this: t.Main;
              return;
            }
          }|} ]
  in
  let loaded = Apk.load apk in
  Alcotest.(check bool) "class parsed into scene" true
    (Fd_ir.Scene.mem loaded.Apk.scene "t.Main")

(* the on-disk sample app shipped with the repository *)
let test_shipped_app () =
  let dir = "../examples/apps/leakage_app" in
  if Sys.file_exists dir then begin
    let apk = Apk.of_dir dir in
    let loaded = Apk.load apk in
    Alcotest.(check int) "one component" 1
      (List.length loaded.Apk.components);
    Alcotest.(check bool) "classes parsed" true
      (Fd_ir.Scene.mem loaded.Apk.scene "de.ecspride.LeakageApp"
      && Fd_ir.Scene.mem loaded.Apk.scene "de.ecspride.User");
    let pwd = Layout.control_by_name loaded.Apk.layout "pwdString" in
    Alcotest.(check bool) "password control" true
      (match pwd with Some c -> c.Layout.ctl_password | None -> false)
  end
  else Alcotest.skip ()

let () =
  Alcotest.run "fd_frontend"
    [
      ( "manifest",
        [
          Alcotest.test_case "parse" `Quick test_manifest_parse;
          Alcotest.test_case "relative names" `Quick test_manifest_relative_names;
          Alcotest.test_case "errors" `Quick test_manifest_errors;
        ] );
      ( "layout",
        [
          Alcotest.test_case "parse" `Quick test_layout_parse;
          Alcotest.test_case "inputType union" `Quick test_layout_input_type_union;
        ] );
      ( "sources-sinks",
        [
          Alcotest.test_case "susi format" `Quick test_susi_parse;
          Alcotest.test_case "format errors" `Quick test_susi_errors;
          Alcotest.test_case "default config" `Quick test_default_config_parses;
        ] );
      ( "rules",
        [
          Alcotest.test_case "parse" `Quick test_rules_parse;
          Alcotest.test_case "errors" `Quick test_rules_errors;
          Alcotest.test_case "defaults" `Quick test_default_rules_parse;
        ] );
      ( "framework",
        [
          Alcotest.test_case "hierarchy" `Quick test_framework_hierarchy;
          Alcotest.test_case "component kinds" `Quick test_component_kind;
          Alcotest.test_case "callback methods" `Quick test_callback_methods_of;
        ] );
      ( "apk",
        [
          Alcotest.test_case "load validation" `Quick test_apk_load_validation;
          Alcotest.test_case "textual classes" `Quick test_apk_text_source;
          Alcotest.test_case "shipped sample app" `Quick test_shipped_app;
        ] );
    ]
