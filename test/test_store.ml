(* Persistent summary store (DESIGN.md §13):

   - flag off ⇒ no store metrics registered, identical findings
     (export byte-identity);
   - canonical payload encodings are identical across independent
     intern pools (two fresh loads of the same app, qcheck over
     generated apps);
   - decode ∘ encode round-trips every stored fact and report;
   - hot-vs-cold verdict equality over DroidBench and a generated
     corpus slice (the correctness gate of the perf optimisation);
   - corrupt / truncated / alien entries degrade to misses with
     diagnostics, never to crashes or wrong verdicts;
   - an unwritable store directory degrades to read-only;
   - concurrent writers under [Pool.map] leave only valid entries. *)

module Json = Fd_obs.Json
module Metrics = Fd_obs.Metrics
module Config = Fd_core.Config
module Summary = Fd_core.Summary
module Taint = Fd_core.Taint
module Store = Fd_store.Store
module Gen = Fd_appgen.Generator
module Suite = Fd_droidbench.Suite

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)
(* ------------------------------------------------------------------ *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let analyze ?dir apk =
  let config = { Config.default with Config.summary_store = dir } in
  Fd_core.Infoflow.analyze_apk ~config apk

(* order-insensitive finding key: source tag, sink statement, sink tag *)
let keys_of (r : Fd_core.Infoflow.result) =
  List.map
    (fun (f : Fd_core.Bidi.finding) ->
      ( f.Fd_core.Bidi.f_source.Taint.si_tag,
        Fd_callgraph.Icfg.string_of_node f.Fd_core.Bidi.f_sink_node,
        f.Fd_core.Bidi.f_sink_tag ))
    r.Fd_core.Infoflow.r_findings
  |> List.sort_uniq compare

let gen_apk ~profile ~seed index =
  (Gen.generate ~profile ~seed index).Gen.ga_apk

(* a capture backend: records every persisted payload, always misses
   on load — the analysis runs cold against an in-memory "store" *)
let with_capture f =
  let saved = !Summary.provider in
  let captured = ref [] in
  let backend =
    {
      Summary.be_load = (fun ~method_digest:_ -> None);
      be_store =
        (fun ~method_digest ~payload ->
          captured := (method_digest, Json.to_string payload) :: !captured);
      be_diag = (fun _ -> ());
    }
  in
  Summary.provider := (fun ~dir:_ ~config_digest:_ -> Some backend);
  Fun.protect
    ~finally:(fun () -> Summary.provider := saved)
    (fun () -> f captured)

let captured_payloads apk =
  with_capture (fun captured ->
      ignore (analyze ~dir:"capture" apk);
      List.sort compare !captured)

(* ------------------------------------------------------------------ *)
(* flag off ⇒ byte-identical observable state                          *)
(* ------------------------------------------------------------------ *)

(* runs first: the store metrics are registered lazily by the first
   store-enabled run, so a store-less run must leave no [store.*]
   trace in the metrics export at all *)
let test_flag_off_identity () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:7 1 in
  let baseline = keys_of (analyze apk) in
  Fd_store.Store.install ();
  Metrics.reset ();
  let again = keys_of (analyze apk) in
  Alcotest.(check bool) "findings unchanged" true (baseline = again);
  let sn = Metrics.snapshot () in
  let store_metrics =
    List.filter
      (fun (name, _) ->
        String.length name >= 6 && String.sub name 0 6 = "store.")
      sn.Metrics.sn_counters
  in
  Alcotest.(check (list (pair string int)))
    "no store.* counters registered" [] store_metrics

(* ------------------------------------------------------------------ *)
(* stable keys across independent intern pools                         *)
(* ------------------------------------------------------------------ *)

(* Two separate [analyze_apk] calls load the app twice: fresh scene,
   fresh locals, fresh solver intern tables.  Analysing an unrelated
   app in between shifts any global interning state.  The canonical
   payloads must come out identical — that is exactly the property
   that lets one process decode another's summaries. *)
let prop_stable_encoding =
  QCheck.Test.make ~name:"payload encoding survives an intern-pool change"
    ~count:6
    QCheck.(int_range 0 1000)
    (fun seed ->
      let apk = gen_apk ~profile:Gen.Malware ~seed 2 in
      let first = captured_payloads apk in
      ignore (analyze (gen_apk ~profile:Gen.Play ~seed:(seed + 1) 3));
      let second = captured_payloads apk in
      first <> [] && first = second)

(* ------------------------------------------------------------------ *)
(* decode/encode round-trip                                            *)
(* ------------------------------------------------------------------ *)

(* a sentinel entry source that cannot collide with any real source:
   generated apps never carry this ground-truth tag *)
let sentinel_source (r : Fd_core.Infoflow.result) =
  match r.Fd_core.Infoflow.r_findings with
  | f :: _ ->
      Some
        {
          f.Fd_core.Bidi.f_source with
          Taint.si_tag = Some "store-test-sentinel";
          Taint.si_desc = "store-test sentinel entry source";
        }
  | [] -> None

let test_roundtrip () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:11 1 in
  let r = analyze apk in
  let entry_source = sentinel_source r in
  Alcotest.(check bool) "app has a finding" true (entry_source <> None);
  let payloads = captured_payloads apk in
  Alcotest.(check bool) "payloads captured" true (payloads <> []);
  let facts = ref 0 and reports = ref 0 in
  List.iter
    (fun (_digest, s) ->
      let payload = Json.parse_string s in
      match Json.member "cxs" payload with
      | Some (Json.Obj cxs) ->
          List.iter
            (fun (_entry_key, cx) ->
              (match Json.member "s" cx with
              | Some (Json.List sums) ->
                  List.iter
                    (function
                      | Json.List [ _idx; fj ] ->
                          incr facts;
                          let f = Summary.dec_fact ~entry_source fj in
                          if
                            not
                              (Json.equal (Summary.enc_fact ~entry_source f) fj)
                          then Alcotest.fail ("fact round-trip: " ^ Json.to_string fj)
                      | _ -> Alcotest.fail "malformed summary element")
                    sums
              | _ -> Alcotest.fail "context without summaries");
              match Json.member "r" cx with
              | Some (Json.List _) -> incr reports
              | _ -> Alcotest.fail "context without report list")
            cxs
      | _ -> Alcotest.fail "payload without cxs")
    payloads;
  Alcotest.(check bool) "facts round-tripped" true (!facts > 0)

(* ------------------------------------------------------------------ *)
(* hot vs cold verdict equality                                        *)
(* ------------------------------------------------------------------ *)

let hot_cold_equal name apks =
  let dir = temp_dir "fdstore-hotcold" in
  Fd_store.Store.install ();
  List.iter
    (fun apk ->
      let off = keys_of (analyze apk) in
      let cold = keys_of (analyze ~dir apk) in
      let hot = keys_of (analyze ~dir apk) in
      Alcotest.(check bool)
        (name ^ ": cold run = store off") true (off = cold);
      Alcotest.(check bool) (name ^ ": hot run = store off") true (off = hot))
    apks;
  Alcotest.(check bool)
    (name ^ ": store populated") true
    (Store.scan dir <> [])

let test_hot_cold_droidbench () =
  hot_cold_equal "droidbench"
    (List.map (fun a -> a.Fd_droidbench.Bench_app.app_apk) Suite.all)

let test_hot_cold_corpus () =
  hot_cold_equal "corpus"
    (List.map
       (fun ga -> ga.Gen.ga_apk)
       (Gen.corpus ~profile:Gen.Malware ~seed:20140609 8))

(* ------------------------------------------------------------------ *)
(* corruption handling                                                 *)
(* ------------------------------------------------------------------ *)

let test_corruption () =
  let dir = temp_dir "fdstore-corrupt" in
  Fd_store.Store.install ();
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 1 in
  let baseline = keys_of (analyze apk) in
  ignore (analyze ~dir apk);
  ignore (Store.drain_diags ());
  let entries = Store.scan dir in
  Alcotest.(check bool) "entries written" true (List.length entries >= 2);
  (* damage every entry a different way *)
  let overwrite path bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  List.iteri
    (fun i (e : Store.entry_info) ->
      match i mod 3 with
      | 0 -> overwrite e.Store.ei_path "FDS" (* truncated mid-header *)
      | 1 -> overwrite e.Store.ei_path "garbage\nnot json" (* alien *)
      | _ ->
          (* valid framing, corrupted payload: checksum must catch it *)
          let ic = open_in_bin e.Store.ei_path in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let b = Bytes.of_string s in
          let last = Bytes.length b - 1 in
          Bytes.set b last (if Bytes.get b last = '}' then ']' else '}');
          overwrite e.Store.ei_path (Bytes.to_string b))
    entries;
  List.iter
    (fun e ->
      match Store.verify_entry e with
      | Ok () -> Alcotest.fail ("verify missed damage in " ^ e.Store.ei_path)
      | Error _ -> ())
    entries;
  let hot = keys_of (analyze ~dir apk) in
  Alcotest.(check bool) "verdicts survive corruption" true (baseline = hot);
  Alcotest.(check bool)
    "damage surfaced as diagnostics" true
    (Store.drain_diags () <> [])

let test_read_only_degradation () =
  let dir = temp_dir "fdstore-ro" in
  Fd_store.Store.install ();
  let apk = gen_apk ~profile:Gen.Malware ~seed:6 1 in
  let baseline = keys_of (analyze apk) in
  (* a regular file squatting on the format directory defeats mkdir
     even for root (chmod-based unwritability would not) *)
  let format_dir =
    Printf.sprintf "format-v%d" Summary.format_version
  in
  let oc = open_out (Filename.concat dir format_dir) in
  output_string oc "not a directory";
  close_out oc;
  ignore (Store.drain_diags ());
  let r = keys_of (analyze ~dir apk) in
  Alcotest.(check bool) "verdicts unchanged" true (baseline = r);
  Alcotest.(check bool)
    "unwritable dir warned" true
    (Store.drain_diags () <> [])

(* ------------------------------------------------------------------ *)
(* gc determinism                                                      *)
(* ------------------------------------------------------------------ *)

(* with every mtime tied, eviction order is decided purely by the
   (mtime, path) sort — the survivor set must match a replay of that
   policy, independent of readdir order *)
let test_gc_deterministic () =
  let dir = temp_dir "fdstore-gc" in
  Fd_store.Store.install ();
  List.iter
    (fun ga -> ignore (analyze ~dir ga.Gen.ga_apk))
    (Gen.corpus ~profile:Gen.Malware ~seed:777 4);
  let entries = Store.scan dir in
  Alcotest.(check bool) "enough entries to evict" true
    (List.length entries >= 4);
  (* force ties: identical mtimes everywhere *)
  let t = Unix.time () -. 1000. in
  List.iter (fun e -> Unix.utimes e.Store.ei_path t t) entries;
  let entries = Store.scan dir in
  let total = List.fold_left (fun a e -> a + e.Store.ei_bytes) 0 entries in
  let max_bytes = total / 2 in
  (* replay the documented policy: sort by (mtime, path), evict from
     the front until the excess is gone *)
  let expected_survivors =
    let by_age =
      List.sort
        (fun a b ->
          compare
            (a.Store.ei_mtime, a.Store.ei_path)
            (b.Store.ei_mtime, b.Store.ei_path))
        entries
    in
    let excess = ref (total - max_bytes) in
    List.filter
      (fun e ->
        if !excess > 0 then begin
          excess := !excess - e.Store.ei_bytes;
          false
        end
        else true)
      by_age
    |> List.map (fun e -> e.Store.ei_path)
    |> List.sort compare
  in
  let deleted, freed = Store.gc dir ~max_bytes in
  Alcotest.(check bool) "something evicted" true (deleted > 0 && freed > 0);
  let survivors =
    Store.scan dir |> List.map (fun e -> e.Store.ei_path) |> List.sort compare
  in
  Alcotest.(check (list string)) "survivors match (mtime, path) policy"
    expected_survivors survivors;
  (* idempotent second pass: already under budget *)
  Alcotest.(check (pair int int)) "second gc is a no-op" (0, 0)
    (Store.gc dir ~max_bytes:total)

(* ------------------------------------------------------------------ *)
(* concurrent writers                                                  *)
(* ------------------------------------------------------------------ *)

let test_concurrent_writers () =
  let dir = temp_dir "fdstore-conc" in
  Fd_store.Store.install ();
  let apks =
    List.map
      (fun ga -> ga.Gen.ga_apk)
      (Gen.corpus ~profile:Gen.Malware ~seed:424242 8)
  in
  let sequential = List.map (fun apk -> keys_of (analyze apk)) apks in
  let parallel =
    Fd_util.Pool.map ~jobs:4
      (fun apk -> keys_of (analyze ~dir apk))
      apks
  in
  Alcotest.(check bool)
    "parallel cold = sequential store-off" true (sequential = parallel);
  let entries = Store.scan dir in
  Alcotest.(check bool) "entries written" true (entries <> []);
  List.iter
    (fun e ->
      match Store.verify_entry e with
      | Ok () -> ()
      | Error reason ->
          Alcotest.fail
            (Printf.sprintf "invalid entry after racing writers: %s: %s"
               e.Store.ei_path reason))
    entries;
  let hot =
    Fd_util.Pool.map ~jobs:4
      (fun apk -> keys_of (analyze ~dir apk))
      apks
  in
  Alcotest.(check bool) "parallel hot = sequential store-off" true
    (sequential = hot)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fd_store"
    [
      ( "store",
        [
          Alcotest.test_case "flag off: identical, no store metrics" `Quick
            test_flag_off_identity;
          QCheck_alcotest.to_alcotest prop_stable_encoding;
          Alcotest.test_case "payload decode/encode round-trip" `Quick
            test_roundtrip;
          Alcotest.test_case "hot vs cold: droidbench" `Slow
            test_hot_cold_droidbench;
          Alcotest.test_case "hot vs cold: corpus slice" `Slow
            test_hot_cold_corpus;
          Alcotest.test_case "corruption degrades to misses" `Quick
            test_corruption;
          Alcotest.test_case "unwritable dir degrades to read-only" `Quick
            test_read_only_degradation;
          Alcotest.test_case "gc evicts in (mtime, path) order" `Quick
            test_gc_deterministic;
          Alcotest.test_case "concurrent writers under Pool.map" `Slow
            test_concurrent_writers;
        ] );
    ]
