(* Cross-cutting property tests over the engines:

   - soundness on the supported fragment: any leak the concrete
     interpreter observes on a generated app is either reported by the
     static analysis or classified as an explained false negative
     carrying a documented limitation category
     (dynamic ⊆ static ∪ explained-FN);
   - over-approximation ordering: shortening the access-path bound k
     never loses findings (truncation widens);
   - determinism: repeated analyses agree;
   - no sources -> no findings. *)

open Fd_ir
module B = Build
module T = Types
module Gen = Fd_appgen.Generator

let static_findings ?(config = Fd_core.Config.default) apk =
  let r = Fd_core.Infoflow.analyze_apk ~config apk in
  List.map
    (fun (fd : Fd_core.Bidi.finding) ->
      ( fd.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag,
        fd.Fd_core.Bidi.f_sink_tag ))
    r.Fd_core.Infoflow.r_findings
  |> List.sort_uniq compare

let dynamic_findings apk =
  match Fd_frontend.Apk.load apk with
  | exception Fd_frontend.Apk.Load_error _ -> []
  | loaded ->
      Fd_interp.Droid_runner.findings (Fd_interp.Droid_runner.run loaded)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* --- dynamic ⊆ static on generated apps --- *)

let prop_dynamic_subset_of_static profile =
  QCheck.Test.make
    ~name:
      (Printf.sprintf
         "dynamic leaks are static findings or explained FNs (%s)"
         (Gen.string_of_profile profile))
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile ~seed 0 in
      let s = static_findings app.Gen.ga_apk in
      let d = dynamic_findings app.Gen.ga_apk in
      let verdicts =
        Fd_diffcheck.Verdict.classify ~fixed:[] ~static:s ~dynamic:d
          ~expected:app.Gen.ga_expected ~limits:app.Gen.ga_limits
      in
      List.for_all
        (fun k ->
          List.mem k s
          || List.exists
               (fun (v : Fd_diffcheck.Verdict.leak_verdict) ->
                 v.Fd_diffcheck.Verdict.v_key = k
                 && match v.Fd_diffcheck.Verdict.v_bucket with
                    | Fd_diffcheck.Verdict.Explained_fn _ -> true
                    | _ -> false)
               verdicts)
        d)

(* --- static recall on planted ground truth --- *)

let prop_static_finds_planted =
  QCheck.Test.make ~name:"static analysis recovers every planted leak"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Malware ~seed 1 in
      let s = static_findings app.Gen.ga_apk in
      List.for_all
        (fun (src, snk) -> List.mem (src, Some snk) s)
        app.Gen.ga_expected)

(* --- k-monotonicity --- *)

let prop_k_monotone =
  QCheck.Test.make
    ~name:"shrinking the access-path bound never loses findings" ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Play ~seed 2 in
      let at k =
        static_findings
          ~config:{ Fd_core.Config.default with Fd_core.Config.max_access_path = k }
          app.Gen.ga_apk
      in
      let k5 = at 5 and k1 = at 1 in
      subset k5 k1)

(* --- determinism --- *)

let prop_deterministic =
  QCheck.Test.make ~name:"analysis is deterministic" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Malware ~seed 3 in
      static_findings app.Gen.ga_apk = static_findings app.Gen.ga_apk)

(* --- no sources, no findings --- *)

let prop_no_source_no_finding =
  QCheck.Test.make ~name:"sink-only programs never report" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, salt) ->
      let cls = "p.NoSrc" in
      let apk =
        Fd_frontend.Apk.make "NoSrc"
          ~manifest:
            (Fd_frontend.Apk.simple_manifest ~package:"p"
               [ (Fd_frontend.Framework.Activity, cls, []) ])
          [
            B.cls cls ~super:"android.app.Activity"
              [
                B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ]
                  (fun m ->
                    let _this = B.this m in
                    let _ = B.param m 0 "b" in
                    (* n constant flows into sinks, salted values *)
                    List.iter
                      (fun i ->
                        let x = B.local m (Printf.sprintf "x%d" i) in
                        B.const m x (B.s (Printf.sprintf "v%d" (i + salt)));
                        B.scall m "android.util.Log" "i" [ B.s "t"; B.v x ])
                      (List.init n Fun.id));
              ];
          ]
      in
      static_findings apk = [] && dynamic_findings apk = [])

(* --- disabling precision features never reduces static findings on
       the generated corpus (they are all over-approximations) --- *)

let prop_naive_handover_superset =
  QCheck.Test.make
    ~name:"naive handover reports a superset of the precise engine"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Play ~seed 4 in
      let precise = static_findings app.Gen.ga_apk in
      let naive =
        static_findings
          ~config:
            { Fd_core.Config.default with Fd_core.Config.context_injection = false }
          app.Gen.ga_apk
      in
      subset precise naive)

(* --- disabling callback discovery only removes findings --- *)

let prop_callbacks_monotone =
  QCheck.Test.make
    ~name:"disabling callbacks never adds findings" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Malware ~seed 5 in
      let off =
        static_findings
          ~config:{ Fd_core.Config.default with Fd_core.Config.callbacks = false }
          app.Gen.ga_apk
      in
      let on = static_findings app.Gen.ga_apk in
      subset off on)

(* --- RTA is at most as coarse as CHA on generated apps --- *)

let prop_rta_subset_of_cha =
  QCheck.Test.make ~name:"RTA findings are a subset of CHA findings"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let app = Gen.generate ~profile:Gen.Play ~seed 6 in
      let rta =
        static_findings
          ~config:
            { Fd_core.Config.default with
              Fd_core.Config.cg_algorithm = Fd_callgraph.Callgraph.Rta }
          app.Gen.ga_apk
      in
      let cha = static_findings app.Gen.ga_apk in
      subset rta cha)

let () =
  Alcotest.run "fd_properties"
    [
      ( "engine-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dynamic_subset_of_static Gen.Malware;
            prop_dynamic_subset_of_static Gen.Play;
            prop_static_finds_planted;
            prop_k_monotone;
            prop_deterministic;
            prop_no_source_no_finding;
            prop_naive_handover_superset;
            prop_callbacks_monotone;
            prop_rta_subset_of_cha;
          ] );
    ]
