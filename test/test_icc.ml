(* Tests for the ICC subsystem (Fd_core.Icc): manifest intent-filter
   matching and Android 12 exported semantics, intent-target
   resolution, flow stitching across component and app boundaries
   (per extra key), the exported gate between apps, the DroidBench
   inter-app pins, and the collusion differential check. *)

open Fd_ir
open Fd_core
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk
module Manifest = Fd_frontend.Manifest
module Gen = Fd_appgen.Generator
module Dc = Fd_diffcheck.Diffcheck
module Verdict = Fd_diffcheck.Verdict
module Interapp = Fd_droidbench.Interapp
module Bench_app = Fd_droidbench.Bench_app

let intent_t = T.Ref "android.content.Intent"
let icc_config = { Config.default with Config.icc = true }

let keys_of (r : Infoflow.result) =
  List.map
    (fun (fd : Bidi.finding) ->
      (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
    r.Infoflow.r_findings
  |> List.sort_uniq compare

let analyze ?(config = Config.default) apk =
  Infoflow.analyze_loaded ~config (Apk.load apk)

let key = Alcotest.(pair (option string) (option string))

(* ---------------- manifest: filters and exported ----------------- *)

let desc ?cls ?action ?(cats = []) ?scheme ?host ?mime () =
  {
    Manifest.it_class = cls;
    it_action = action;
    it_categories = cats;
    it_scheme = scheme;
    it_host = host;
    it_mime = mime;
  }

let test_filter_matching () =
  let m =
    Manifest.parse
      {|<manifest package="p">
  <application>
    <activity android:name="p.View">
      <intent-filter>
        <action android:name="p.VIEW"/>
        <category android:name="android.intent.category.DEFAULT"/>
        <data android:scheme="https" android:host="example.com"/>
      </intent-filter>
    </activity>
    <activity android:name="p.Img">
      <intent-filter>
        <action android:name="p.VIEW"/>
        <data android:mimeType="image/*"/>
      </intent-filter>
    </activity>
    <activity android:name="p.Plain">
      <intent-filter><action android:name="p.PLAIN"/></intent-filter>
    </activity>
  </application>
</manifest>|}
  in
  let receives cls d =
    match Manifest.find m cls with
    | None -> Alcotest.fail ("no component " ^ cls)
    | Some c -> Manifest.component_receives c d
  in
  (* action test *)
  Alcotest.(check bool) "matching action" true
    (receives "p.Plain" (desc ~action:"p.PLAIN" ()));
  Alcotest.(check bool) "wrong action" false
    (receives "p.Plain" (desc ~action:"p.OTHER" ()));
  (* category test: every intent category must be in the filter *)
  Alcotest.(check bool) "declared category passes" true
    (receives "p.View"
       (desc ~action:"p.VIEW" ~cats:[ "android.intent.category.DEFAULT" ]
          ~scheme:"https" ~host:"example.com" ()));
  Alcotest.(check bool) "undeclared category fails" false
    (receives "p.View"
       (desc ~action:"p.VIEW" ~cats:[ "p.cat.CUSTOM" ] ~scheme:"https"
          ~host:"example.com" ()));
  (* data test: scheme+host must match a <data> spec; mime wildcards *)
  Alcotest.(check bool) "matching data URI" true
    (receives "p.View" (desc ~action:"p.VIEW" ~scheme:"https"
                          ~host:"example.com" ()));
  Alcotest.(check bool) "wrong host" false
    (receives "p.View" (desc ~action:"p.VIEW" ~scheme:"https"
                          ~host:"evil.com" ()));
  Alcotest.(check bool) "mime wildcard" true
    (receives "p.Img" (desc ~action:"p.VIEW" ~mime:"image/png" ()));
  Alcotest.(check bool) "mime mismatch" false
    (receives "p.Img" (desc ~action:"p.VIEW" ~mime:"audio/mp3" ()));
  Alcotest.(check bool) "mime-less intent vs mime filter" false
    (receives "p.Img" (desc ~action:"p.VIEW" ~scheme:"https"
                         ~host:"example.com" ()));
  (* an intent with data never matches a data-less filter *)
  Alcotest.(check bool) "data vs data-less filter" false
    (receives "p.Plain" (desc ~action:"p.PLAIN" ~scheme:"https"
                           ~host:"example.com" ()));
  (* explicit class target bypasses the filters *)
  Alcotest.(check bool) "explicit target bypasses filters" true
    (receives "p.Plain" (desc ~cls:"p.Plain" ()))

let test_exported_semantics () =
  let m =
    Manifest.parse
      {|<manifest package="p">
  <application>
    <activity android:name="p.A" android:exported="false">
      <intent-filter><action android:name="p.ACT"/></intent-filter>
    </activity>
    <activity android:name="p.B">
      <intent-filter><action android:name="p.ACT"/></intent-filter>
    </activity>
    <activity android:name="p.C"/>
    <activity android:name="p.D" android:exported="true"/>
  </application>
</manifest>|}
  in
  let exported cls = (Option.get (Manifest.find m cls)).Manifest.comp_exported in
  (* Android 12 rules: an explicit attribute wins; absent one, a
     component is exported iff it declares an intent filter *)
  Alcotest.(check bool) "explicit false wins over filter" false (exported "p.A");
  Alcotest.(check bool) "filter implies exported" true (exported "p.B");
  Alcotest.(check bool) "no filter, no attr: private" false (exported "p.C");
  Alcotest.(check bool) "explicit true without filter" true (exported "p.D")

(* ---------------- intra-app resolution and stitching ------------- *)

(* sender activity: IMEI into an intent (explicit to icc.Receiver or
   implicit via action) under extra key "id", then startActivity;
   receiver activity reads [recv_key] and logs it *)
let app ?(explicit = true) ?(recv_key = "id") ?(receiver_logs = true) () =
  let send_cls = "icc.Sender" in
  let recv_cls = "icc.Receiver" in
  let sender =
    B.cls send_cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let imei = B.local m "imei" in
            let tm =
              B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager")
            in
            B.newobj m i "android.content.Intent";
            (if explicit then
               B.spcall m i "android.content.Intent" "<init>"
                 [ Stmt.Iconst (Stmt.CClassRef recv_cls) ]
             else begin
               B.spcall m i "android.content.Intent" "<init>" [];
               B.vcall m i "android.content.Intent" "setAction"
                 [ B.s "icc.action.SHOW" ]
             end);
            B.newobj m tm "android.telephony.TelephonyManager";
            B.vcall m ~tag:"src-imei" ~ret:imei tm
              "android.telephony.TelephonyManager" "getDeviceId" [];
            B.vcall m i "android.content.Intent" "putExtra"
              [ B.s "id"; B.v imei ];
            B.vcall m ~tag:"sink-send" this "android.app.Activity"
              "startActivity" [ B.v i ]);
      ]
  in
  let receiver =
    B.cls recv_cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let s = B.local m "s" in
            B.vcall m ~ret:i this "android.app.Activity" "getIntent" [];
            B.vcall m ~tag:"src-extra" ~ret:s i "android.content.Intent"
              "getStringExtra" [ B.s recv_key ];
            if receiver_logs then
              B.scall m ~tag:"sink-log" "android.util.Log" "i"
                [ B.s "rx"; B.v s ]
            else begin
              let tv = B.local m "tv" ~ty:(T.Ref "android.widget.TextView") in
              B.vcall m ~ret:tv this "android.app.Activity" "findViewById"
                [ B.i 3 ];
              B.vcall m tv "android.widget.TextView" "setText" [ B.v s ]
            end);
      ]
  in
  let manifest =
    {|<manifest package="icc">
  <application>
    <activity android:name="icc.Sender">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <activity android:name="icc.Receiver">
      <intent-filter>
        <action android:name="icc.action.SHOW"/>
      </intent-filter>
    </activity>
  </application>
</manifest>|}
  in
  Apk.make "IccApp" ~manifest [ sender; receiver ]

let test_tier_off_unchanged () =
  (* with the tier off the paper's over-approximation stands: the send
     is a sink, the reception source reports independently, and no
     stitched flow exists *)
  let r = analyze (app ()) in
  Alcotest.(check (list key)) "paper model keys"
    [
      (Some "src-extra", Some "sink-log");
      (Some "src-imei", Some "sink-send");
    ]
    (keys_of r);
  Alcotest.(check bool) "no icc report" true (r.Infoflow.r_icc = None)

let stitched_exn (r : Infoflow.result) =
  match r.Infoflow.r_icc with
  | None -> Alcotest.fail "expected an icc report"
  | Some rep -> rep

let test_explicit_stitch () =
  let r = analyze ~config:icc_config (app ()) in
  let rep = stitched_exn r in
  Alcotest.(check int) "one resolved send" 1 rep.Icc.ic_resolved;
  (match rep.Icc.ic_stitched with
  | [ st ] ->
      Alcotest.(check string) "target" "icc.Receiver" st.Icc.st_target;
      Alcotest.(check (option string)) "matched key" (Some "id")
        st.Icc.st_key
  | sts ->
      Alcotest.fail (Printf.sprintf "expected 1 stitched, got %d"
                       (List.length sts)));
  let ks = keys_of r in
  Alcotest.(check bool) "stitched end-to-end flow reported" true
    (List.mem (Some "src-imei", Some "sink-log") ks);
  Alcotest.(check bool) "resolved send no longer a sink" false
    (List.mem (Some "src-imei", Some "sink-send") ks)

let test_action_stitch () =
  let r = analyze ~config:icc_config (app ~explicit:false ()) in
  let rep = stitched_exn r in
  Alcotest.(check int) "implicit action resolved" 1
    (List.length rep.Icc.ic_stitched);
  Alcotest.(check bool) "stitched flow reported" true
    (List.mem (Some "src-imei", Some "sink-log") (keys_of r))

let test_key_separation () =
  (* the receiver reads a different extra key: the per-key refinement
     must not stitch, and the resolved send still stops being a sink *)
  let r = analyze ~config:icc_config (app ~recv_key:"other" ()) in
  let rep = stitched_exn r in
  Alcotest.(check int) "nothing stitched across keys" 0
    (List.length rep.Icc.ic_stitched);
  let ks = keys_of r in
  Alcotest.(check bool) "no cross-key flow" false
    (List.mem (Some "src-imei", Some "sink-log") ks);
  Alcotest.(check bool) "resolved send dropped" false
    (List.mem (Some "src-imei", Some "sink-send") ks);
  Alcotest.(check bool) "reception over-approximation remains" true
    (List.mem (Some "src-extra", Some "sink-log") ks)

let test_no_receiving_sink () =
  (* receiver only displays the value: nothing stitches, and the
     delivered send is accounted for by the receiver's (clean) run *)
  let r = analyze ~config:icc_config (app ~receiver_logs:false ()) in
  let rep = stitched_exn r in
  Alcotest.(check int) "no stitch" 0 (List.length rep.Icc.ic_stitched);
  Alcotest.(check (list key)) "no findings at all" [] (keys_of r)

let test_external_target_surface () =
  let cls = "icc.External" in
  let sender =
    B.cls cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let i = B.local m "i" ~ty:intent_t in
            let imei = B.local m "imei" in
            let tm =
              B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager")
            in
            B.newobj m i "android.content.Intent";
            B.spcall m i "android.content.Intent" "<init>"
              [ Stmt.Iconst (Stmt.CClassRef "other.app.Activity") ];
            B.newobj m tm "android.telephony.TelephonyManager";
            B.vcall m ~tag:"src" ~ret:imei tm
              "android.telephony.TelephonyManager" "getDeviceId" [];
            B.vcall m i "android.content.Intent" "putExtra"
              [ B.s "x"; B.v imei ];
            B.vcall m ~tag:"sink-send" this "android.app.Activity"
              "startActivity" [ B.v i ]);
      ]
  in
  let apk =
    Apk.make "ExtApp"
      ~manifest:(Apk.simple_manifest ~package:"icc" [ (FW.Activity, cls, []) ])
      [ sender ]
  in
  let r = analyze ~config:icc_config apk in
  let rep = stitched_exn r in
  Alcotest.(check int) "not resolved in-scene" 0 rep.Icc.ic_resolved;
  Alcotest.(check bool) "send stays a sink" true
    (List.mem (Some "src", Some "sink-send") (keys_of r));
  match rep.Icc.ic_surface with
  | [ e ] -> (
      match e.Icc.su_reason with
      | Icc.External c ->
          Alcotest.(check string) "external class" "other.app.Activity" c
      | other ->
          Alcotest.fail ("unexpected reason: " ^ Icc.string_of_reason other))
  | es ->
      Alcotest.fail
        (Printf.sprintf "expected 1 surface entry, got %d" (List.length es))

(* ---------------- inter-app: merged pair, exported gate ---------- *)

let test_pair_stitch_and_exported_gate () =
  let gp = Gen.collusion_pair ~seed:7 0 in
  let r =
    Infoflow.analyze_pair ~config:icc_config gp.Gen.gp_sender.Gen.ga_apk
      gp.Gen.gp_receiver.Gen.ga_apk
  in
  let rep = stitched_exn r in
  let targets = List.map (fun s -> s.Icc.st_target) rep.Icc.ic_stitched in
  Alcotest.(check bool) "collusion flow stitched into receiver app" true
    (List.exists
       (fun t -> Filename.check_suffix t ".Recv" || String.length t > 0)
       targets
    && targets <> []);
  Alcotest.(check bool) "unexported decoy never stitched" true
    (List.for_all (fun t -> not (Filename.check_suffix t "Decoy")) targets);
  (* the exported attack surface lists the filtered receiver but not
     the explicitly-unexported decoy *)
  let exported_classes = List.map snd rep.Icc.ic_exported in
  Alcotest.(check bool) "receiver on the attack surface" true
    (List.exists (fun c -> Filename.check_suffix c "Recv") exported_classes);
  Alcotest.(check bool) "decoy kept off the attack surface" true
    (List.for_all
       (fun c -> not (Filename.check_suffix c "Decoy"))
       exported_classes)

let test_pair_check_clean_both_tiers () =
  let gp = Gen.collusion_pair ~seed:3 1 in
  List.iter
    (fun config ->
      let ar = Dc.check_pair ~config gp in
      Alcotest.(check int)
        (Printf.sprintf "no divergences (icc=%b)" config.Config.icc)
        0
        (List.length (Dc.divergences ar)))
    [ Config.default; icc_config ]

(* ---------------- DroidBench inter-app pins ---------------------- *)

let bench_keys ~config (a : Bench_app.t) =
  keys_of (Infoflow.analyze_apk ~config a.Bench_app.app_apk)

let test_intent_sink1_gap_closed () =
  (* IntentSink1 leaks via setResult: invisible to the paper model
     (the documented miss), found by the icc tier's result-leak
     synthesis — while the tier-off table stays untouched *)
  let sink1 = Interapp.intent_sink1 in
  let off = bench_keys ~config:Config.default sink1 in
  let on_ = bench_keys ~config:icc_config sink1 in
  let k = (Some "src-imei", Some "sink-setresult") in
  Alcotest.(check bool) "tier off: setResult invisible" false
    (List.mem k off);
  Alcotest.(check bool) "tier on: setResult leak found" true
    (List.mem k on_)

let test_other_interapp_rows_unchanged () =
  (* IntentSink2 and ActivityCommunication1 send untargeted intents
     the constant analysis cannot pin, so the tier changes nothing *)
  List.iter
    (fun (a : Bench_app.t) ->
      Alcotest.(check (list key))
        (a.Bench_app.app_name ^ " unchanged")
        (bench_keys ~config:Config.default a)
        (bench_keys ~config:icc_config a))
    [ Interapp.intent_sink2; Interapp.activity_communication1 ]

(* ---------------- campaigns: zero divergence, determinism -------- *)

let test_icc_campaign_clean_both_tiers () =
  List.iter
    (fun config ->
      let c = Dc.campaign ~config ~profile:Gen.Icc ~seed:11 ~n:6 () in
      Alcotest.(check int)
        (Printf.sprintf "icc campaign divergence-free (icc=%b)"
           config.Config.icc)
        0
        (List.length (Dc.divergent_reports c)))
    [ Config.default; icc_config ]

let test_pair_campaign_clean_and_deterministic () =
  let run () = Dc.pair_campaign ~config:icc_config ~seed:5 ~n:3 () in
  let c1 = run () in
  let c2 = run () in
  Alcotest.(check int) "pair campaign divergence-free" 0
    (List.length (Dc.divergent_reports c1));
  Alcotest.(check string) "digest deterministic" (Dc.digest c1) (Dc.digest c2)

(* ---------------- properties --------------------------------------- *)

let prop_tier_on_subset =
  QCheck.Test.make
    ~name:"tier-on findings are tier-off findings or icc additions"
    ~count:20
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let ga = Gen.generate ~profile:Gen.Icc ~seed 0 in
      let off = keys_of (analyze ga.Gen.ga_apk) in
      let r_on = analyze ~config:icc_config ga.Gen.ga_apk in
      let added =
        match r_on.Infoflow.r_icc with
        | None -> []
        | Some rep ->
            List.map
              (fun (fd : Bidi.finding) ->
                (fd.Bidi.f_source.Taint.si_tag, fd.Bidi.f_sink_tag))
              (Icc.added rep)
      in
      List.for_all
        (fun k -> List.mem k off || List.mem k added)
        (keys_of r_on))

let prop_tier_on_deterministic =
  QCheck.Test.make ~name:"icc analysis is deterministic" ~count:10
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let ga = Gen.generate ~profile:Gen.Icc ~seed 1 in
      keys_of (analyze ~config:icc_config ga.Gen.ga_apk)
      = keys_of (analyze ~config:icc_config ga.Gen.ga_apk))

(* ---------------- summary-store separation ----------------------- *)

let test_config_digest_covers_icc () =
  let sources = Fd_frontend.Sourcesink.default () in
  let wrappers = Fd_frontend.Rules.default_wrappers () in
  let natives = Fd_frontend.Rules.default_natives () in
  let digest icc =
    Summary.config_digest
      ~config:{ Config.default with Config.icc }
      ~sources ~wrappers ~natives
  in
  Alcotest.(check bool) "icc on/off digests differ" true
    (digest true <> digest false)

let () =
  Alcotest.run "fd_icc"
    [
      ( "manifest",
        [
          Alcotest.test_case "filter matching" `Quick test_filter_matching;
          Alcotest.test_case "exported semantics" `Quick
            test_exported_semantics;
        ] );
      ( "stitching",
        [
          Alcotest.test_case "tier off unchanged" `Quick
            test_tier_off_unchanged;
          Alcotest.test_case "explicit intent" `Quick test_explicit_stitch;
          Alcotest.test_case "implicit action" `Quick test_action_stitch;
          Alcotest.test_case "extra-key separation" `Quick
            test_key_separation;
          Alcotest.test_case "no receiving sink" `Quick
            test_no_receiving_sink;
          Alcotest.test_case "external target surface" `Quick
            test_external_target_surface;
        ] );
      ( "inter-app",
        [
          Alcotest.test_case "pair stitch + exported gate" `Quick
            test_pair_stitch_and_exported_gate;
          Alcotest.test_case "pair check clean both tiers" `Slow
            test_pair_check_clean_both_tiers;
          Alcotest.test_case "IntentSink1 gap closed" `Quick
            test_intent_sink1_gap_closed;
          Alcotest.test_case "other inter-app rows unchanged" `Quick
            test_other_interapp_rows_unchanged;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "icc campaign clean both tiers" `Slow
            test_icc_campaign_clean_both_tiers;
          Alcotest.test_case "pair campaign clean + deterministic" `Slow
            test_pair_campaign_clean_and_deterministic;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_tier_on_subset;
          QCheck_alcotest.to_alcotest prop_tier_on_deterministic;
        ] );
      ( "store",
        [
          Alcotest.test_case "config digest covers icc" `Quick
            test_config_digest_covers_icc;
        ] );
    ]
