(* Lenient-mode exception-escape sweep (DESIGN.md §5, failure
   taxonomy): feeding arbitrarily mutated manifests and layouts
   through [Apk.load ~mode:`Lenient] must never let anything but
   [Apk.Load_error] escape — malformed XML entities, dangling layout
   references, truncations and byte noise all degrade to diagnostics
   (or, at worst, a typed [Load_error]), never [Failure],
   [Not_found], [Invalid_argument] or a parser exception.

   600 mutated inputs per property (the gate requires 500+). *)

module Apk = Fd_frontend.Apk

let base_manifest =
  {|<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.esc">
  <application>
    <activity android:name="com.example.esc.Main">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <service android:name="com.example.esc.Svc"/>
  </application>
</manifest>|}

let base_layout =
  {|<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/user"/>
  <Button android:id="@+id/go" android:onClick="sendMessage"/>
</LinearLayout>|}

let base_source =
  {|class com.example.esc.Main extends android.app.Activity {
  method void onCreate(android.os.Bundle) {
    this := @this: com.example.esc.Main
    p0 := @parameter0
    return
  }
}|}

(* the historic escape vectors: malformed numeric character entities
   (negative, hex garbage, overflow), unknown entities, unterminated
   references — plus generic structural noise *)
let poison_tokens =
  [|
    "&#-5;"; "&#xZZ;"; "&#x;"; "&#;"; "&#99999999999999999999999;";
    "&#x8FFFFFFFFFFFFFFFF;"; "&bogus;"; "&"; "&#x41"; "<"; ">"; "\"";
    "<!--"; "]]>"; "<x"; "</zzz>"; "\x00"; "android:name=\"@layout/nope\"";
  |]

let mutate rng s =
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let n = String.length s in
  match Random.State.int rng 4 with
  | 0 ->
      (* inject a poison token at a random position *)
      let i = Random.State.int rng (n + 1) in
      String.sub s 0 i ^ pick poison_tokens ^ String.sub s i (n - i)
  | 1 ->
      (* truncate *)
      String.sub s 0 (Random.State.int rng (n + 1))
  | 2 ->
      (* overwrite one byte with a structural character *)
      if n = 0 then s
      else begin
        let b = Bytes.of_string s in
        Bytes.set b (Random.State.int rng n) (pick [| '<'; '>'; '&'; '"'; ';' |]);
        Bytes.to_string b
      end
  | _ ->
      (* duplicate a chunk (unbalances the tree) *)
      if n = 0 then s
      else begin
        let i = Random.State.int rng n in
        let len = min (Random.State.int rng 40 + 1) (n - i) in
        String.sub s 0 (i + len) ^ String.sub s i (n - i)
      end

let rec mutate_times rng k s = if k = 0 then s else mutate_times rng (k - 1) (mutate rng s)

(* one trial: mutate manifest and/or layouts, then bundle + load
   leniently.  [Load_error] is the only exception allowed out; a
   clean load must also survive a [layout_id] probe (the Not_found
   escape this PR fixes). *)
let survives_lenient seed =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let manifest = mutate_times rng (1 + Random.State.int rng 3) base_manifest in
  let layout = mutate_times rng (1 + Random.State.int rng 3) base_layout in
  match
    let apk =
      Apk.make_text ~mode:`Lenient "esc-app" ~manifest
        ~layouts:[ ("activity_main", layout); ("broken", layout) ]
        [ base_source ]
    in
    let loaded = Apk.load ~mode:`Lenient apk in
    (* probe the lookups that used to leak Not_found *)
    (match Apk.layout_id loaded "activity_main" with
    | _ -> ()
    | exception Apk.Load_error _ -> ());
    (match Apk.layout_id loaded "definitely-not-there" with
    | _ -> ()
    | exception Apk.Load_error _ -> ());
    ignore (Fd_frontend.Layout.layout_id loaded.Apk.layout "nope")
  with
  | () -> true
  | exception Apk.Load_error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "non-Load_error escaped: %s"
        (Printexc.to_string e)

let prop_lenient_never_escapes =
  QCheck.Test.make ~name:"lenient load: only Load_error escapes"
    ~count:600
    QCheck.(int_range 0 1_000_000)
    survives_lenient

(* strict mode: same inputs, same taxonomy — Load_error or success,
   never a raw parser/runtime exception *)
let survives_strict seed =
  let rng = Random.State.make [| seed; 0x57f1c7 |] in
  let manifest = mutate_times rng (1 + Random.State.int rng 3) base_manifest in
  let layout = mutate_times rng (1 + Random.State.int rng 3) base_layout in
  match
    let apk =
      Apk.make_text "esc-app" ~manifest
        ~layouts:[ ("activity_main", layout) ]
        [ base_source ]
    in
    ignore (Apk.load apk)
  with
  | () -> true
  | exception Apk.Load_error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "strict mode leaked %s"
        (Printexc.to_string e)

let prop_strict_never_escapes =
  QCheck.Test.make ~name:"strict load: Load_error or success"
    ~count:600
    QCheck.(int_range 0 1_000_000)
    survives_strict

(* regression pins for the exact historic escapes *)
let test_bad_charrefs () =
  List.iter
    (fun entity ->
      let manifest =
        Printf.sprintf
          {|<manifest package="p"><application><activity android:name="a.B%s"/></application></manifest>|}
          entity
      in
      (* strict: typed Load_error *)
      (match Apk.load (Apk.make "x" ~manifest []) with
      | _ -> Alcotest.failf "strict accepted %s" entity
      | exception Apk.Load_error _ -> ()
      | exception e ->
          Alcotest.failf "strict leaked %s on %s" (Printexc.to_string e) entity);
      (* lenient: degraded to a diag, never an exception *)
      match Apk.load ~mode:`Lenient (Apk.make "x" ~manifest []) with
      | loaded ->
          Alcotest.(check bool)
            (entity ^ " diagnosed") true
            (loaded.Apk.diags <> [])
      | exception e ->
          Alcotest.failf "lenient leaked %s on %s" (Printexc.to_string e)
            entity)
    [ "&#-5;"; "&#xZZ;"; "&#99999999999999999999999;"; "&#;"; "&nope;" ]

let () =
  Alcotest.run "fd_lenient_escapes"
    [
      ( "lenient-escapes",
        Alcotest.test_case "malformed charrefs: typed errors only" `Quick
          test_bad_charrefs
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_lenient_never_escapes; prop_strict_never_escapes ] );
    ]
