(* End-to-end Android tests: the paper's Listing 1 app through the full
   pipeline (manifest, layout, callback discovery, dummy main, taint
   analysis), plus lifecycle/callback unit checks. *)

open Fd_ir
open Fd_core
module B = Build
module T = Types
module FW = Fd_frontend.Framework
module Apk = Fd_frontend.Apk

(* ---------------- the Listing 1 app ---------------- *)

let layout_main =
  {|<?xml version="1.0" encoding="utf-8"?>
<LinearLayout>
  <EditText android:id="@+id/username" android:inputType="text"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>|}

(* resource ids are assigned in declaration order *)
let id_username = Fd_frontend.Layout.id_base
let id_pwd = Fd_frontend.Layout.id_base + 1
let layout_id = Fd_frontend.Layout.layout_id_base

let user_cls = "de.ecspride.User"
let pwd_cls = "de.ecspride.Password"
let app_cls = "de.ecspride.LeakageApp"
let f_user = B.fld ~ty:(T.Ref user_cls) app_cls "user"
let f_uname = B.fld ~ty:(T.Ref "java.lang.String") user_cls "name"
let f_upwd = B.fld ~ty:(T.Ref pwd_cls) user_cls "pwd"
let f_pstr = B.fld ~ty:(T.Ref "java.lang.String") pwd_cls "pwdString"

let password_class =
  B.cls pwd_cls
    ~fields:[ ("pwdString", T.Ref "java.lang.String") ]
    [
      B.meth "<init>" ~params:[ T.Ref "java.lang.String" ] (fun m ->
          let this = B.this m in
          let p = B.param m 0 "p" in
          B.store m this f_pstr (B.v p));
      B.meth "getPassword" ~ret:(T.Ref "java.lang.String") (fun m ->
          let this = B.this m in
          let r = B.local m "r" in
          B.load m r this f_pstr;
          B.retv m (B.v r));
    ]

let user_class =
  B.cls user_cls
    ~fields:[ ("name", T.Ref "java.lang.String"); ("pwd", T.Ref pwd_cls) ]
    [
      B.meth "<init>"
        ~params:[ T.Ref "java.lang.String"; T.Ref "java.lang.String" ]
        (fun m ->
          let this = B.this m in
          let n = B.param m 0 "n" in
          let p = B.param m 1 "p" in
          let pw = B.local m "pw" ~ty:(T.Ref pwd_cls) in
          B.store m this f_uname (B.v n);
          B.newc m pw pwd_cls [ B.v p ];
          B.store m this f_upwd (B.v pw));
      B.meth "getName" ~ret:(T.Ref "java.lang.String") (fun m ->
          let this = B.this m in
          let r = B.local m "r" in
          B.load m r this f_uname;
          B.retv m (B.v r));
      B.meth "getpwd" ~ret:(T.Ref pwd_cls) (fun m ->
          let this = B.this m in
          let r = B.local m "r" ~ty:(T.Ref pwd_cls) in
          B.load m r this f_upwd;
          B.retv m (B.v r));
    ]

let leakage_activity =
  B.cls app_cls ~super:"android.app.Activity"
    ~fields:[ ("user", T.Ref user_cls) ]
    [
      B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
          let this = B.this m in
          let _ = B.param m 0 "savedState" in
          B.vcall m this "android.app.Activity" "setContentView"
            [ B.i layout_id ]);
      B.meth "onRestart" (fun m ->
          let this = B.this m in
          let ut = B.local m "usernameText" ~ty:(T.Ref "android.widget.EditText") in
          let pt = B.local m "passwordText" ~ty:(T.Ref "android.widget.EditText") in
          let uname = B.local m "uname" and pwd = B.local m "pwd" in
          let u = B.local m "u" ~ty:(T.Ref user_cls) in
          B.vcall m ~ret:ut this "android.app.Activity" "findViewById"
            [ B.i id_username ];
          B.vcall m ~tag:"src-pwd" ~ret:pt this "android.app.Activity"
            "findViewById" [ B.i id_pwd ];
          B.vcall m ~ret:uname ut "android.widget.EditText" "toString" [];
          B.vcall m ~ret:pwd pt "android.widget.EditText" "toString" [];
          B.ifgoto m (B.v uname) Stmt.Ceq B.nul "out";
          B.newc m u user_cls [ B.v uname; B.v pwd ];
          B.store m this f_user (B.v u);
          B.label m "out";
          B.ret m);
      (* callback declared only in the layout XML *)
      B.meth "sendMessage" ~params:[ T.Ref "android.view.View" ] (fun m ->
          let this = B.this m in
          let _view = B.param m 0 "view" in
          let u = B.local m "u" ~ty:(T.Ref user_cls) in
          let pw = B.local m "pw" ~ty:(T.Ref pwd_cls) in
          let ps = B.local m "ps" in
          let obf = B.local m "obf" in
          let c = B.local m "c" in
          let name = B.local m "name" in
          let msg = B.local m "msg" in
          let sms = B.local m "sms" ~ty:(T.Ref "android.telephony.SmsManager") in
          B.load m u this f_user;
          B.ifgoto m (B.v u) Stmt.Ceq B.nul "out";
          B.vcall m ~ret:pw u user_cls "getpwd" [];
          B.vcall m ~ret:ps pw pwd_cls "getPassword" [];
          B.const m obf (B.s "");
          B.label m "loop";
          (* for (char c : pwdString.toCharArray()) obf += c + "_" *)
          B.vcall m ~ret:c ps "java.lang.String" "charAt" [ B.i 0 ];
          B.binop m obf "+" (B.v obf) (B.v c);
          B.ifgoto m (B.v obf) Stmt.Cne B.nul "loop";
          B.vcall m ~ret:name u user_cls "getName" [];
          B.binop m msg "+" (B.v name) (B.v obf);
          B.scall m ~ret:sms "android.telephony.SmsManager" "getDefault" [];
          B.vcall m ~tag:"sink-sms" sms "android.telephony.SmsManager"
            "sendTextMessage"
            [ B.s "+44 020 7321 0905"; B.nul; B.v msg; B.nul; B.nul ];
          B.label m "out";
          B.ret m);
    ]

let leakage_apk ?(enabled = true) () =
  let manifest =
    Apk.simple_manifest ~package:"de.ecspride"
      [
        ( FW.Activity,
          app_cls,
          if enabled then [] else [ ("android:enabled", "false") ] );
      ]
  in
  Apk.make "LeakageApp" ~manifest
    ~layouts:[ ("activity_main", layout_main) ]
    [ leakage_activity; user_class; password_class ]

let flow_pairs (r : Infoflow.result) =
  List.map
    (fun (fd : Bidi.finding) ->
      ( Option.value fd.Bidi.f_source.Taint.si_tag ~default:"?",
        Option.value fd.Bidi.f_sink_tag ~default:"?" ))
    r.Infoflow.r_findings
  |> List.sort_uniq compare

(* ---------------- pipeline-stage tests ---------------- *)

let test_callback_discovery () =
  let loaded = Apk.load (leakage_apk ()) in
  let ccs = Fd_lifecycle.Callbacks.discover_all loaded in
  match ccs with
  | [ cc ] ->
      Alcotest.(check string) "component" app_cls
        cc.Fd_lifecycle.Callbacks.cc_component;
      let names =
        List.map
          (fun cb ->
            cb.Fd_lifecycle.Callbacks.cb_method.Jclass.jm_sig.T.m_name)
          cc.Fd_lifecycle.Callbacks.cc_callbacks
      in
      Alcotest.(check (list string)) "xml callback found" [ "sendMessage" ] names;
      Alcotest.(check int) "lifecycle entries" 2
        (List.length cc.Fd_lifecycle.Callbacks.cc_lifecycle)
  | _ -> Alcotest.fail "expected exactly one component"

let test_dummy_main_shape () =
  let loaded = Apk.load (leakage_apk ()) in
  let ccs = Fd_lifecycle.Callbacks.discover_all loaded in
  let entry =
    Fd_lifecycle.Dummy_main.generate loaded.Apk.scene ccs
  in
  Alcotest.(check string) "entry class" "dummyMainClass" entry.Fd_callgraph.Mkey.mk_class;
  let dc = Option.get (Scene.find_class loaded.Apk.scene "dummyMainClass") in
  let dm = Option.get (Jclass.find_method_named dc "dummyMain") in
  let body = Option.get dm.Jclass.jm_body in
  let printed = Pretty.body_to_string body in
  let contains needle =
    let n = String.length needle and h = String.length printed in
    let rec go i = i + n <= h && (String.sub printed i n = needle || go (i + 1)) in
    go 0
  in
  (* Figure 1's structure: lifecycle calls present, callback between
     resume and pause *)
  List.iter
    (fun s -> Alcotest.(check bool) (s ^ " present") true (contains s))
    [ "onCreate"; "onRestart"; "sendMessage" ];
  (* the app does not implement onPause: it must not be called *)
  Alcotest.(check bool) "no onPause call" false (contains "onPause");
  (* the opaque predicate drives all branching *)
  Alcotest.(check bool) "opaque predicate read" true
    (contains "static dummyMainClass#p")

let test_listing1_end_to_end () =
  let r = Infoflow.analyze_apk (leakage_apk ()) in
  let pairs = flow_pairs r in
  Alcotest.(check (list (pair string string)))
    "password leaks to SMS; username does not"
    [ ("src-pwd", "sink-sms") ]
    pairs

let test_inactive_activity () =
  (* the same app with the activity disabled in the manifest must
     produce no findings (DroidBench's InactiveActivity) *)
  let r = Infoflow.analyze_apk (leakage_apk ~enabled:false ()) in
  Alcotest.(check (list (pair string string))) "no leak when disabled" []
    (flow_pairs r)

let test_lifecycle_off_misses () =
  (* without the lifecycle model, onRestart's write to this.user and
     sendMessage's read are disconnected entry points: the leak is
     missed — the comparator-tool failure mode *)
  let config = { Config.default with Config.lifecycle = false } in
  let r = Infoflow.analyze_apk ~config (leakage_apk ()) in
  Alcotest.(check (list (pair string string))) "missed without lifecycle" []
    (flow_pairs r)

let test_callbacks_off_misses () =
  let config = { Config.default with Config.callbacks = false } in
  let r = Infoflow.analyze_apk ~config (leakage_apk ()) in
  Alcotest.(check (list (pair string string))) "missed without callbacks" []
    (flow_pairs r)

(* ---------------- imperative callback registration ---------------- *)

let button_app () =
  (* activity registers a click listener in code; the listener leaks the
     IMEI stored by onCreate into a field of the activity *)
  let act = "t.BtnActivity" in
  let lst = "t.ClickListener" in
  let f_data = B.fld ~ty:(T.Ref "java.lang.String") act "data" in
  let f_outer = B.fld ~ty:(T.Ref act) lst "outer" in
  let activity =
    B.cls act ~super:"android.app.Activity"
      ~fields:[ ("data", T.Ref "java.lang.String") ]
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let tm = B.local m "tm" ~ty:(T.Ref "android.telephony.TelephonyManager") in
            let imei = B.local m "imei" in
            let btn = B.local m "btn" ~ty:(T.Ref "android.widget.Button") in
            let l = B.local m "l" ~ty:(T.Ref lst) in
            B.newobj m tm "android.telephony.TelephonyManager";
            B.vcall m ~tag:"src-imei" ~ret:imei tm
              "android.telephony.TelephonyManager" "getDeviceId" [];
            B.store m this f_data (B.v imei);
            B.vcall m ~ret:btn this "android.app.Activity" "findViewById"
              [ B.i 1 ];
            B.newc m l lst [ B.v this ];
            B.vcall m btn "android.widget.Button" "setOnClickListener" [ B.v l ]);
      ]
  in
  let listener =
    B.cls lst ~interfaces:[ "android.view.View$OnClickListener" ]
      ~fields:[ ("outer", T.Ref act) ]
      [
        B.meth "<init>" ~params:[ T.Ref act ] (fun m ->
            let this = B.this m in
            let o = B.param m 0 "o" in
            B.store m this f_outer (B.v o));
        B.meth "onClick" ~params:[ T.Ref "android.view.View" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "v" in
            let o = B.local m "o" ~ty:(T.Ref act) in
            let d = B.local m "d" in
            B.load m o this f_outer;
            B.load m d o f_data;
            B.scall m ~tag:"sink-log" "android.util.Log" "i"
              [ B.s "TAG"; B.v d ]);
      ]
  in
  let manifest = Apk.simple_manifest ~package:"t" [ (FW.Activity, act, []) ] in
  Apk.make "ButtonApp" ~manifest [ activity; listener ]

let test_imperative_callback_leak () =
  let r = Infoflow.analyze_apk (button_app ()) in
  Alcotest.(check (list (pair string string)))
    "IMEI flows into the registered listener's log"
    [ ("src-imei", "sink-log") ]
    (flow_pairs r)

(* ---------------- location callback parameter source -------------- *)

let location_app () =
  let act = "t.LocActivity" in
  let f_loc = B.fld ~ty:(T.Ref "android.location.Location") act "lastLoc" in
  let activity =
    B.cls act ~super:"android.app.Activity"
      ~interfaces:[ "android.location.LocationListener" ]
      ~fields:[ ("lastLoc", T.Ref "android.location.Location") ]
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let lm = B.local m "lm" ~ty:(T.Ref "android.location.LocationManager") in
            B.newobj m lm "android.location.LocationManager";
            B.vcall m lm "android.location.LocationManager"
              "requestLocationUpdates" [ B.v this ]);
        B.meth "onLocationChanged"
          ~params:[ T.Ref "android.location.Location" ] (fun m ->
            let this = B.this m in
            let loc = B.param m 0 "loc" in
            B.store m this f_loc (B.v loc));
        B.meth "onDestroy" (fun m ->
            let this = B.this m in
            let l = B.local m "l" ~ty:(T.Ref "android.location.Location") in
            let lat = B.local m "lat" in
            B.load m l this f_loc;
            B.vcall m ~ret:lat l "android.location.Location" "getLatitude" [];
            B.scall m ~tag:"sink-log" "android.util.Log" "d"
              [ B.s "loc"; B.v lat ]);
      ]
  in
  let manifest = Apk.simple_manifest ~package:"t" [ (FW.Activity, act, []) ] in
  Apk.make "LocApp" ~manifest [ activity ]

let test_location_callback_source () =
  let r = Infoflow.analyze_apk (location_app ()) in
  let sinks = List.map snd (flow_pairs r) in
  Alcotest.(check (list string))
    "location parameter leaks into the log at shutdown"
    [ "sink-log" ] (List.sort_uniq compare sinks)

(* the resource id reaches findViewById through a local, not an
   immediate constant: resolved by the straight-line constant
   propagation (Jimple-style) *)
let indirect_id_app () =
  let cls = "t.IndirectId" in
  let layout =
    {|<LinearLayout><EditText android:id="@+id/pw" android:inputType="textPassword"/></LinearLayout>|}
  in
  let activity =
    B.cls cls ~super:"android.app.Activity"
      [
        B.meth "onCreate" ~params:[ T.Ref "android.os.Bundle" ] (fun m ->
            let this = B.this m in
            let _ = B.param m 0 "b" in
            let id = B.local m "id" ~ty:T.Int in
            let et = B.local m "et" ~ty:(T.Ref "android.widget.EditText") in
            let p = B.local m "p" in
            B.const m id (B.i Fd_frontend.Layout.id_base);
            B.vcall m ~tag:"src-pw" ~ret:et this "android.app.Activity"
              "findViewById" [ B.v id ];
            B.vcall m ~ret:p et "android.widget.EditText" "toString" [];
            B.scall m ~tag:"sink-log" "android.util.Log" "i"
              [ B.s "t"; B.v p ]);
      ]
  in
  Apk.make "IndirectId"
    ~manifest:(Apk.simple_manifest ~package:"t" [ (FW.Activity, cls, []) ])
    ~layouts:[ ("main", layout) ]
    [ activity ]

let test_indirect_resource_id () =
  let r = Infoflow.analyze_apk (indirect_id_app ()) in
  Alcotest.(check (list (pair string string)))
    "constant-propagated id is a source"
    [ ("src-pw", "sink-log") ]
    (flow_pairs r)

let test_budget_exhaustion_static () =
  (* a tiny propagation budget: the engine stops and reports the
     exhaustion instead of looping *)
  let config = { Config.default with Config.max_propagations = 50 } in
  let r = Infoflow.analyze_apk ~config (leakage_apk ()) in
  Alcotest.(check string) "budget flagged" "budget-exhausted"
    (Fd_resilience.Outcome.to_string r.Infoflow.r_stats.Infoflow.st_outcome)

let () =
  Alcotest.run "fd_android"
    [
      ( "pipeline",
        [
          Alcotest.test_case "callback discovery" `Quick test_callback_discovery;
          Alcotest.test_case "dummy main (Figure 1)" `Quick test_dummy_main_shape;
        ] );
      ( "listing1",
        [
          Alcotest.test_case "end to end" `Quick test_listing1_end_to_end;
          Alcotest.test_case "inactive activity" `Quick test_inactive_activity;
          Alcotest.test_case "no lifecycle -> miss" `Quick
            test_lifecycle_off_misses;
          Alcotest.test_case "no callbacks -> miss" `Quick
            test_callbacks_off_misses;
        ] );
      ( "callbacks",
        [
          Alcotest.test_case "imperative registration" `Quick
            test_imperative_callback_leak;
          Alcotest.test_case "location parameter source" `Quick
            test_location_callback_source;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "indirect resource id" `Quick
            test_indirect_resource_id;
          Alcotest.test_case "propagation budget" `Quick
            test_budget_exhaustion_static;
        ] );
    ]
