(* Demand-driven targeted mode (DESIGN.md §14):

   - verdict identity: targeted findings are exactly the full-mode
     findings restricted to the targeted sinks, over generated Play
     and Malware apps;
   - empty slice: a pattern matching no sink site drops every entry
     point — zero findings, zero reachable methods, near-zero work;
   - the slice is a sound over-approximation: every full-mode finding
     into a targeted sink survives targeting (no lost leaks);
   - [Summary.config_digest] incorporates the targeted sink set, so
     hot store entries never leak across modes;
   - [targeted.*] metrics are published;
   - default mode ([targeted = []]) takes no new code path. *)

module Config = Fd_core.Config
module Infoflow = Fd_core.Infoflow
module Summary = Fd_core.Summary
module Taint = Fd_core.Taint
module Gen = Fd_appgen.Generator
module Ondemand = Fd_callgraph.Ondemand

let gen_apk ~profile ~seed index =
  (Gen.generate ~profile ~seed index).Gen.ga_apk

(* order-insensitive finding key: source tag, sink statement, sink tag *)
let keys_of_findings findings =
  List.map
    (fun (f : Fd_core.Bidi.finding) ->
      ( f.Fd_core.Bidi.f_source.Taint.si_tag,
        Fd_callgraph.Icfg.string_of_node f.Fd_core.Bidi.f_sink_node,
        f.Fd_core.Bidi.f_sink_tag ))
    findings
  |> List.sort_uniq compare

let analyze ?(targeted = []) apk =
  let config = { Config.default with Config.targeted = targeted } in
  Infoflow.analyze_apk ~config apk

(* the generated apps' SMS sink; Log sinks remain untargeted *)
let sms = "SmsManager.sendTextMessage"

(* ---------------- verdict identity ------------------------------- *)

let test_verdict_identity () =
  let apps =
    [ (Gen.Play, 7, 0); (Gen.Play, 7, 1); (Gen.Malware, 11, 0);
      (Gen.Malware, 11, 1); (Gen.Malware, 13, 2) ]
  in
  List.iter
    (fun (profile, seed, idx) ->
      let apk = gen_apk ~profile ~seed idx in
      let full = analyze apk in
      let expected =
        keys_of_findings
          (Infoflow.restrict_findings
             ~icfg:full.Infoflow.r_icfg ~patterns:[ sms ]
             full.Infoflow.r_findings)
      in
      let targeted = analyze ~targeted:[ sms ] apk in
      Alcotest.(check (list (triple (option string) string (option string))))
        (Printf.sprintf "verdicts %s/%d/%d"
           (Gen.string_of_profile profile)
           seed idx)
        expected
        (keys_of_findings targeted.Infoflow.r_findings))
    apps

(* every full-mode finding into the targeted sink survives targeting:
   same assertion as identity, spelled as the soundness direction over
   a wider sweep *)
let test_no_lost_leaks () =
  for idx = 0 to 5 do
    let apk = gen_apk ~profile:Gen.Malware ~seed:23 idx in
    let full = analyze apk in
    let expected =
      keys_of_findings
        (Infoflow.restrict_findings ~icfg:full.Infoflow.r_icfg
           ~patterns:[ sms ] full.Infoflow.r_findings)
    in
    let got =
      keys_of_findings (analyze ~targeted:[ sms ] apk).Infoflow.r_findings
    in
    List.iter
      (fun k ->
        Alcotest.(check bool)
          (Printf.sprintf "leak %s kept (app %d)"
             (let a, b, _ = k in Option.value a ~default:"?" ^ "->" ^ b)
             idx)
          true (List.mem k got))
      expected
  done

(* ---------------- empty slice fast path -------------------------- *)

let test_empty_slice () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 0 in
  let r = analyze ~targeted:[ "no.such.Class.noSuchSink" ] apk in
  Alcotest.(check int) "no findings" 0 (List.length r.Infoflow.r_findings);
  Alcotest.(check int) "no entries" 0 (List.length r.Infoflow.r_entries);
  Alcotest.(check int) "no reachable methods" 0
    r.Infoflow.r_stats.Infoflow.st_reachable

(* ---------------- slice computation ------------------------------ *)

let test_slice_counts () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 0 in
  (* reuse the analysed scene (includes the generated dummy main) *)
  let full = analyze apk in
  let scene =
    Fd_callgraph.Callgraph.cg_scene full.Infoflow.r_icfg.Fd_callgraph.Icfg.cg
  in
  let sl = Ondemand.compute scene ~patterns:[ sms ] in
  Alcotest.(check bool) "sink sites found" true (Ondemand.sink_sites sl > 0);
  Alcotest.(check bool) "probes counted" true (Ondemand.index_probes sl > 0);
  Alcotest.(check bool) "slice is a strict subset" true
    (Ondemand.sliced_methods sl > 0
    && Ondemand.sliced_methods sl <= Ondemand.total_methods sl);
  (* entries (the dummy main) are inside the slice: the app does reach
     the SMS sink *)
  Alcotest.(check bool) "entries in slice" true
    (List.for_all (Ondemand.mem sl) full.Infoflow.r_entries);
  let none = Ondemand.compute scene ~patterns:[ "no.such.Sink.api" ] in
  Alcotest.(check int) "gibberish pattern: empty slice" 0
    (Ondemand.sliced_methods none)

let test_metrics_published () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 1 in
  Fd_obs.Metrics.reset ();
  ignore (analyze ~targeted:[ sms ] apk);
  Alcotest.(check bool) "index probes metric" true
    (Fd_obs.Metrics.counter_value "targeted.index_probes" > 0)

(* ---------------- anchored SuSi signatures ----------------------- *)

(* The generated apps' SMS sink spelled as the anchored SuSi form
   [<Class: ret name(args)>].  [Fd_ir.Build] types every invoke
   parameter — and the discarded return — as [java.lang.Object], so
   that is what the anchored pattern must declare. *)
let obj = "java.lang.Object"

let sms_anchored =
  Printf.sprintf "<android.telephony.SmsManager: %s sendTextMessage(%s)>" obj
    (String.concat "," [ obj; obj; obj; obj; obj ])

(* anchored and substring spellings of the same sink select the same
   flows: the substring behaviour is unchanged, and the anchored form
   is not weaker *)
let test_anchored_equals_substring () =
  List.iter
    (fun (seed, idx) ->
      let apk = gen_apk ~profile:Gen.Malware ~seed idx in
      let via_substring =
        keys_of_findings (analyze ~targeted:[ sms ] apk).Infoflow.r_findings
      in
      let via_anchored =
        keys_of_findings
          (analyze ~targeted:[ sms_anchored ] apk).Infoflow.r_findings
      in
      Alcotest.(check (list (triple (option string) string (option string))))
        (Printf.sprintf "anchored = substring (malware/%d/%d)" seed idx)
        via_substring via_anchored)
    [ (11, 0); (11, 1); (23, 2) ]

(* anchored patterns discriminate on components a substring cannot:
   wrong arity, wrong return type or wrong name match nothing *)
let test_anchored_discriminates () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 0 in
  let empty_for what pattern =
    let r = analyze ~targeted:[ pattern ] apk in
    Alcotest.(check int) (what ^ ": no findings") 0
      (List.length r.Infoflow.r_findings);
    Alcotest.(check int) (what ^ ": no entries") 0
      (List.length r.Infoflow.r_entries)
  in
  empty_for "wrong arity"
    (Printf.sprintf "<android.telephony.SmsManager: %s sendTextMessage(%s)>"
       obj obj);
  empty_for "wrong return type"
    (Printf.sprintf "<android.telephony.SmsManager: void sendTextMessage(%s)>"
       (String.concat "," [ obj; obj; obj; obj; obj ]));
  empty_for "wrong name"
    (Printf.sprintf "<android.telephony.SmsManager: %s sendDataMessage(%s)>"
       obj
       (String.concat "," [ obj; obj; obj; obj; obj ]));
  empty_for "wrong class"
    (Printf.sprintf "<android.telephony.Other: %s sendTextMessage(%s)>" obj
       (String.concat "," [ obj; obj; obj; obj; obj ]))

(* a pattern that merely looks anchored (no "ret name" head) falls
   back to plain substring matching — same result as any other
   non-matching substring, never a parse error *)
let test_malformed_anchor_is_substring () =
  let apk = gen_apk ~profile:Gen.Malware ~seed:5 1 in
  let r =
    analyze
      ~targeted:[ "<android.telephony.SmsManager: sendTextMessage(...)>" ]
      apk
  in
  Alcotest.(check int) "malformed anchor: substring semantics" 0
    (List.length r.Infoflow.r_findings);
  (* and a plain substring containing no signature punctuation still
     matches as before *)
  let sub = analyze ~targeted:[ "sendTextMessage" ] apk in
  let named = analyze ~targeted:[ sms ] apk in
  Alcotest.(check (list (triple (option string) string (option string))))
    "bare-name substring unchanged"
    (keys_of_findings named.Infoflow.r_findings)
    (keys_of_findings sub.Infoflow.r_findings)

(* ---------------- store digest separation ------------------------ *)

let test_digest_separation () =
  let sources = Fd_frontend.Sourcesink.default () in
  let wrappers = Fd_frontend.Rules.default_wrappers () in
  let natives = Fd_frontend.Rules.default_natives () in
  let digest targeted =
    Summary.config_digest
      ~config:{ Config.default with Config.targeted }
      ~sources ~wrappers ~natives
  in
  Alcotest.(check bool) "full vs targeted differ" true
    (digest [] <> digest [ sms ]);
  Alcotest.(check bool) "different sink sets differ" true
    (digest [ sms ] <> digest [ "Log.i" ]);
  Alcotest.(check string) "pattern order is canonicalised"
    (digest [ sms; "Log.i" ])
    (digest [ "Log.i"; sms ])

let () =
  Alcotest.run "fd_targeted"
    [
      ( "targeted",
        [
          Alcotest.test_case "verdict identity vs full mode" `Quick
            test_verdict_identity;
          Alcotest.test_case "no lost leaks across a sweep" `Quick
            test_no_lost_leaks;
          Alcotest.test_case "empty slice drops every entry" `Quick
            test_empty_slice;
          Alcotest.test_case "slice counts and membership" `Quick
            test_slice_counts;
          Alcotest.test_case "targeted.* metrics" `Quick
            test_metrics_published;
          Alcotest.test_case "anchored signature = substring result" `Quick
            test_anchored_equals_substring;
          Alcotest.test_case "anchored signatures discriminate" `Quick
            test_anchored_discriminates;
          Alcotest.test_case "malformed anchor falls back to substring" `Quick
            test_malformed_anchor_is_substring;
          Alcotest.test_case "store digest separation" `Quick
            test_digest_separation;
        ] );
    ]
