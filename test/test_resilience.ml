(* Tests for the resilience layer: budgets and cooperative
   cancellation, the degradation ladder, the lenient frontend, crash
   barriers and the deterministic fault-injection harness. *)

open Fd_core
module R = Fd_resilience
module Apk = Fd_frontend.Apk
module FW = Fd_frontend.Framework

(* ---------------- outcomes ---------------- *)

let test_outcome_taxonomy () =
  Alcotest.(check bool) "complete" true R.Outcome.(is_complete Complete);
  Alcotest.(check bool) "crashed not complete" false
    R.Outcome.(is_complete (Crashed "x"));
  Alcotest.(check bool) "worst picks crash" true
    R.Outcome.(equal (worst Deadline_exceeded (Crashed "x")) (Crashed "x"));
  Alcotest.(check bool) "crashed equal ignores message" true
    R.Outcome.(equal (Crashed "a") (Crashed "b"));
  Alcotest.(check string) "stable string" "deadline-exceeded"
    R.Outcome.(to_string Deadline_exceeded)

(* ---------------- budgets ---------------- *)

let test_budget_cap () =
  let b = R.Budget.create ~max_propagations:3 () in
  Alcotest.(check bool) "tick 1" true (R.Budget.tick b);
  Alcotest.(check bool) "tick 2" true (R.Budget.tick b);
  Alcotest.(check bool) "tick 3" true (R.Budget.tick b);
  Alcotest.(check bool) "tick 4 trips" false (R.Budget.tick b);
  Alcotest.(check bool) "sticky" false (R.Budget.tick b);
  Alcotest.(check string) "outcome" "budget-exhausted"
    (R.Outcome.to_string (R.Budget.outcome b))

let test_budget_deadline () =
  let b = R.Budget.create ~deadline_s:0.0 () in
  (* the first tick consults the clock, so a zero deadline fires even
     on a one-statement app *)
  Alcotest.(check bool) "first tick trips" false (R.Budget.tick b);
  Alcotest.(check string) "outcome" "deadline-exceeded"
    (R.Outcome.to_string (R.Budget.outcome b))

let test_budget_cancel () =
  let b = R.Budget.create () in
  Alcotest.(check bool) "live" true (R.Budget.tick b);
  R.Budget.cancel b;
  Alcotest.(check bool) "stopped" true (R.Budget.stopped b);
  Alcotest.(check bool) "tick observes cancel" false (R.Budget.tick b);
  Alcotest.(check string) "outcome" "cancelled"
    (R.Outcome.to_string (R.Budget.outcome b))

(* ---------------- chaos determinism ---------------- *)

let test_chaos_deterministic () =
  let input = String.init 256 (fun i -> Char.chr (32 + (i mod 90))) in
  let run () =
    let c = R.Chaos.create ~seed:42 ~rate:0.5 in
    List.init 20 (fun _ -> R.Chaos.corrupt_string c input)
  in
  Alcotest.(check bool) "same seed, same corruption" true (run () = run ());
  let c = R.Chaos.create ~seed:42 ~rate:1.0 in
  Alcotest.(check bool) "rate 1 always corrupts" true
    (R.Chaos.corrupt_string c input <> input);
  let c0 = R.Chaos.create ~seed:42 ~rate:0.0 in
  Alcotest.(check string) "rate 0 never corrupts" input
    (R.Chaos.corrupt_string c0 input)

let test_barrier () =
  (match R.Barrier.protect ~label:"ok" (fun () -> 7) with
  | Ok v -> Alcotest.(check int) "value" 7 v
  | Error _ -> Alcotest.fail "unexpected crash");
  (match R.Barrier.protect ~label:"boom" (fun () -> failwith "x") with
  | Ok _ -> Alcotest.fail "should have crashed"
  | Error o ->
      Alcotest.(check bool) "crashed outcome" true
        (R.Outcome.equal o (R.Outcome.Crashed "")));
  match
    R.Barrier.protect_with_retry ~label:"flaky"
      (fun () -> failwith "first")
      ~retry:(fun () -> 9)
  with
  | Ok v -> Alcotest.(check int) "retry rescued" 9 v
  | Error _ -> Alcotest.fail "retry should have succeeded"

(* ---------------- deadline mid-solve on a real app ---------------- *)

let leakage_dir = "../examples/apps/leakage_app"

let test_deadline_mid_solve () =
  if not (Sys.file_exists leakage_dir) then Alcotest.skip ();
  let apk = Apk.of_dir leakage_dir in
  let full = Infoflow.analyze_apk apk in
  Alcotest.(check bool) "full run completes" true
    (R.Outcome.is_complete full.Infoflow.r_stats.Infoflow.st_outcome);
  Alcotest.(check bool) "full run finds the leak" true
    (full.Infoflow.r_findings <> []);
  let config = { Config.default with Config.deadline_s = Some 0.0 } in
  let r = Infoflow.analyze_apk ~config apk in
  Alcotest.(check string) "deadline outcome" "deadline-exceeded"
    (R.Outcome.to_string r.Infoflow.r_stats.Infoflow.st_outcome);
  (* it stopped promptly: barely any solver work happened *)
  Alcotest.(check bool) "stopped promptly" true
    (r.Infoflow.r_stats.Infoflow.st_propagations < 10);
  (* partial findings are a subset of the full run's *)
  Alcotest.(check bool) "partial under-approximates" true
    (List.length r.Infoflow.r_findings <= List.length full.Infoflow.r_findings)

(* ---------------- the degradation ladder ---------------- *)

let test_ladder_shape () =
  let ladder = Config.degradation_ladder Config.default in
  Alcotest.(check (list string))
    "rung labels" [ "full"; "k=3"; "k=1"; "k=1,no-alias" ]
    (List.map fst ladder);
  let _, last = List.nth ladder 3 in
  Alcotest.(check bool) "last rung disables aliasing" false
    last.Config.alias_search;
  Alcotest.(check int) "last rung is k=1" 1 last.Config.max_access_path

let test_ladder_converges () =
  if not (Sys.file_exists leakage_dir) then Alcotest.skip ();
  let apk = Apk.of_dir leakage_dir in
  (* leakage_app needs ~5700 propagations at full precision, ~2000 at
     k=1 and ~200 with aliasing off: a 1000-propagation budget
     exhausts the first three rungs and completes on the fourth *)
  let config = { Config.default with Config.max_propagations = 1000 } in
  let fb = Infoflow.analyze_with_fallback ~config apk in
  Alcotest.(check string) "degraded completeness" "degraded(k=1,no-alias)"
    (Infoflow.string_of_completeness fb.Infoflow.fb_completeness);
  Alcotest.(check int) "four attempts" 4 (List.length fb.Infoflow.fb_attempts);
  let last = List.nth fb.Infoflow.fb_attempts 3 in
  Alcotest.(check bool) "last attempt complete" true
    (R.Outcome.is_complete last.Infoflow.at_outcome);
  List.iteri
    (fun i (a : Infoflow.attempt) ->
      if i < 3 then
        Alcotest.(check string)
          (Printf.sprintf "rung %d exhausted" i)
          "budget-exhausted"
          (R.Outcome.to_string a.Infoflow.at_outcome))
    fb.Infoflow.fb_attempts;
  Alcotest.(check bool) "final result complete" true
    (R.Outcome.is_complete fb.Infoflow.fb_result.Infoflow.r_stats.Infoflow.st_outcome)

(* ---------------- lenient frontend ---------------- *)

let good_unit =
  {|class t.Main extends android.app.Activity {
  method void onCreate(android.os.Bundle) {
    local b : android.os.Bundle;
    local tm : android.telephony.TelephonyManager;
    local imei : java.lang.String;
    local sms : android.telephony.SmsManager;
    this := @this: t.Main;
    b := @parameter0;
    imei = virtualinvoke tm.android.telephony.TelephonyManager#getDeviceId() @"src-imei";
    sms = staticinvoke android.telephony.SmsManager#getDefault();
    virtualinvoke sms.android.telephony.SmsManager#sendTextMessage(imei, null, imei, null, null) @"sink-sms";
    return;
  }
}|}

let broken_unit = "class t.Broken extends {{{ not jimple at all"

let manifest_with_bad_bits =
  {|<?xml version="1.0" encoding="utf-8"?>
<manifest package="t">
  <application>
    <activity android:name=".Main">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
        <category android:name="android.intent.category.LAUNCHER"/>
      </intent-filter>
    </activity>
    <activity android:enabled="notabool" android:name=".Other"/>
    <activity android:name=".Broken"/>
  </application>
</manifest>|}

let test_lenient_survives_corruption () =
  (* strict mode refuses the broken unit outright *)
  (match
     Apk.make_text "strict" ~manifest:manifest_with_bad_bits
       [ good_unit; broken_unit ]
   with
  | exception Apk.Load_error _ -> ()
  | _ -> Alcotest.fail "strict make_text should raise");
  (* lenient mode: the bad unit, the bad manifest component and the
     component whose class was lost are all skipped with diagnostics,
     and the surviving class still yields the flow *)
  let apk =
    Apk.make_text ~mode:`Lenient "lenient" ~manifest:manifest_with_bad_bits
      [ good_unit; broken_unit ]
  in
  Alcotest.(check int) "bundle diagnostic for bad unit" 1
    (List.length apk.Apk.apk_diags);
  (match List.hd apk.Apk.apk_diags with
  | d ->
      Alcotest.(check bool) "diag carries a line" true
        (d.R.Diag.d_line <> None));
  let r = Infoflow.analyze_apk ~mode:`Lenient apk in
  Alcotest.(check bool) "diagnostics recorded" true
    (List.length r.Infoflow.r_diags >= 3);
  Alcotest.(check bool) "analysis completed" true
    (R.Outcome.is_complete r.Infoflow.r_stats.Infoflow.st_outcome);
  Alcotest.(check int) "surviving class still leaks" 1
    (List.length r.Infoflow.r_findings)

let test_lenient_corrupted_manifest () =
  let truncated = {|<?xml version="1.0"?><manifest package="t"><application>|} in
  (* strict load refuses *)
  (match Apk.load (Apk.make_text "strict" ~manifest:truncated [ good_unit ])
   with
  | exception Apk.Load_error _ -> ()
  | _ -> Alcotest.fail "strict load should raise");
  (* lenient load degrades to an empty manifest with a diagnostic *)
  let loaded =
    Apk.load ~mode:`Lenient
      (Apk.make_text ~mode:`Lenient "lenient" ~manifest:truncated
         [ good_unit ])
  in
  Alcotest.(check int) "no components" 0 (List.length loaded.Apk.components);
  Alcotest.(check bool) "manifest diagnostic" true (loaded.Apk.diags <> [])

let test_lenient_bad_layout () =
  let manifest =
    Apk.simple_manifest ~package:"t" [ (FW.Activity, "t.Main", []) ]
  in
  let apk =
    Apk.make_text ~mode:`Lenient "layouts" ~manifest
      ~layouts:[ ("good", "<LinearLayout/>"); ("bad", "<unclosed") ]
      [ good_unit ]
  in
  let loaded = Apk.load ~mode:`Lenient apk in
  Alcotest.(check bool) "bad layout diagnosed" true
    (List.exists
       (fun (d : R.Diag.t) ->
         (* the diagnostic names the offending file *)
         String.length d.R.Diag.d_file > 0
         && String.ends_with ~suffix:"bad.xml" d.R.Diag.d_file)
       loaded.Apk.diags);
  Alcotest.(check bool) "good layout survived" true
    (match Fd_frontend.Layout.layout_id loaded.Apk.layout "good" with
    | Some _ -> true
    | None -> false)

(* ---------------- I/O errors are Load_error, never Sys_error ----- *)

let test_of_dir_io_errors () =
  (match Apk.of_dir "/nonexistent/surely/not/here" with
  | exception Apk.Load_error _ -> ()
  | exception Sys_error msg ->
      Alcotest.fail ("Sys_error escaped of_dir: " ^ msg)
  | _ -> Alcotest.fail "of_dir on a missing dir should fail");
  (* a directory with a manifest entry that is itself a directory:
     open_in fails with Sys_error, which must surface as Load_error *)
  let tmp = Filename.temp_file "fd_res" "" in
  Sys.remove tmp;
  Unix.mkdir tmp 0o755;
  Unix.mkdir (Filename.concat tmp "AndroidManifest.xml") 0o755;
  Fun.protect
    ~finally:(fun () ->
      Unix.rmdir (Filename.concat tmp "AndroidManifest.xml");
      Unix.rmdir tmp)
    (fun () ->
      match Apk.of_dir tmp with
      | exception Apk.Load_error _ -> ()
      | exception Sys_error msg ->
          Alcotest.fail ("Sys_error escaped of_dir: " ^ msg)
      | _ -> Alcotest.fail "of_dir on a bogus manifest should fail")

(* ---------------- chaos over DroidBench never escapes ------------ *)

let test_chaos_suite_never_escapes () =
  let chaos = R.Chaos.create ~seed:20140609 ~rate:0.1 in
  let escaped = ref [] in
  let completed = ref 0 in
  List.iter
    (fun (app : Fd_droidbench.Bench_app.t) ->
      let apk = app.Fd_droidbench.Bench_app.app_apk in
      let label = app.Fd_droidbench.Bench_app.app_name in
      match
        R.Barrier.protect ~label (fun () ->
            let sources =
              List.map
                (fun cls ->
                  R.Chaos.corrupt_string chaos
                    (Fd_ir.Pretty.class_to_string cls))
                apk.Apk.apk_classes
            in
            let corrupted =
              Apk.make_text ~mode:`Lenient label
                ~manifest:apk.Apk.apk_manifest
                ~layouts:apk.Apk.apk_layouts sources
            in
            Infoflow.analyze_with_fallback ~mode:`Lenient ~chaos corrupted)
      with
      | Ok _ -> incr completed
      | Error _ -> incr completed  (* crashed, but the barrier held *)
      | exception e -> escaped := (label, Printexc.to_string e) :: !escaped)
    Fd_droidbench.Suite.all;
  Alcotest.(check (list (pair string string)))
    "no exception escapes the barrier" [] !escaped;
  Alcotest.(check int) "every app produced an outcome"
    (List.length Fd_droidbench.Suite.all)
    !completed

let () =
  Alcotest.run "fd_resilience"
    [
      ( "outcome",
        [ Alcotest.test_case "taxonomy" `Quick test_outcome_taxonomy ] );
      ( "budget",
        [
          Alcotest.test_case "propagation cap" `Quick test_budget_cap;
          Alcotest.test_case "zero deadline" `Quick test_budget_deadline;
          Alcotest.test_case "cancellation" `Quick test_budget_cancel;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic" `Quick test_chaos_deterministic;
          Alcotest.test_case "barrier" `Quick test_barrier;
        ] );
      ( "solver",
        [
          Alcotest.test_case "deadline mid-solve" `Quick
            test_deadline_mid_solve;
          Alcotest.test_case "ladder shape" `Quick test_ladder_shape;
          Alcotest.test_case "ladder converges" `Quick test_ladder_converges;
        ] );
      ( "lenient frontend",
        [
          Alcotest.test_case "survives corruption" `Quick
            test_lenient_survives_corruption;
          Alcotest.test_case "corrupted manifest" `Quick
            test_lenient_corrupted_manifest;
          Alcotest.test_case "bad layout" `Quick test_lenient_bad_layout;
          Alcotest.test_case "I/O errors" `Quick test_of_dir_io_errors;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "chaos suite never escapes" `Quick
            test_chaos_suite_never_escapes;
        ] );
    ]
