(* Witness-path validation: every flow reported under [--provenance]
   must carry a provenance witness that

   - starts at the finding's source statement and ends at its sink
     statement (endpoint agreement with the reported flow);
   - takes only ICFG-adjacent steps (no teleporting across the
     program: each consecutive pair of witness nodes is one solver
     step apart under {!Fd_diffcheck.Diffcheck.witness_adjacent});
   - on apps the dynamic interpreter also leaks on, agrees with the
     interpreter's observed (source tag, sink tag) keys.

   Checked on the full DroidBench suite (every true positive the
   engine reports), on the checked-in minimized reproducers under
   examples/repro, and on the on-disk quickstart app. *)

module Dc = Fd_diffcheck.Diffcheck
module Suite = Fd_droidbench.Suite
module Apk = Fd_frontend.Apk

let check_report name (wr : Dc.witness_report) =
  List.iter
    (fun e -> Printf.printf "witness error: %s\n" e)
    wr.Dc.wr_errors;
  Alcotest.(check (list string))
    (Printf.sprintf "%s: structurally valid witnesses" name)
    [] wr.Dc.wr_errors;
  Alcotest.(check int)
    (Printf.sprintf "%s: every finding witnessed" name)
    wr.Dc.wr_findings wr.Dc.wr_witnessed

(* every DroidBench case: each reported flow (in particular every true
   positive) carries a source-to-sink witness with ICFG-adjacent
   steps *)
let test_droidbench_witnesses () =
  List.iter
    (fun (app : Fd_droidbench.Bench_app.t) ->
      let name = app.Fd_droidbench.Bench_app.app_name in
      check_report name
        (Dc.check_witnesses ~name app.Fd_droidbench.Bench_app.app_apk))
    Suite.all

(* on a direct leak the dynamic interpreter observes the same key the
   witness explains: static witness and dynamic trace agree *)
let test_dynamic_agreement () =
  let app =
    match Suite.find "DirectLeak1" with
    | Some a -> a.Fd_droidbench.Bench_app.app_apk
    | None -> Alcotest.fail "DirectLeak1 missing from the suite"
  in
  let wr = Dc.check_witnesses ~name:"DirectLeak1" app in
  check_report "DirectLeak1" wr;
  Alcotest.(check bool) "at least one witnessed flow" true
    (wr.Dc.wr_witnessed > 0);
  Alcotest.(check int) "interpreter confirms every witnessed flow"
    wr.Dc.wr_witnessed wr.Dc.wr_dynamic_agree

(* the checked-in minimized reproducers: witnesses stay valid on apps
   crafted to sit exactly on a documented limitation (static-only
   flows are expected there — FP reproducers — so only structural
   validity and endpoint agreement are asserted) *)
let test_repro_witnesses () =
  let root = "../examples/repro" in
  let cases =
    Sys.readdir root |> Array.to_list |> List.sort compare
    |> List.filter (fun d -> Sys.is_directory (Filename.concat root d))
  in
  Alcotest.(check bool) "reproducers present" true (cases <> []);
  List.iter
    (fun case ->
      let apk = Apk.of_dir (Filename.concat root case) in
      check_report case (Dc.check_witnesses ~name:case apk))
    cases

(* the on-disk quickstart app, loaded the way the CLI loads it *)
let test_example_app_witnesses () =
  let apk = Apk.of_dir "../examples/apps/leakage_app" in
  let wr = Dc.check_witnesses ~name:"leakage_app" apk in
  check_report "leakage_app" wr;
  Alcotest.(check bool) "flow witnessed" true (wr.Dc.wr_witnessed > 0)

let () =
  Alcotest.run "fd_witness"
    [
      ( "witnesses",
        [
          Alcotest.test_case "droidbench suite" `Quick
            test_droidbench_witnesses;
          Alcotest.test_case "dynamic agreement" `Quick test_dynamic_agreement;
          Alcotest.test_case "minimized reproducers" `Quick
            test_repro_witnesses;
          Alcotest.test_case "example app" `Quick test_example_app_witnesses;
        ] );
    ]
