(* Tests for the performance layer (PR 3):

   - the interning pools: equal values get equal ids (and nothing
     else does), ids round-trip through [value], the one-slot cache
     keeps counters honest;
   - the explicit hash functions: consistent with [equal], and — the
     regression the fold-based hashes exist for — sensitive to
     differences arbitrarily deep in an access path, where the
     polymorphic hash's depth cutoff made deep paths collide;
   - the domain pool: [Pool.map] preserves order and determinism at
     any job count;
   - the app-level parallelism contract: the DroidBench and
     SecuriBench tables render bit-identically at --jobs 1 and
     --jobs 4. *)

open Fd_ir
module AP = Fd_core.Access_path
module Intern = Fd_util.Intern
module Pool = Fd_util.Pool

let loc name = Stmt.mk_local name
let fld name = Types.mk_field "t.C" name
let ap base fields = { AP.base = AP.Bloc (loc base); AP.fields }

(* ---------------- generators ---------------- *)

let gen_ap =
  QCheck.Gen.(
    let* base = oneofl [ "x"; "y"; "z" ] in
    let* fields = list_size (int_bound 12) (oneofl [ "f"; "g"; "h" ]) in
    return (ap base (List.map fld fields)))

let arb_ap = QCheck.make ~print:AP.to_string gen_ap
let arb_ap_pair = QCheck.pair arb_ap arb_ap

(* ---------------- interning ---------------- *)

module Ap_pool = Intern.Make (struct
  type t = AP.t

  let equal = AP.equal
  let hash = AP.hash
end)

let prop_intern_id_iff_equal =
  QCheck.Test.make ~name:"intern: same id <=> structurally equal" ~count:500
    arb_ap_pair (fun (a, b) ->
      let p = Ap_pool.create () in
      Bool.equal (Ap_pool.id p a = Ap_pool.id p b) (AP.equal a b))

let prop_intern_value_roundtrip =
  QCheck.Test.make ~name:"intern: value (id v) is equal to v" ~count:500
    arb_ap (fun a ->
      let p = Ap_pool.create () in
      AP.equal a (Ap_pool.value p (Ap_pool.id p a)))

(* regression: [grow] fills the spare capacity with the inserted
   value, so before the bound check [value p i] for an unallocated id
   returned an unrelated valid-looking value instead of failing *)
let test_intern_value_bounds () =
  let p = Ap_pool.create () in
  let a = ap "x" [ fld "f" ] in
  ignore (Ap_pool.id p a);
  Alcotest.(check bool) "allocated id round-trips" true
    (AP.equal a (Ap_pool.value p 0));
  let expect_invalid i =
    match Ap_pool.value p i with
    | _ -> Alcotest.failf "value %d on a 1-element pool must raise" i
    | exception Invalid_argument _ -> ()
  in
  expect_invalid 1;
  (* inside the physical array's spare capacity — the garbage zone *)
  expect_invalid 17;
  expect_invalid (-1)

let test_intern_counters () =
  let p = Ap_pool.create () in
  let a = ap "x" [ fld "f" ] and a' = ap "x" [ fld "f" ] in
  let b = ap "y" [] in
  let ia = Ap_pool.id p a in
  Alcotest.(check int) "dense from 0" 0 ia;
  Alcotest.(check int) "structural re-intern" ia (Ap_pool.id p a');
  Alcotest.(check bool) "distinct value, distinct id" true
    (Ap_pool.id p b <> ia);
  Alcotest.(check int) "two distinct values" 2 (Ap_pool.size p);
  Alcotest.(check (option int)) "find_id never interns" None
    (Ap_pool.find_id p (ap "z" []));
  Alcotest.(check int) "find_id did not grow the pool" 2 (Ap_pool.size p)

(* ---------------- explicit hashes ---------------- *)

let prop_hash_consistent_with_equal =
  QCheck.Test.make ~name:"AP.hash: equal paths hash equal" ~count:500
    arb_ap (fun a ->
      let copy = { AP.base = a.AP.base; AP.fields = a.AP.fields } in
      AP.hash a = AP.hash copy)

(* regression: [Hashtbl.hash] stops after ~10 "meaningful" nodes, so
   structural keys differing only deep in the field chain collided and
   the solver tables degenerated into linked-list scans.  The explicit
   fold visits every segment. *)
let test_deep_hash_no_truncation () =
  let deep tail =
    ap "x" (List.init 14 (fun i -> fld (Printf.sprintf "f%d" i)) @ [ fld tail ])
  in
  let a = deep "left" and b = deep "right" in
  Alcotest.(check bool) "paths differ" false (AP.equal a b);
  Alcotest.(check bool) "polymorphic hash truncates (sanity)" true
    (Hashtbl.hash a = Hashtbl.hash b);
  Alcotest.(check bool) "explicit hash reaches the tail" true
    (AP.hash a <> AP.hash b)

(* ---------------- domain pool ---------------- *)

let prop_pool_map_ordered =
  QCheck.Test.make ~name:"Pool.map: ordered, complete, any job count"
    ~count:50
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_bound 40) small_int))
    (fun (jobs, xs) ->
      Pool.map ~jobs (fun x -> x * x) xs = List.map (fun x -> x * x) xs)

(* regression: a throwing [f] on the calling-domain worker used to
   leave the spawned domains unjoined (leaked domains, lost
   exceptions), and only join-time failures were wrapped.  Now any
   worker failure joins everything first and surfaces uniformly as
   [Worker_failed]. *)
let test_pool_worker_failure () =
  let boom = Failure "boom" in
  (* every worker throws on its first claimed item — including worker
     0 (the calling domain), the previously-leaking path *)
  (match Pool.map ~jobs:4 (fun _ -> raise boom) [ 1; 2; 3; 4; 5; 6 ] with
  | _ -> Alcotest.fail "a throwing f must not produce a result"
  | exception Pool.Worker_failed (Failure msg) when String.equal msg "boom" ->
      ()
  | exception e ->
      Alcotest.failf "expected Worker_failed (Failure boom), got %s"
        (Printexc.to_string e));
  (* a single poisoned item among good ones, repeated so the failing
     item lands on different workers across iterations *)
  for _ = 1 to 20 do
    match
      Pool.map ~jobs:3 (fun x -> if x = 13 then raise boom else x)
        [ 1; 13; 2; 3; 4; 5; 6; 7 ]
    with
    | _ -> Alcotest.fail "poisoned batch must fail"
    | exception Pool.Worker_failed _ -> ()
  done;
  (* the pool is still usable afterwards: nothing hung, nothing leaked *)
  Alcotest.(check (list int)) "pool survives failures" [ 2; 4; 6 ]
    (Pool.map ~jobs:3 (fun x -> 2 * x) [ 1; 2; 3 ])

(* ---------------- generator seed mixing ---------------- *)

(* regression: [Prng.create (seed + index * 7919)] made distinct
   (seed, index) pairs collide — (s + 7919, 0) and (s, 1) yielded
   identical apps.  [Intern.combine] mixing keeps every pair's stream
   distinct. *)
let test_generator_seed_mixing () =
  let fingerprint (ga : Fd_appgen.Generator.gen_app) =
    String.concat "\n"
      (List.map Pretty.class_to_string
         ga.Fd_appgen.Generator.ga_apk.Fd_frontend.Apk.apk_classes)
  in
  List.iter
    (fun seed ->
      List.iter
        (fun profile ->
          let a =
            Fd_appgen.Generator.generate ~profile ~seed:(seed + 7919) 0
          in
          let b = Fd_appgen.Generator.generate ~profile ~seed 1 in
          Alcotest.(check bool)
            (Printf.sprintf "apps (s+7919, 0) and (s, 1) differ at s=%d" seed)
            false
            (String.equal (fingerprint a) (fingerprint b)))
        [ Fd_appgen.Generator.Play; Fd_appgen.Generator.Malware ])
    [ 7; 100; 20140609 ]

(* ---------------- --jobs determinism on the real tables ---------------- *)

let test_droidbench_jobs_deterministic () =
  let engines = [ Fd_eval.Engines.flowdroid (); Fd_eval.Engines.appscan ] in
  let render t =
    Fd_eval.Droidbench_table.render t
    ^ Fd_eval.Droidbench_table.render_outcomes t
  in
  let seq = render (Fd_eval.Droidbench_table.run ~jobs:1 engines) in
  let par = render (Fd_eval.Droidbench_table.run ~jobs:4 engines) in
  Alcotest.(check string) "droidbench table identical at jobs 1 vs 4" seq par

let test_securibench_jobs_deterministic () =
  let seq = Fd_eval.Securibench_table.render (Fd_eval.Securibench_table.run ~jobs:1 ()) in
  let par = Fd_eval.Securibench_table.render (Fd_eval.Securibench_table.run ~jobs:4 ()) in
  Alcotest.(check string) "securibench table identical at jobs 1 vs 4" seq par

let () =
  Alcotest.run "fd_perf"
    [
      ( "intern",
        List.map QCheck_alcotest.to_alcotest
          [ prop_intern_id_iff_equal; prop_intern_value_roundtrip ]
        @ [
            Alcotest.test_case "pool counters and density" `Quick
              test_intern_counters;
            Alcotest.test_case "value bound-checks unallocated ids" `Quick
              test_intern_value_bounds;
          ] );
      ( "hash",
        List.map QCheck_alcotest.to_alcotest
          [ prop_hash_consistent_with_equal ]
        @ [ Alcotest.test_case "deep paths hash apart" `Quick
              test_deep_hash_no_truncation ] );
      ( "pool",
        List.map QCheck_alcotest.to_alcotest [ prop_pool_map_ordered ]
        @ [
            Alcotest.test_case "throwing f joins all domains" `Quick
              test_pool_worker_failure;
          ] );
      ( "generator",
        [
          Alcotest.test_case "seed/index mixing is collision-free" `Quick
            test_generator_seed_mixing;
        ] );
      ( "jobs-determinism",
        [
          Alcotest.test_case "droidbench --jobs invariant" `Quick
            test_droidbench_jobs_deterministic;
          Alcotest.test_case "securibench --jobs invariant" `Quick
            test_securibench_jobs_deterministic;
        ] );
    ]
