(* The opt-in precision pass suite (Config.precision):

   - each checked-in minimized reproducer under examples/repro flips
     its verdict when exactly its pass is enabled (fp-* constructs are
     no longer reported, fn-* constructs are now detected) and stays
     put with every pass off;
   - soundness: enabling all passes never adds a static finding the
     dynamic interpreter does not observe (qcheck over the generated
     corpus);
   - a flags-on campaign classifies every limitation plant without
     divergences: FN plants confirm, FP plants land in fixed(...). *)

open Fd_core
module Gen = Fd_appgen.Generator
module Dc = Fd_diffcheck.Diffcheck
module V = Fd_diffcheck.Verdict
module Apk = Fd_frontend.Apk

let with_pass f = { Config.default with Config.precision = f }

let pass_must_alias =
  with_pass { Config.no_precision with Config.must_alias = true }

let pass_array_index =
  with_pass { Config.no_precision with Config.array_index = true }

let pass_reflection =
  with_pass { Config.no_precision with Config.reflection = true }

let pass_clinit = with_pass { Config.no_precision with Config.clinit = true }
let all_on = with_pass Config.all_precision

(* --- the four minimized reproducers --- *)

let repro_root = Filename.concat (Filename.concat ".." "examples") "repro"

let read_repro_key dir =
  let ic = open_in (Filename.concat dir "REPRO.txt") in
  let rec find () =
    match input_line ic with
    | line when String.length line > 5 && String.sub line 0 5 = "key: " ->
        close_in ic;
        String.sub line 5 (String.length line - 5)
    | _ -> find ()
    | exception End_of_file ->
        close_in ic;
        Alcotest.failf "no key line in %s/REPRO.txt" dir
  in
  find ()

let parse_key s : V.key =
  match String.index_opt s '-' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '>' ->
      let part p = if p = "?" then None else Some p in
      ( part (String.sub s 0 i),
        part (String.sub s (i + 2) (String.length s - i - 2)) )
  | _ -> Alcotest.failf "malformed key %S" s

(* [check_flip ~fn dir config] — with every pass off the reproducer
   witnesses its documented limitation; with [config]'s pass on the
   verdict flips: an fn-* leak is detected, an fp-* flow vanishes. *)
let check_flip ~fn dir config () =
  let dir = Filename.concat repro_root dir in
  let key = parse_key (read_repro_key dir) in
  let apk = Apk.of_dir dir in
  let off, _ = Dc.static_findings apk in
  let on, _ = Dc.static_findings ~config apk in
  if fn then begin
    Alcotest.(check bool) "passes off: leak still missed" false
      (List.mem key off);
    Alcotest.(check bool) "pass on: leak detected" true (List.mem key on)
  end
  else begin
    Alcotest.(check bool) "passes off: spurious flow still reported" true
      (List.mem key off);
    Alcotest.(check bool) "pass on: spurious flow gone" false
      (List.mem key on)
  end

(* --- soundness: passes only remove spurious flows or surface real
   ones --- *)

let keys_of config apk = fst (Dc.static_findings ~config apk)

let test_soundness =
  QCheck.Test.make ~name:"flags-on findings are dynamically corroborated"
    ~count:12
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let profile = if seed mod 2 = 0 then Gen.Play else Gen.Malware in
      let ga = Gen.generate ~profile ~seed 0 in
      let off = keys_of Config.default ga.Gen.ga_apk in
      let on = keys_of all_on ga.Gen.ga_apk in
      let dynamic = Dc.dynamic_findings ga.Gen.ga_apk in
      List.for_all
        (fun k -> List.mem k off || List.mem k dynamic)
        on)

(* --- flags-on campaign: plants reclassify, no divergences --- *)

let test_campaign_flags_on () =
  List.iter
    (fun profile ->
      let c =
        Dc.campaign ~config:all_on ~jobs:2 ~profile ~seed:20140609 ~n:20 ()
      in
      List.iter
        (fun ar ->
          Alcotest.(check (list string))
            (ar.Dc.ar_name ^ " has no divergences")
            []
            (List.map
               (fun v -> V.string_of_bucket v.V.v_bucket)
               (Dc.divergences ar)))
        c.Dc.cp_reports;
      let verdicts =
        List.concat_map (fun ar -> ar.Dc.ar_verdicts) c.Dc.cp_reports
      in
      (* no explained-* bucket may survive when its pass is on *)
      List.iter
        (fun v ->
          match v.V.v_bucket with
          | V.Explained_fn _ | V.Explained_fp _ | V.Unexercised _ ->
              Alcotest.failf "%s still classified %s under all passes"
                (V.string_of_key v.V.v_key)
                (V.string_of_bucket v.V.v_bucket)
          | V.Confirmed | V.Fixed _ | V.Divergence _ -> ())
        verdicts)
    [ Gen.Play; Gen.Malware ]

(* --- flags-off stability: the precision plumbing is inert by
   default --- *)

let test_flags_off_digest () =
  let run config =
    Dc.campaign ?config ~jobs:2 ~profile:Gen.Malware ~seed:7 ~n:8 ()
  in
  let base = run None in
  let off = run (Some { Config.default with Config.precision = Config.no_precision }) in
  Alcotest.(check string) "digest unchanged with explicit no_precision"
    (Dc.digest base) (Dc.digest off)

(* --- config surface --- *)

let test_precision_of_string () =
  let ok s = function
    | Ok p -> Alcotest.(check string) s s (Config.string_of_precision p)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "none" (Config.precision_of_string "none");
  ok "all" (Config.precision_of_string "all");
  ok "must-alias" (Config.precision_of_string "must-alias");
  ok "array-index,reflection"
    (Config.precision_of_string "array-index,reflection");
  (match Config.precision_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus accepted");
  Alcotest.(check bool) "enabled" true
    (Config.precision_enabled Config.all_precision);
  Alcotest.(check bool) "not enabled" false
    (Config.precision_enabled Config.no_precision)

let () =
  Alcotest.run "precision"
    [
      ( "repro-flip",
        [
          Alcotest.test_case "fp-strong-update / must-alias" `Quick
            (check_flip ~fn:false "fp-strong-update" pass_must_alias);
          Alcotest.test_case "fp-array-index / array-index" `Quick
            (check_flip ~fn:false "fp-array-index" pass_array_index);
          Alcotest.test_case "fn-reflection / reflection" `Quick
            (check_flip ~fn:true "fn-reflection" pass_reflection);
          Alcotest.test_case "fn-clinit-placement / clinit" `Quick
            (check_flip ~fn:true "fn-clinit-placement" pass_clinit);
        ] );
      ( "soundness",
        [ QCheck_alcotest.to_alcotest ~long:true test_soundness ] );
      ( "campaign",
        [
          Alcotest.test_case "flags-on: plants reclassify, no divergences"
            `Slow test_campaign_flags_on;
          Alcotest.test_case "flags-off digest is inert" `Quick
            test_flags_off_digest;
        ] );
      ( "config",
        [
          Alcotest.test_case "precision_of_string round-trips" `Quick
            test_precision_of_string;
        ] );
    ]
