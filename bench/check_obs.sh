#!/bin/sh
# Smoke test for the observability layer: run one DroidBench case
# end-to-end through flowdroid_cli with --stats-json/--trace-out and
# fail unless the emitted JSON carries the required keys.  Then gate
# the provenance layer:
#
#   - the DroidBench table with --provenance is byte-identical to the
#     default run (recording witnesses must not change any result);
#   - provenance-on solver time stays under 1.3x the default run;
#   - --provenance/--profile-out stats carry the new keys (witnesses,
#     p50/p90/p99, profile) and the collapsed-stack file is well
#     formed.
#
# Writes BENCH_obs2.json at the repo root.
#
#   sh bench/check_obs.sh [CASE]        (default case: DirectLeak1)
#
# Exits non-zero on any missing key, so it can gate CI.
set -eu

case_name="${1:-DirectLeak1}"
root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"

echo "== check_obs: dumping DroidBench case $case_name"
dune exec --display=quiet bin/droidbench_runner.exe -- \
  --app "$case_name" --dump "$work/apps"

app_dir="$work/apps/$case_name"
[ -d "$app_dir" ] || { echo "FAIL: dump did not produce $app_dir"; exit 1; }

echo "== check_obs: analysing $app_dir with flowdroid_cli"
stats="$work/stats.json"
trace="$work/trace.json"
# exit status 2 = flows found, which is expected for a leak case
status=0
dune exec --display=quiet bin/flowdroid_cli.exe -- "$app_dir" \
  --stats-json "$stats" --trace-out "$trace" >"$work/stdout.txt" 2>&1 \
  || status=$?
if [ "$status" != 0 ] && [ "$status" != 2 ]; then
  echo "FAIL: flowdroid_cli exited with status $status"
  cat "$work/stdout.txt"
  exit 1
fi

fail=0
require_key () {
  # require_key FILE KEY — KEY must appear as a JSON object key
  if grep -q "\"$1\"" "$2"; then
    echo "ok: $2 has \"$1\""
  else
    echo "FAIL: $2 is missing key \"$1\""
    fail=1
  fi
}

for key in counters gauges histograms phases \
           ifds.path_edges ifds.worklist_pops bidi.fw_propagations \
           cg.reachable_methods core.analysis_seconds taint.solve; do
  require_key "$key" "$stats"
done

for key in traceEvents displayTimeUnit taint.solve callgraph.build; do
  require_key "$key" "$trace"
done

# a counter that exists but never fired would still pass the key test;
# make sure the solver actually counted something
if grep -q '"ifds.path_edges": 0,' "$stats"; then
  echo "FAIL: ifds.path_edges is zero — solver was not instrumented"
  fail=1
fi

# quantile estimates ship with every histogram snapshot
for key in p50 p90 p99; do
  require_key "$key" "$stats"
done

echo "== check_obs: provenance off/on byte-identity (DroidBench table)"
dune exec --display=quiet bin/droidbench_runner.exe \
  > "$work/table_off.txt" 2>/dev/null
dune exec --display=quiet bin/droidbench_runner.exe -- --provenance \
  > "$work/table_on.txt" 2>/dev/null
if cmp -s "$work/table_off.txt" "$work/table_on.txt"; then
  echo "ok: table identical with provenance on"
  identical=true
else
  echo "FAIL: --provenance changed the DroidBench table"
  diff "$work/table_off.txt" "$work/table_on.txt" | head -20
  identical=false
  fail=1
fi

echo "== check_obs: provenance overhead on the perf workload"
# solver seconds = the core.analysis_seconds histogram sum across the
# whole table run; take the best of two runs per config to damp noise
solve_sum () {
  dune exec --display=quiet bin/droidbench_runner.exe -- $1 \
    --stats-json "$work/ov.json" >/dev/null 2>&1
  python3 -c "import json; print(json.load(open('$work/ov.json'))['histograms']['core.analysis_seconds']['sum'])"
}
t_off_1=$(solve_sum "");            t_off_2=$(solve_sum "")
t_on_1=$(solve_sum "--provenance"); t_on_2=$(solve_sum "--provenance")
overhead=$(python3 -c "
off = min($t_off_1, $t_off_2)
on = min($t_on_1, $t_on_2)
print('%.3f' % (on / off if off > 0 else 1.0))")
# 50 ms absolute slack: the whole workload solves in well under a
# second, where scheduler noise would otherwise dominate the ratio
ov_ok=$(python3 -c "
off = min($t_off_1, $t_off_2)
on = min($t_on_1, $t_on_2)
print('true' if on <= 1.3 * off + 0.05 else 'false')")
if [ "$ov_ok" = true ]; then
  echo "ok: provenance overhead ${overhead}x (limit 1.3x)"
else
  echo "FAIL: provenance overhead ${overhead}x exceeds 1.3x"
  fail=1
fi

echo "== check_obs: witness + profile outputs"
pstats="$work/prov_stats.json"
folded="$work/profile.folded"
status=0
dune exec --display=quiet bin/flowdroid_cli.exe -- "$app_dir" \
  --provenance --profile-out "$folded" --stats-json "$pstats" \
  >"$work/stdout2.txt" 2>&1 || status=$?
if [ "$status" != 0 ] && [ "$status" != 2 ]; then
  echo "FAIL: provenance run exited with status $status"
  cat "$work/stdout2.txt"
  exit 1
fi
for key in witnesses profile; do
  require_key "$key" "$pstats"
done
witness_count=$(python3 -c "import json; print(len(json.load(open('$pstats'))['witnesses']))")
if [ "$witness_count" -gt 0 ]; then
  echo "ok: $witness_count witness(es) recorded"
else
  echo "FAIL: no witnesses in $pstats"
  fail=1
fi
if grep -q '^flowdroid;' "$folded"; then
  echo "ok: collapsed-stack profile written"
else
  echo "FAIL: $folded has no flowdroid; frames"
  fail=1
fi

cat > BENCH_obs2.json <<EOF
{
  "bench": "obs2",
  "case": "$case_name",
  "provenance_table_identical": $identical,
  "provenance_overhead_x": $overhead,
  "overhead_limit_x": 1.3,
  "witnesses": $witness_count,
  "pass": $([ "$fail" = 0 ] && echo true || echo false)
}
EOF
echo "wrote BENCH_obs2.json"

[ "$fail" = 0 ] && echo "== check_obs: PASS" || echo "== check_obs: FAIL"
exit "$fail"
