#!/bin/sh
# Smoke test for the observability layer: run one DroidBench case
# end-to-end through flowdroid_cli with --stats-json/--trace-out and
# fail unless the emitted JSON carries the required keys.
#
#   sh bench/check_obs.sh [CASE]        (default case: DirectLeak1)
#
# Exits non-zero on any missing key, so it can gate CI.
set -eu

case_name="${1:-DirectLeak1}"
root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"

echo "== check_obs: dumping DroidBench case $case_name"
dune exec --display=quiet bin/droidbench_runner.exe -- \
  --app "$case_name" --dump "$work/apps"

app_dir="$work/apps/$case_name"
[ -d "$app_dir" ] || { echo "FAIL: dump did not produce $app_dir"; exit 1; }

echo "== check_obs: analysing $app_dir with flowdroid_cli"
stats="$work/stats.json"
trace="$work/trace.json"
# exit status 2 = flows found, which is expected for a leak case
status=0
dune exec --display=quiet bin/flowdroid_cli.exe -- "$app_dir" \
  --stats-json "$stats" --trace-out "$trace" >"$work/stdout.txt" 2>&1 \
  || status=$?
if [ "$status" != 0 ] && [ "$status" != 2 ]; then
  echo "FAIL: flowdroid_cli exited with status $status"
  cat "$work/stdout.txt"
  exit 1
fi

fail=0
require_key () {
  # require_key FILE KEY — KEY must appear as a JSON object key
  if grep -q "\"$1\"" "$2"; then
    echo "ok: $2 has \"$1\""
  else
    echo "FAIL: $2 is missing key \"$1\""
    fail=1
  fi
}

for key in counters gauges histograms phases \
           ifds.path_edges ifds.worklist_pops bidi.fw_propagations \
           cg.reachable_methods core.analysis_seconds taint.solve; do
  require_key "$key" "$stats"
done

for key in traceEvents displayTimeUnit taint.solve callgraph.build; do
  require_key "$key" "$trace"
done

# a counter that exists but never fired would still pass the key test;
# make sure the solver actually counted something
if grep -q '"ifds.path_edges": 0,' "$stats"; then
  echo "FAIL: ifds.path_edges is zero — solver was not instrumented"
  fail=1
fi

[ "$fail" = 0 ] && echo "== check_obs: PASS" || echo "== check_obs: FAIL"
exit "$fail"
