(* The summary-store gate workload: a fleet of apps that all route one
   tainted value through the same deep shared library.  Store off,
   every app re-solves the whole chain; with a store, the library is
   solved once per fleet and every later visit injects the persisted
   summaries — the cross-app reuse the store exists for.

     store_bench [--fleet N] [--depth D] [--jobs N]
                 [--summary-store DIR] [--json FILE]

   Prints per-run timing plus a digest over every app's rendered
   findings (bit-identical across store off / cold / hot and at any
   --jobs), and optionally writes a flat JSON report that
   bench/check_store.sh folds into BENCH_store.json. *)

let fleet = ref 8
let depth = ref 300
let jobs = ref (Fd_util.Pool.default_jobs ())
let store_dir = ref (Sys.getenv_opt "FLOWDROID_SUMMARY_STORE")
let json_out = ref None

let usage () =
  prerr_endline
    "usage: store_bench [--fleet N] [--depth D] [--jobs N] [--summary-store \
     DIR] [--json FILE]";
  exit 1

let () =
  let rec parse = function
    | [] -> ()
    | "--fleet" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> fleet := n
        | _ -> usage ());
        parse rest
    | "--depth" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 2 -> depth := n
        | _ -> usage ());
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--summary-store" :: v :: rest ->
        store_dir := Some v;
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* the shared library: lib.Box + a lib.Chain of [depth] step methods   *)
(* ------------------------------------------------------------------ *)

let lib_box =
  "class lib.Box {\n\
  \  field val : java.lang.String;\n\
  \  field aux : java.lang.String;\n\
  \  method void <init>() {\n\
  \    this := @this: lib.Box;\n\
  \    return;\n\
  \  }\n\
   }\n"

(* each step stores the taint into a heap cell, reads it back (alias
   work for the backward pass), forwards it down the chain, and stages
   the result through a second field — enough per-method solver work
   that re-solving the chain dwarfs decoding its summaries *)
let chain_step ~depth i =
  if i = depth - 1 then
    Printf.sprintf
      "  static method java.lang.String step%d(java.lang.String) {\n\
      \    local p : java.lang.Object;\n\
      \    local b : lib.Box;\n\
      \    local t : java.lang.Object;\n\
      \    p := @parameter0;\n\
      \    b = new lib.Box;\n\
      \    specialinvoke b.lib.Box#<init>();\n\
      \    b.lib.Box#val = p;\n\
      \    t = b.lib.Box#val;\n\
      \    return t;\n\
      \  }\n"
      i
  else
    Printf.sprintf
      "  static method java.lang.String step%d(java.lang.String) {\n\
      \    local p : java.lang.Object;\n\
      \    local b : lib.Box;\n\
      \    local t : java.lang.Object;\n\
      \    p := @parameter0;\n\
      \    b = new lib.Box;\n\
      \    specialinvoke b.lib.Box#<init>();\n\
      \    b.lib.Box#val = p;\n\
      \    t = b.lib.Box#val;\n\
      \    t = staticinvoke lib.Chain#step%d(t);\n\
      \    b.lib.Box#aux = t;\n\
      \    t = b.lib.Box#aux;\n\
      \    return t;\n\
      \  }\n"
      i (i + 1)

let lib_chain ~depth =
  let buf = Buffer.create (depth * 256) in
  Buffer.add_string buf "class lib.Chain {\n";
  for i = 0 to depth - 1 do
    Buffer.add_string buf (chain_step ~depth i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let app_class i =
  Printf.sprintf
    "class fleet.App%d extends android.app.Activity {\n\
    \  method void onCreate(android.os.Bundle) {\n\
    \    local savedState : java.lang.Object;\n\
    \    local tm : android.telephony.TelephonyManager;\n\
    \    local imei : java.lang.Object;\n\
    \    local out : java.lang.Object;\n\
    \    local sms : android.telephony.SmsManager;\n\
    \    this := @this: fleet.App%d;\n\
    \    savedState := @parameter0;\n\
    \    tm = new android.telephony.TelephonyManager;\n\
    \    imei = virtualinvoke \
     tm.android.telephony.TelephonyManager#getDeviceId() @\"src-imei\";\n\
    \    out = staticinvoke lib.Chain#step0(imei);\n\
    \    sms = staticinvoke android.telephony.SmsManager#getDefault();\n\
    \    virtualinvoke sms.android.telephony.SmsManager#sendTextMessage(\"+1\", \
     null, out, null, null) @\"sink-sms\";\n\
    \    return;\n\
    \  }\n\
     }\n"
    i i

let manifest i =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n\
     <manifest package=\"fleet\">\n\
    \  <application>\n\
    \    <activity android:name=\"fleet.App%d\">\n\
    \      <intent-filter>\n\
    \        <action android:name=\"android.intent.action.MAIN\"/>\n\
    \        <category android:name=\"android.intent.category.LAUNCHER\"/>\n\
    \      </intent-filter>\n\
    \    </activity>\n\
    \  </application>\n\
     </manifest>\n"
    i

let make_apk ~depth i =
  Fd_frontend.Apk.make_text
    (Printf.sprintf "fleet-app-%d" i)
    ~manifest:(manifest i) ~layouts:[]
    [ lib_box; lib_chain ~depth; app_class i ]

(* ------------------------------------------------------------------ *)

let render_findings (r : Fd_core.Infoflow.result) =
  List.map
    (fun (f : Fd_core.Bidi.finding) ->
      Printf.sprintf "%s -> %s%s"
        (match f.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag with
        | Some t -> t
        | None -> f.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc)
        (Fd_callgraph.Icfg.string_of_node f.Fd_core.Bidi.f_sink_node)
        (match f.Fd_core.Bidi.f_sink_tag with
        | Some t -> " @" ^ t
        | None -> ""))
    r.Fd_core.Infoflow.r_findings
  |> List.sort_uniq compare |> String.concat "\n"

let () =
  let fleet = !fleet and depth = !depth and jobs = !jobs in
  if !store_dir <> None then Fd_store.Store.install ();
  let config =
    { Fd_core.Config.default with Fd_core.Config.summary_store = !store_dir }
  in
  let apks = List.init fleet (make_apk ~depth) in
  (* timing covers only the analysis loop: app construction and
     process startup are identical in every configuration *)
  let t0 = Unix.gettimeofday () in
  let rendered =
    Fd_util.Pool.map ~jobs
      (fun apk ->
        render_findings (Fd_core.Infoflow.analyze_apk ~config apk))
      apks
  in
  let dt = Unix.gettimeofday () -. t0 in
  let digest = Digest.to_hex (Digest.string (String.concat "\n---\n" rendered)) in
  let leaks =
    List.fold_left
      (fun a r -> a + (if String.equal r "" then 0 else 1))
      0 rendered
  in
  let hits = Fd_obs.Metrics.counter_value "store.hits" in
  let misses = Fd_obs.Metrics.counter_value "store.misses" in
  Printf.printf
    "fleet=%d depth=%d jobs=%d store=%s: %.4f s, %d/%d apps leak, digest=%s\n"
    fleet depth jobs
    (match !store_dir with Some _ -> "on" | None -> "off")
    dt leaks fleet digest;
  if !store_dir <> None then
    Printf.printf "store.hits=%d store.misses=%d\n" hits misses;
  List.iter
    (fun (d : Fd_resilience.Diag.t) ->
      Printf.eprintf "summary-store: %s\n" d.Fd_resilience.Diag.d_msg)
    (Fd_store.Store.drain_diags ());
  (match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n \"fleet\": %d,\n \"depth\": %d,\n \"jobs\": %d,\n \"seconds\": \
         %.4f,\n \"leaking_apps\": %d,\n \"digest\": \"%s\",\n \"hits\": \
         %d,\n \"misses\": %d\n}\n"
        fleet depth jobs dt leaks digest hits misses;
      close_out oc);
  (* every app must exhibit its planted leak, or the workload is
     meaningless *)
  if leaks <> fleet then begin
    Printf.eprintf "FAIL: only %d of %d apps reported the planted leak\n"
      leaks fleet;
    exit 1
  end
