(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (DESIGN.md's experiment index) and measures the
   engine with Bechamel.

   Part 1 prints the reproduced artefacts:
     - Table 1 (DroidBench: FlowDroid vs the simulated comparators)
     - Table 2 (SecuriBench-µ)
     - RQ2 (µInsecureBank)
     - RQ3 (generated Play / malware corpora)
     - the ablations: context injection (F3), activation statements
       (L3), alias search, lifecycle (A3), callback association (A2),
       and the access-path-length sweep (A1)
     - Figure 1 / Figure 2 status lines

   Part 2 runs one Bechamel Test per experiment workload and prints
   per-run time estimates. *)

open Bechamel
open Toolkit

let line () = print_endline (String.make 78 '=')

let section title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* per-section observability: each Part-1 artefact runs with a fresh
   metric registry and trace, and its snapshot is collected into
   BENCH_obs.json next to the human-readable output *)
let obs_sections : (string * Fd_obs.Json.t) list ref = ref []

let with_obs name f =
  Fd_obs.Metrics.reset ();
  Fd_obs.Trace.reset ();
  Fd_obs.Trace.with_span name f;
  obs_sections := (name, Fd_obs.Export.stats_json ()) :: !obs_sections

let write_obs_json path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Fd_obs.Json.to_string ~indent:1
           (Fd_obs.Json.Obj (List.rev !obs_sections))
        ^ "\n"));
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Part 1: tables and figures                                          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: DROIDBENCH — FlowDroid vs simulated AppScan/Fortify";
  let t =
    Fd_eval.Droidbench_table.run
      [ Fd_eval.Engines.appscan; Fd_eval.Engines.fortify;
        Fd_eval.Engines.flowdroid () ]
  in
  print_string (Fd_eval.Droidbench_table.render t);
  print_newline ()

let table2 () =
  section "Table 2: SecuriBench Micro (SecuriBench-µ) — FlowDroid";
  let t = Fd_eval.Securibench_table.run () in
  print_string (Fd_eval.Securibench_table.render t);
  print_newline ()

let rq2 () =
  section "RQ2: InsecureBank (µInsecureBank)";
  let t0 = Sys.time () in
  let result = Fd_core.Infoflow.analyze_apk Fd_appgen.Insecurebank.apk in
  let t1 = Sys.time () in
  let findings = Fd_eval.Engines.findings_of_result result in
  let v =
    Fd_eval.Scoring.score ~expected:Fd_appgen.Insecurebank.expected_leaks
      ~findings
  in
  Printf.printf
    "expected 7 leaks; found %d (TP %d, FP %d, FN %d) in %.4f s\n\n"
    (List.length findings) v.Fd_eval.Scoring.tp v.Fd_eval.Scoring.fp
    v.Fd_eval.Scoring.fn (t1 -. t0)

let rq3 () =
  section "RQ3: generated corpora (paper: 500 Play apps / ~1000 malware)";
  let play =
    Fd_eval.Corpus.run ~profile:Fd_appgen.Generator.Play ~seed:20140609 ~n:100 ()
  in
  print_string (Fd_eval.Corpus.render play);
  print_newline ();
  let malware =
    Fd_eval.Corpus.run ~profile:Fd_appgen.Generator.Malware ~seed:20140609
      ~n:200 ()
  in
  print_string (Fd_eval.Corpus.render malware);
  print_newline ()

let differential_validation () =
  section "Differential validation (static vs dynamic vs ground truth)";
  List.iter
    (fun profile ->
      let c =
        Fd_diffcheck.Diffcheck.campaign ~profile ~seed:20140609 ~n:100 ()
      in
      print_string (Fd_diffcheck.Diffcheck.render c);
      print_newline ())
    [ Fd_appgen.Generator.Play; Fd_appgen.Generator.Malware ]

let ablation_table () =
  section "Ablations over DROIDBENCH (A1–A3, F3, L3 of DESIGN.md)";
  let engines =
    Fd_eval.Engines.flowdroid ()
    :: (Fd_eval.Engines.ablations
       @ [ Fd_eval.Engines.k_variant 1; Fd_eval.Engines.k_variant 2;
           Fd_eval.Engines.k_variant 3 ])
  in
  let t = Fd_eval.Droidbench_table.run engines in
  (* aggregate view only: per-engine totals *)
  let header = [ "Engine"; "TP"; "FP"; "FN"; "Precision"; "Recall" ] in
  let rows =
    List.map
      (fun (e : Fd_eval.Engines.t) ->
        let tp, fp, fn =
          Fd_eval.Droidbench_table.totals_of t e.Fd_eval.Engines.eng_name
        in
        Fd_util.Table.Row
          [
            e.Fd_eval.Engines.eng_name;
            string_of_int tp;
            string_of_int fp;
            string_of_int fn;
            Fd_util.Table.pct tp (tp + fp);
            Fd_util.Table.pct tp (tp + fn);
          ])
      engines
  in
  print_string (Fd_util.Table.render (Fd_util.Table.make ~header rows));
  print_newline ()

let dynamic_comparison () =
  section "Static vs dynamic (TaintDroid-sim) over DROIDBENCH (Section 7)";
  let t = Fd_eval.Dynamic_table.run () in
  print_string (Fd_eval.Dynamic_table.render t);
  print_newline ()

let figures () =
  section "Figures 1–3 (mechanism demonstrations)";
  print_endline
    "Figure 1 (dummy-main lifecycle CFG): dune exec examples/quickstart.exe";
  print_endline
    "Figure 2 / Listing 2 / Listing 3   : dune exec bin/paper_listings.exe";
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel timing                                             *)
(* ------------------------------------------------------------------ *)

let direct_leak_apk =
  (Fd_droidbench.Suite.find "DirectLeak1" |> Option.get).Fd_droidbench.Bench_app.app_apk

let button2_apk =
  (Fd_droidbench.Suite.find "Button2" |> Option.get).Fd_droidbench.Bench_app.app_apk

let play_app =
  (Fd_appgen.Generator.generate ~profile:Fd_appgen.Generator.Play
     ~seed:20140609 7).Fd_appgen.Generator.ga_apk

let malware_app =
  (Fd_appgen.Generator.generate ~profile:Fd_appgen.Generator.Malware
     ~seed:20140609 7).Fd_appgen.Generator.ga_apk

let fd config apk () = ignore (Fd_core.Infoflow.analyze_apk ~config apk)

let cfg = Fd_core.Config.default

let tests =
  Test.make_grouped ~name:"flowdroid"
    [
      (* per-table workloads *)
      Test.make ~name:"table1/droidbench-suite"
        (Staged.stage (fun () ->
             List.iter
               (fun (a : Fd_droidbench.Bench_app.t) ->
                 ignore
                   (Fd_core.Infoflow.analyze_apk a.Fd_droidbench.Bench_app.app_apk))
               Fd_droidbench.Suite.scored));
      Test.make ~name:"table1/appscan-suite"
        (Staged.stage (fun () ->
             List.iter
               (fun (a : Fd_droidbench.Bench_app.t) ->
                 ignore
                   (Fd_baselines.Simple_taint.run_appscan
                      a.Fd_droidbench.Bench_app.app_apk))
               Fd_droidbench.Suite.scored));
      Test.make ~name:"table2/securibench-suite"
        (Staged.stage (fun () ->
             List.iter
               (fun c -> ignore (Fd_eval.Securibench_table.run_case c))
               Fd_securibench.Sb_suite.all));
      Test.make ~name:"rq2/insecurebank"
        (Staged.stage (fd cfg Fd_appgen.Insecurebank.apk));
      Test.make ~name:"rq3/play-app" (Staged.stage (fd cfg play_app));
      Test.make ~name:"rq3/malware-app" (Staged.stage (fd cfg malware_app));
      (* single-app micro workloads *)
      Test.make ~name:"micro/direct-leak" (Staged.stage (fd cfg direct_leak_apk));
      Test.make ~name:"micro/button2-callbacks"
        (Staged.stage (fd cfg button2_apk));
      (* ablation costs *)
      Test.make ~name:"ablation/no-alias"
        (Staged.stage
           (fd { cfg with Fd_core.Config.alias_search = false } button2_apk));
      Test.make ~name:"ablation/no-lifecycle"
        (Staged.stage
           (fd { cfg with Fd_core.Config.lifecycle = false } button2_apk));
      Test.make ~name:"ablation/k1"
        (Staged.stage
           (fd { cfg with Fd_core.Config.max_access_path = 1 } play_app));
      Test.make ~name:"ablation/k7"
        (Staged.stage
           (fd { cfg with Fd_core.Config.max_access_path = 7 } play_app));
      (* dynamic-analysis cost on the same workloads *)
      Test.make ~name:"dynamic/droidbench-thorough"
        (Staged.stage (fun () ->
             List.iter
               (fun (a : Fd_droidbench.Bench_app.t) ->
                 match Fd_frontend.Apk.load a.Fd_droidbench.Bench_app.app_apk with
                 | exception Fd_frontend.Apk.Load_error _ -> ()
                 | loaded -> ignore (Fd_interp.Droid_runner.run loaded))
               Fd_droidbench.Suite.scored));
    ]

let benchmark () =
  section "Bechamel timing (per-run estimates)";
  let instances = Instance.[ monotonic_clock ] in
  let bench_cfg =
    Benchmark.cfg ~limit:30 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all bench_cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-38s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 56 '-');
  let rows = ref [] in
  Hashtbl.iter
    (fun name (res : Analyze.OLS.t) ->
      let cell =
        match Analyze.OLS.estimates res with
        | Some [ est ] ->
            if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
            else Printf.sprintf "%.1f us" (est /. 1e3)
        | _ -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Printf.printf "%-38s %16s\n" name cell)
    (List.sort compare !rows);
  print_newline ()

(* the performance-gate summary: one timed iteration of the
   check_perf.sh workload, plus the interning/dedup counters it turns
   on.  The full gate (repeats, --jobs determinism check,
   BENCH_perf.json) is [sh bench/check_perf.sh]. *)
let perf_summary () =
  section "Performance: gate workload (see bench/check_perf.sh)";
  let engines =
    [ Fd_eval.Engines.flowdroid (); Fd_eval.Engines.appscan;
      Fd_eval.Engines.fortify ]
  in
  (* warm-up fills the lazy framework/rules templates *)
  ignore (Fd_eval.Droidbench_table.run engines);
  Fd_obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  ignore (Fd_eval.Droidbench_table.run engines);
  ignore (Fd_eval.Securibench_table.run ());
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "full table workload: %.4f s (sequential)\n" dt;
  List.iter
    (fun name ->
      Printf.printf "%-32s %d\n" name (Fd_obs.Metrics.counter_value name))
    [ "ifds.worklist_pushes"; "ifds.worklist_dedup_hits" ];
  Printf.printf "jobs: --jobs N on the runners (or FLOWDROID_JOBS) fans the \
                 per-app loops out over N domains\n";
  print_newline ()

(* the targeted-mode summary: one full-vs-targeted pass over a small
   generated corpus, querying the SMS sink only.  The full gate (the
   one-offender fleet, jobs-determinism, store separation,
   BENCH_targeted.json) is [sh bench/check_targeted.sh]. *)
let targeted_summary () =
  section "Targeted mode: gate workload (see bench/check_targeted.sh)";
  let sink = "SmsManager.sendTextMessage" in
  let apks =
    List.map
      (fun ga -> ga.Fd_appgen.Generator.ga_apk)
      (Fd_appgen.Generator.corpus ~profile:Fd_appgen.Generator.Malware
         ~seed:20140609 12)
  in
  let time config =
    let t0 = Unix.gettimeofday () in
    let findings =
      List.concat_map
        (fun apk ->
          let r = Fd_core.Infoflow.analyze_apk ~config apk in
          if config.Fd_core.Config.targeted <> [] then
            r.Fd_core.Infoflow.r_findings
          else
            Fd_core.Infoflow.restrict_findings
              ~icfg:r.Fd_core.Infoflow.r_icfg ~patterns:[ sink ]
              r.Fd_core.Infoflow.r_findings)
        apks
    in
    (Unix.gettimeofday () -. t0, List.length findings)
  in
  let full_s, full_n = time Fd_core.Config.default in
  Fd_obs.Metrics.reset ();
  let targ_s, targ_n =
    time { Fd_core.Config.default with Fd_core.Config.targeted = [ sink ] }
  in
  Printf.printf
    "corpus(12 apps), sink %s:\n  full %.4f s (%d flows into sink), targeted \
     %.4f s (%d flows) = %.2fx\n"
    sink full_s full_n targ_s targ_n (full_s /. targ_s);
  Printf.printf "  targeted.index_probes=%d entries kept/dropped via \
                 targeted.entries_* gauges\n"
    (Fd_obs.Metrics.counter_value "targeted.index_probes");
  print_newline ()

let () =
  with_obs "table1" table1;
  with_obs "table2" table2;
  with_obs "rq2" rq2;
  with_obs "rq3" rq3;
  with_obs "diffcheck" differential_validation;
  with_obs "ablations" ablation_table;
  with_obs "dynamic" dynamic_comparison;
  figures ();
  perf_summary ();
  targeted_summary ();
  benchmark ();
  write_obs_json "BENCH_obs.json"
