#!/bin/sh
# Serving gate, in two acts:
#
#   1. smoke: boot the real flowdroid_serve.exe daemon on a fresh
#      socket, drive it with flowdroid_client.exe (ping, one analyze
#      of a generated app, stats), then drain it and require a clean
#      exit 0 — the full binary-to-binary path, no test harness.
#   2. load: run serve_bench (which itself boots a fresh daemon per
#      phase) across {chaos off, chaos on} x concurrency levels plus
#      the warm/cold amortisation probe, and enforce its gates:
#        (a) zero requests dropped without a reply, daemon alive;
#        (b) warm per-request mean >= 3x faster than a cold
#            per-process run of the same apps;
#        (c) chaos-on p99 <= 2x chaos-off p99 at each level.
#
#   sh bench/check_serve.sh [APPS]          (default APPS: 100)
#
# Writes BENCH_serve.json at the repo root and exits non-zero on any
# gate failure, so it can gate CI.
set -eu

apps="${1:-100}"
seed="${SEED:-20140609}"
concurrency="${CONCURRENCY:-4,16}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
sock="$work/serve.sock"
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

cd "$root"

echo "== check_serve: building"
dune build --display=quiet \
  bin/flowdroid_serve.exe bin/flowdroid_client.exe bench/serve_bench.exe

serve=_build/default/bin/flowdroid_serve.exe
client=_build/default/bin/flowdroid_client.exe

echo "== check_serve: daemon smoke test"
"$serve" --socket "$sock" --workers 2 --stats-out "$work/stats.json" -q &
daemon_pid=$!

i=0
until "$client" ping --socket "$sock" >/dev/null 2>&1; do
  i=$((i + 1))
  [ "$i" -lt 200 ] || { echo "FAIL: daemon never came up"; exit 1; }
  sleep 0.1
done
echo "ok: daemon up, ping answered"

"$client" analyze --socket "$sock" --gen "malware:$seed:3" \
  > "$work/analyze.json"
grep -q '"completeness": "precise"' "$work/analyze.json" \
  || { echo "FAIL: analyze reply not precise:"; cat "$work/analyze.json"; exit 1; }
echo "ok: analyze round-trip precise"

"$client" stats --socket "$sock" | grep -q '"replies": ' \
  || { echo "FAIL: stats verb missing counters"; exit 1; }

"$client" drain --socket "$sock" >/dev/null
wait "$daemon_pid" || { echo "FAIL: daemon exited non-zero on drain"; exit 1; }
daemon_pid=""
[ -f "$work/stats.json" ] || { echo "FAIL: --stats-out not written"; exit 1; }
[ ! -e "$sock" ] || { echo "FAIL: socket not unlinked on shutdown"; exit 1; }
echo "ok: graceful drain, clean exit, stats exported, socket unlinked"

echo "== check_serve: load + chaos phases ($apps apps, c=$concurrency)"
dune exec --display=quiet bench/serve_bench.exe -- \
  --apps "$apps" --seed "$seed" --concurrency "$concurrency" \
  --out BENCH_serve.json

echo "== check_serve: all gates passed (BENCH_serve.json)"
