#!/bin/sh
# Differential-validation gate, in two acts:
#
#   1. soundness: a fixed-seed campaign (200 apps per profile, both
#      profiles) must contain zero DIVERGENCE rows — every static/
#      dynamic/ground-truth disagreement must map to a documented
#      Table 1 limitation category (explained-FN / explained-FP).
#   2. determinism: the same campaign must produce bit-identical
#      verdict digests at --jobs 1 and --jobs "$JOBS" — the app-level
#      parallelism contract extended to the differential harness.
#
#   sh bench/check_diff.sh [JOBS]           (default JOBS: 4)
#
# Writes BENCH_diff.json at the repo root and exits non-zero on any
# divergence or digest mismatch, so it can gate CI.
set -eu

jobs="${1:-4}"
seed="${SEED:-20140609}"
count="${COUNT:-200}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_diff: building"
dune build --display=quiet bin/diff_runner.exe

echo "== check_diff: campaign --jobs 1 (seed $seed, $count apps/profile)"
if dune exec --display=quiet bin/diff_runner.exe -- \
     --profile both --seed "$seed" --count "$count" --jobs 1 --json \
     > "$work/seq.json"; then
  echo "ok: zero divergences at --jobs 1"
else
  echo "FAIL: divergent leak keys at --jobs 1"
  fail=1
fi

echo "== check_diff: campaign --jobs $jobs"
if dune exec --display=quiet bin/diff_runner.exe -- \
     --profile both --seed "$seed" --count "$count" --jobs "$jobs" --json \
     > "$work/par.json"; then
  echo "ok: zero divergences at --jobs $jobs"
else
  echo "FAIL: divergent leak keys at --jobs $jobs"
  fail=1
fi

# one JSON object per profile, one per line; field order is fixed
json_field () {
  # json_field FILE LINE KEY — scalar field from campaign JSON
  sed -n "${2}p" "$1" | sed "s/.*\"$3\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/"
}

for line in 1 2; do
  profile="$(json_field "$work/seq.json" "$line" profile)"
  seq_digest="$(json_field "$work/seq.json" "$line" digest)"
  par_digest="$(json_field "$work/par.json" "$line" digest)"
  if [ "$seq_digest" = "$par_digest" ] && [ -n "$seq_digest" ]; then
    echo "ok: $profile verdict digest invariant under job count ($seq_digest)"
  else
    echo "FAIL: $profile verdict digest differs between job counts"
    echo "  --jobs 1:     $seq_digest"
    echo "  --jobs $jobs:     $par_digest"
    fail=1
  fi
done

play_digest="$(json_field "$work/seq.json" 1 digest)"
malware_digest="$(json_field "$work/seq.json" 2 digest)"
play_keys="$(json_field "$work/seq.json" 1 keys)"
malware_keys="$(json_field "$work/seq.json" 2 keys)"

cat > BENCH_diff.json <<EOF
{
 "workload": "diffcheck campaign (play + malware)",
 "seed": $seed,
 "apps_per_profile": $count,
 "jobs_checked": $jobs,
 "play_keys": $play_keys,
 "malware_keys": $malware_keys,
 "play_digest": "$play_digest",
 "malware_digest": "$malware_digest",
 "divergences": $([ "$fail" = 0 ] && echo 0 || echo "\"see log\""),
 "deterministic": $([ "$fail" = 0 ] && echo true || echo false)
}
EOF
echo "wrote BENCH_diff.json"

[ "$fail" = 0 ] && echo "== check_diff: PASS" || echo "== check_diff: FAIL"
exit "$fail"
