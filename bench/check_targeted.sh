#!/bin/sh
# Demand-driven targeted-mode gate, in three acts:
#
#   1. speedup: a fleet of large apps where only one reaches the
#      queried sink (targeted_bench); targeted mode must be
#      >= MIN_SPEEDUP faster than full mode on the same fleet, and
#      the findings digests must be bit-identical (full mode's
#      findings restricted to the queried sink) — at --jobs 1 AND
#      --jobs "$JOBS".
#   2. default identity: with no --targeted at all, corpus output must
#      be byte-identical to a plain run (the flag off takes no new
#      code path).
#   3. store compatibility: a summary store populated by a full-mode
#      campaign must NOT serve a targeted campaign (config digests
#      differ), and vice versa — hot hits stay zero across modes.
#
#   sh bench/check_targeted.sh
#
# Writes BENCH_targeted.json at the repo root and exits non-zero on
# any gate failure, so it can gate CI.
set -eu

jobs="${JOBS:-4}"
seed="${SEED:-20140609}"
apps="${APPS:-30}"
fleet="${FLEET:-10}"
depth="${DEPTH:-100}"
min_speedup="${MIN_SPEEDUP:-5.0}"
sink="${SINK:-SmsManager.sendTextMessage}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
store="$work/store"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_targeted: building"
dune build --display=quiet bench/targeted_bench.exe bin/corpus_runner.exe

tbench=_build/default/bench/targeted_bench.exe
corpus=_build/default/bin/corpus_runner.exe

json_field () {
  # json_field FILE KEY — extract a scalar field from a flat report
  sed -n "s/^ *\"$2\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" \
    | head -n 1
}

echo "== check_targeted: fleet campaign ($fleet apps, depth $depth, sink $sink)"
"$tbench" --fleet "$fleet" --depth "$depth" --jobs 1 --mode full \
  --targeted "$sink" --json "$work/full_j1.json" > /dev/null 2>&1
"$tbench" --fleet "$fleet" --depth "$depth" --jobs 1 --mode targeted \
  --targeted "$sink" --json "$work/targ_j1.json" > /dev/null 2>&1
"$tbench" --fleet "$fleet" --depth "$depth" --jobs "$jobs" --mode full \
  --targeted "$sink" --json "$work/full_jN.json" > /dev/null 2>&1
"$tbench" --fleet "$fleet" --depth "$depth" --jobs "$jobs" --mode targeted \
  --targeted "$sink" --json "$work/targ_jN.json" > /dev/null 2>&1

d_full1="$(json_field "$work/full_j1.json" digest)"
d_targ1="$(json_field "$work/targ_j1.json" digest)"
d_fullN="$(json_field "$work/full_jN.json" digest)"
d_targN="$(json_field "$work/targ_jN.json" digest)"
if [ -n "$d_full1" ] && [ "$d_full1" = "$d_targ1" ] \
   && [ "$d_full1" = "$d_fullN" ] && [ "$d_full1" = "$d_targN" ]; then
  echo "ok: targeted verdicts = full-mode-restricted verdicts at --jobs 1 and $jobs ($d_full1)"
else
  echo "FAIL: digest differs (full/j1=$d_full1 targ/j1=$d_targ1 full/jN=$d_fullN targ/jN=$d_targN)"
  fail=1
fi

full_s="$(json_field "$work/full_j1.json" seconds)"
targ_s="$(json_field "$work/targ_j1.json" seconds)"
probes="$(json_field "$work/targ_j1.json" index_probes)"
speedup="$(awk "BEGIN { printf \"%.2f\", $full_s / $targ_s }")"
ok_speedup="$(awk "BEGIN { print ($full_s / $targ_s >= $min_speedup) ? 1 : 0 }")"
if [ "$ok_speedup" = 1 ]; then
  echo "ok: targeted ${targ_s}s vs full ${full_s}s = ${speedup}x (>= ${min_speedup}x)"
else
  echo "FAIL: targeted ${targ_s}s vs full ${full_s}s = ${speedup}x (< ${min_speedup}x)"
  fail=1
fi
if [ "${probes:-0}" -gt 0 ]; then
  echo "ok: targeted.index_probes published ($probes)"
else
  echo "FAIL: targeted.index_probes missing from targeted report"
  fail=1
fi

echo "== check_targeted: default output identity ($apps apps, no --targeted)"
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  > "$work/plain.out" 2>/dev/null
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  > "$work/plain2.out" 2>/dev/null
strip_timing () { grep -v "runtime" "$1"; }
strip_timing "$work/plain.out" > "$work/plain.tbl"
strip_timing "$work/plain2.out" > "$work/plain2.tbl"
if cmp -s "$work/plain.tbl" "$work/plain2.tbl"; then
  echo "ok: default (no --targeted) output stable byte-for-byte"
else
  echo "FAIL: default output not reproducible"
  fail=1
fi

echo "== check_targeted: store separation (full-mode store vs targeted campaign)"
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  --summary-store "$store" --stats-json "$work/cold_full.json" \
  > /dev/null 2>/dev/null
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  --summary-store "$store" --targeted "$sink" \
  --stats-json "$work/hot_targ.json" > /dev/null 2>/dev/null
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  --summary-store "$store" --stats-json "$work/hot_full.json" \
  > /dev/null 2>/dev/null

written="$(json_field "$work/cold_full.json" store.bytes_written)"
t_hits="$(json_field "$work/hot_targ.json" store.hits)"
f_hits="$(json_field "$work/hot_full.json" store.hits)"
f_misses="$(json_field "$work/hot_full.json" store.misses)"
if [ "${written:-0}" -gt 0 ] && [ "${t_hits:-1}" = 0 ]; then
  echo "ok: full-mode store never serves a targeted run (hits=0, digests differ)"
else
  echo "FAIL: targeted run hit a full-mode store (written=$written hits=$t_hits)"
  fail=1
fi
if [ "${f_hits:-0}" -gt 0 ] && [ "${f_misses:-1}" = 0 ]; then
  echo "ok: full-mode store still serves full mode ($f_hits hits, 0 misses)"
else
  echo "FAIL: full-mode store broken by targeted campaign (hits=$f_hits misses=$f_misses)"
  fail=1
fi

cat > BENCH_targeted.json <<EOF
{
 "workload": "fleet($fleet x depth $depth, 1 offender) + corpus(malware,$apps)",
 "sink": "$sink",
 "full_s": $full_s,
 "targeted_s": $targ_s,
 "speedup": $speedup,
 "min_speedup": $min_speedup,
 "index_probes": ${probes:-0},
 "digest_full_jobs1": "$d_full1",
 "digest_targeted_jobs1": "$d_targ1",
 "digest_full_jobsN": "$d_fullN",
 "digest_targeted_jobsN": "$d_targN",
 "jobs_checked": $jobs,
 "store_cross_mode_hits": ${t_hits:-0},
 "store_same_mode_hits": ${f_hits:-0}
}
EOF
echo "wrote BENCH_targeted.json"

[ "$fail" = 0 ] && echo "== check_targeted: PASS" || echo "== check_targeted: FAIL"
exit "$fail"
