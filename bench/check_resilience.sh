#!/bin/sh
# Smoke test for the resilience layer, in three acts:
#
#   1. deadline: a zero-second deadline on a DroidBench case must stop
#      the solver cooperatively (exit 3, outcome deadline-exceeded) and
#      bump resilience.deadline_hits — never crash.
#   2. ladder: the same case without a deadline must complete (exit 2,
#      flows reported) so the degradation machinery is not tripping on
#      healthy inputs.
#   3. chaos: the full DroidBench suite under fault injection
#      (seed 20140609, p=0.1) must finish every app behind the crash
#      barrier with a per-app outcome row and zero escaped exceptions,
#      and the stats snapshot must carry the resilience.* series.
#
#   sh bench/check_resilience.sh [CASE]     (default case: DirectLeak1)
#
# Exits non-zero on any violated expectation, so it can gate CI.
set -eu

case_name="${1:-DirectLeak1}"
root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_resilience: dumping DroidBench case $case_name"
dune exec --display=quiet bin/droidbench_runner.exe -- \
  --app "$case_name" --dump "$work/apps"
app_dir="$work/apps/$case_name"
[ -d "$app_dir" ] || { echo "FAIL: dump did not produce $app_dir"; exit 1; }

echo "== check_resilience: zero-second deadline must degrade, not crash"
status=0
dune exec --display=quiet bin/flowdroid_cli.exe -- "$app_dir" \
  --deadline 0 --stats-json "$work/deadline.json" \
  >"$work/deadline.txt" 2>&1 || status=$?
if [ "$status" != 3 ]; then
  echo "FAIL: expected exit 3 (incomplete), got $status"
  cat "$work/deadline.txt"
  fail=1
fi
if grep -q "outcome: deadline-exceeded" "$work/deadline.txt"; then
  echo "ok: outcome line reports deadline-exceeded"
else
  echo "FAIL: missing 'outcome: deadline-exceeded' line"
  fail=1
fi
if grep -q '"resilience.deadline_hits": 0' "$work/deadline.json"; then
  echo "FAIL: resilience.deadline_hits stayed zero"
  fail=1
else
  echo "ok: resilience.deadline_hits fired"
fi

echo "== check_resilience: the same case completes without a deadline"
status=0
dune exec --display=quiet bin/flowdroid_cli.exe -- "$app_dir" --fallback \
  >"$work/full.txt" 2>&1 || status=$?
if [ "$status" != 2 ]; then
  echo "FAIL: expected exit 2 (flows found), got $status"
  cat "$work/full.txt"
  fail=1
else
  echo "ok: full run completes with flows"
fi

echo "== check_resilience: chaos smoke gate (seed 20140609, p=0.1)"
status=0
dune exec --display=quiet bin/droidbench_runner.exe -- \
  --chaos-rate 0.1 --chaos-seed 20140609 --stats-json "$work/chaos.json" \
  >"$work/chaos.txt" 2>&1 || status=$?
if [ "$status" != 0 ]; then
  echo "FAIL: chaos run exited with status $status"
  tail -5 "$work/chaos.txt"
  fail=1
fi
if grep -q "ESCAPED" "$work/chaos.txt"; then
  echo "FAIL: an exception escaped the barrier"
  grep "ESCAPED" "$work/chaos.txt"
  fail=1
else
  echo "ok: no exception escaped the barrier"
fi
if grep -q "^outcomes: " "$work/chaos.txt"; then
  echo "ok: outcome distribution reported"
else
  echo "FAIL: missing outcome distribution line"
  fail=1
fi
# every degraded/partial outcome must carry a flight-recorder dump in
# its diagnostics (the runner prints flight=MISSING when one does not)
if grep -q "flight=MISSING" "$work/chaos.txt"; then
  echo "FAIL: degraded outcome without a flight-recorder dump"
  grep "flight=MISSING" "$work/chaos.txt"
  fail=1
else
  echo "ok: every non-precise outcome carries a flight-recorder dump"
fi

require_key () {
  # require_key KEY FILE — KEY must appear as a JSON object key
  if grep -q "\"$1\"" "$2"; then
    echo "ok: $2 has \"$1\""
  else
    echo "FAIL: $2 is missing key \"$1\""
    fail=1
  fi
}
for key in resilience.budget_hits resilience.deadline_hits \
           resilience.cancellations resilience.crashes_caught \
           resilience.retries resilience.ladder_retries \
           resilience.degraded_runs resilience.faults_injected \
           resilience.diagnostics; do
  require_key "$key" "$work/chaos.json"
done
if grep -q '"resilience.faults_injected": 0' "$work/chaos.json"; then
  echo "FAIL: chaos run injected no faults"
  fail=1
else
  echo "ok: faults were injected"
fi

[ "$fail" = 0 ] && echo "== check_resilience: PASS" || echo "== check_resilience: FAIL"
exit "$fail"
