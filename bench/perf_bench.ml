(* The performance gate workload: the full DroidBench table (FlowDroid
   plus both simulated comparators) and the full SecuriBench-µ table,
   timed per iteration, with a digest of every rendered table so two
   runs can be compared for bit-identical output (the --jobs
   determinism contract).

     perf_bench [--jobs N] [--repeat N] [--json FILE]

   Prints one line per iteration plus a summary; --json writes a small
   machine-readable report (seconds per iteration, digest, intern/pool
   counter readings) that bench/check_perf.sh folds into
   BENCH_perf.json. *)

let jobs = ref (Fd_util.Pool.default_jobs ())
let repeat = ref 5
let json_out = ref None

let usage () =
  prerr_endline "usage: perf_bench [--jobs N] [--repeat N] [--json FILE]";
  exit 1

let () =
  let rec parse = function
    | [] -> ()
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--repeat" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> repeat := n
        | _ -> usage ());
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* one iteration of the gate workload; returns the rendered output *)
let iteration ~jobs () =
  let engines =
    [ Fd_eval.Engines.flowdroid (); Fd_eval.Engines.appscan;
      Fd_eval.Engines.fortify ]
  in
  let db = Fd_eval.Droidbench_table.run ~jobs engines in
  let sb = Fd_eval.Securibench_table.run ~jobs () in
  Fd_eval.Droidbench_table.render db
  ^ Fd_eval.Droidbench_table.render_outcomes db
  ^ Fd_eval.Securibench_table.render sb

let () =
  let jobs = !jobs and repeat = !repeat in
  (* warm-up iteration: fills the lazy framework/rules templates and
     faults in the code paths, so timed iterations measure the steady
     state the solver runs in *)
  let rendered = iteration ~jobs () in
  let digest = Digest.to_hex (Digest.string rendered) in
  let times =
    List.init repeat (fun i ->
        let t0 = Unix.gettimeofday () in
        let r = iteration ~jobs () in
        let dt = Unix.gettimeofday () -. t0 in
        if not (String.equal r rendered) then begin
          Printf.eprintf
            "FAIL: iteration %d rendered different output (digest %s vs %s)\n"
            (i + 1)
            (Digest.to_hex (Digest.string r))
            digest;
          exit 1
        end;
        Printf.printf "iteration %d/%d: %.4f s\n%!" (i + 1) repeat dt;
        dt)
  in
  let best = List.fold_left min infinity times in
  let mean = List.fold_left ( +. ) 0. times /. float_of_int repeat in
  Printf.printf "jobs=%d repeat=%d best=%.4f s mean=%.4f s digest=%s\n" jobs
    repeat best mean digest;
  let dedup = Fd_obs.Metrics.counter_value "ifds.worklist_dedup_hits" in
  Printf.printf "worklist dedup hits (cumulative): %d\n" dedup;
  match !json_out with
  | None -> ()
  | Some path ->
      let j =
        Fd_obs.Json.Obj
          [
            ("jobs", Fd_obs.Json.Int jobs);
            ("repeat", Fd_obs.Json.Int repeat);
            ("best_s", Fd_obs.Json.Float best);
            ("mean_s", Fd_obs.Json.Float mean);
            ("digest", Fd_obs.Json.String digest);
            ("worklist_dedup_hits", Fd_obs.Json.Int dedup);
          ]
      in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Fd_obs.Json.to_string ~indent:1 j ^ "\n"));
      Printf.eprintf "wrote %s\n" path
