#!/bin/sh
# Inter-component / inter-app taint gate, in four acts:
#
#   1. soundness both tiers: the intent-heavy ICC campaign plus a
#      collusion-pair campaign (merged two-app Scenes) must contain
#      zero DIVERGENCE rows with the ICC tier off AND on — every
#      disagreement maps to a documented limitation bucket, and the
#      tier flips buckets (explained-FN(icc-stitch) -> confirmed,
#      confirmed sender sink -> fixed(icc-send)) without ever
#      introducing a divergence.
#   2. determinism: both campaigns produce bit-identical verdict
#      digests at --jobs 1 and --jobs "$JOBS", tier on.
#   3. default identity: with the tier off, the play + malware
#      campaign digests are byte-identical to the committed
#      BENCH_diff.json values — the ICC subsystem takes no code path
#      unless asked.
#   4. collusion recall: the pair campaign tier-on confirms every
#      planted cross-app leak (confirmed = pairs) and reclassifies
#      every sender-side over-approximation as fixed(icc-send).
#
#   sh bench/check_icc.sh
#
# Writes BENCH_icc.json at the repo root and exits non-zero on any
# gate failure, so it can gate CI.
set -eu

jobs="${JOBS:-4}"
seed="${SEED:-20140609}"
apps="${APPS:-40}"
pairs="${PAIRS:-12}"
default_count="${COUNT:-200}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_icc: building"
dune build --display=quiet bin/diff_runner.exe
runner=_build/default/bin/diff_runner.exe

# one JSON object per campaign, one per line; field order is fixed
json_field () {
  # json_field FILE LINE KEY — scalar field from campaign JSON
  sed -n "${2}p" "$1" | sed "s/.*\"$3\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/"
}
bucket_count () {
  # bucket_count FILE LINE LABEL — count for one bucket label, or 0
  sed -n "${2}p" "$1" \
    | sed -n "s/.*\"$3\":\([0-9]*\).*/\1/p" | grep . || echo 0
}

echo "== check_icc: icc campaign + $pairs collusion pairs, tier OFF"
if "$runner" --profile icc --seed "$seed" --count "$apps" \
     --pairs "$pairs" --jobs "$jobs" --json > "$work/off.json"; then
  echo "ok: zero divergences tier off"
else
  echo "FAIL: divergent leak keys with the ICC tier off"
  fail=1
fi

echo "== check_icc: icc campaign + $pairs collusion pairs, tier ON"
if "$runner" --profile icc --seed "$seed" --count "$apps" \
     --pairs "$pairs" --jobs "$jobs" --json --icc > "$work/on.json"; then
  echo "ok: zero divergences tier on"
else
  echo "FAIL: divergent leak keys with the ICC tier on"
  fail=1
fi

echo "== check_icc: determinism under job count (tier on)"
"$runner" --profile icc --seed "$seed" --count "$apps" \
  --pairs "$pairs" --jobs 1 --json --icc > "$work/on_j1.json" || fail=1
for line in 1 2; do
  dN="$(json_field "$work/on.json" "$line" digest)"
  d1="$(json_field "$work/on_j1.json" "$line" digest)"
  what="$([ "$line" = 1 ] && echo "icc apps" || echo "collusion pairs")"
  if [ -n "$dN" ] && [ "$dN" = "$d1" ]; then
    echo "ok: $what digest invariant under job count ($dN)"
  else
    echo "FAIL: $what digest differs between --jobs 1 and --jobs $jobs"
    echo "  --jobs 1:     $d1"
    echo "  --jobs $jobs:     $dN"
    fail=1
  fi
done

# the tier must actually change the verdicts it claims to change
d_off_apps="$(json_field "$work/off.json" 1 digest)"
d_on_apps="$(json_field "$work/on.json" 1 digest)"
if [ -n "$d_off_apps" ] && [ "$d_off_apps" != "$d_on_apps" ]; then
  echo "ok: tier on reclassifies (app digests differ)"
else
  echo "FAIL: tier on produced the tier-off app digest ($d_off_apps)"
  fail=1
fi

echo "== check_icc: default identity (play + malware, tier off)"
if "$runner" --profile both --seed "$seed" --count "$default_count" \
     --jobs "$jobs" --json > "$work/default.json"; then
  :
else
  echo "FAIL: default campaign divergent"
  fail=1
fi
bench_field () {
  # bench_field FILE KEY — string field from a committed BENCH json
  sed -n "s/.*\"$2\": *\"\([^\"]*\)\".*/\1/p" "$1" | head -n 1
}
expect_play="$(bench_field BENCH_diff.json play_digest)"
expect_malware="$(bench_field BENCH_diff.json malware_digest)"
got_play="$(json_field "$work/default.json" 1 digest)"
got_malware="$(json_field "$work/default.json" 2 digest)"
if [ -n "$expect_play" ] && [ "$got_play" = "$expect_play" ] \
   && [ "$got_malware" = "$expect_malware" ]; then
  echo "ok: default play/malware digests byte-identical to BENCH_diff.json"
else
  echo "FAIL: default digests moved (ICC work leaked into the default tier)"
  echo "  play:    committed $expect_play  got $got_play"
  echo "  malware: committed $expect_malware  got $got_malware"
  fail=1
fi

echo "== check_icc: collusion recall (tier on)"
confirmed_on="$(bucket_count "$work/on.json" 2 confirmed)"
fixed_on="$(bucket_count "$work/on.json" 2 'fixed(icc-send)')"
stitch_off="$(bucket_count "$work/off.json" 2 'explained-FN(icc-stitch)')"
if [ "${confirmed_on:-0}" = "$pairs" ]; then
  echo "ok: every planted cross-app leak confirmed ($confirmed_on/$pairs)"
else
  echo "FAIL: planted cross-app leaks confirmed $confirmed_on/$pairs"
  fail=1
fi
if [ "${fixed_on:-0}" -gt 0 ] && [ "${stitch_off:-0}" -gt 0 ]; then
  echo "ok: tier flips buckets (off: explained-FN(icc-stitch)=$stitch_off, on: fixed(icc-send)=$fixed_on)"
else
  echo "FAIL: bucket flip missing (stitch_off=$stitch_off fixed_on=$fixed_on)"
  fail=1
fi

apps_keys="$(json_field "$work/on.json" 1 keys)"
pair_keys="$(json_field "$work/on.json" 2 keys)"
d_off_pairs="$(json_field "$work/off.json" 2 digest)"
d_on_pairs="$(json_field "$work/on.json" 2 digest)"

cat > BENCH_icc.json <<EOF
{
 "workload": "icc campaign($apps apps) + collusion pairs($pairs), both tiers",
 "seed": $seed,
 "jobs_checked": $jobs,
 "icc_app_keys": ${apps_keys:-0},
 "pair_keys": ${pair_keys:-0},
 "digest_apps_off": "$d_off_apps",
 "digest_apps_on": "$d_on_apps",
 "digest_pairs_off": "$d_off_pairs",
 "digest_pairs_on": "$d_on_pairs",
 "pairs_confirmed_on": ${confirmed_on:-0},
 "pairs_fixed_icc_send_on": ${fixed_on:-0},
 "pairs_explained_fn_stitch_off": ${stitch_off:-0},
 "default_play_digest": "$got_play",
 "default_malware_digest": "$got_malware",
 "divergences": $([ "$fail" = 0 ] && echo 0 || echo "\"see log\""),
 "deterministic": $([ "$fail" = 0 ] && echo true || echo false)
}
EOF
echo "wrote BENCH_icc.json"

[ "$fail" = 0 ] && echo "== check_icc: PASS" || echo "== check_icc: FAIL"
exit "$fail"
