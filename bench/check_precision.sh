#!/bin/sh
# Precision-pass gate, in three acts:
#
#   1. inertness: with every pass off the suite must be invisible —
#      the DroidBench table and the fixed-seed campaign JSON (200
#      apps per profile, both profiles) are byte-identical with and
#      without an explicit "--precision none".
#   2. soundness under the passes: the same campaign with
#      "--precision all" must contain zero DIVERGENCE rows — every
#      formerly-explained disagreement either stays explained (pass
#      off) or is actually fixed (pass on), never a new divergence.
#   3. progress: flags-on must leave strictly fewer explained-FN/FP
#      keys than flags-off — the passes must close limitation
#      categories, not merely relabel them.
#
#   sh bench/check_precision.sh [JOBS]      (default JOBS: 4)
#
# Writes BENCH_precision.json at the repo root and exits non-zero on
# any inertness break, divergence or non-progress, so it can gate CI.
set -eu

jobs="${1:-4}"
seed="${SEED:-20140609}"
count="${COUNT:-200}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_precision: building"
dune build --display=quiet bin/diff_runner.exe bin/droidbench_runner.exe

echo "== check_precision: flags-off inertness (DroidBench table)"
dune exec --display=quiet bin/droidbench_runner.exe > "$work/db_default.txt"
dune exec --display=quiet bin/droidbench_runner.exe -- --precision none \
  > "$work/db_none.txt"
if cmp -s "$work/db_default.txt" "$work/db_none.txt"; then
  echo "ok: DroidBench table byte-identical with --precision none"
else
  echo "FAIL: --precision none perturbs the DroidBench table"
  fail=1
fi

echo "== check_precision: flags-off inertness (campaign, seed $seed, $count apps/profile)"
if dune exec --display=quiet bin/diff_runner.exe -- \
     --profile both --seed "$seed" --count "$count" --jobs "$jobs" --json \
     > "$work/off.json"; then
  echo "ok: zero divergences flags-off"
else
  echo "FAIL: divergent leak keys flags-off"
  fail=1
fi
if dune exec --display=quiet bin/diff_runner.exe -- \
     --profile both --seed "$seed" --count "$count" --jobs "$jobs" --json \
     --precision none > "$work/off_explicit.json"; then
  :
else
  echo "FAIL: divergent leak keys with explicit --precision none"
  fail=1
fi
if cmp -s "$work/off.json" "$work/off_explicit.json"; then
  echo "ok: campaign JSON byte-identical with --precision none"
else
  echo "FAIL: --precision none perturbs the campaign JSON"
  fail=1
fi

echo "== check_precision: flags-on campaign (--precision all)"
if dune exec --display=quiet bin/diff_runner.exe -- \
     --profile both --seed "$seed" --count "$count" --jobs "$jobs" --json \
     --precision all > "$work/on.json"; then
  echo "ok: zero divergences flags-on"
else
  echo "FAIL: divergent leak keys flags-on"
  fail=1
fi

# total count of explained-FN/FP keys across both profile lines
explained_total () {
  grep -o '"explained-[^"]*":[0-9]*' "$1" \
    | sed 's/.*://' \
    | { total=0; while read -r n; do total=$((total + n)); done; echo "$total"; }
}
fixed_total () {
  grep -o '"fixed([^"]*)":[0-9]*' "$1" \
    | sed 's/.*://' \
    | { total=0; while read -r n; do total=$((total + n)); done; echo "$total"; }
}

off_explained="$(explained_total "$work/off.json")"
on_explained="$(explained_total "$work/on.json")"
on_fixed="$(fixed_total "$work/on.json")"

if [ "$on_explained" -lt "$off_explained" ]; then
  echo "ok: explained keys $off_explained -> $on_explained (fixed: $on_fixed)"
else
  echo "FAIL: flags-on does not reduce explained keys ($off_explained -> $on_explained)"
  fail=1
fi

json_field () {
  # json_field FILE LINE KEY — scalar field from campaign JSON
  sed -n "${2}p" "$1" | sed "s/.*\"$3\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/"
}

cat > BENCH_precision.json <<EOF
{
 "workload": "precision-pass gate (DroidBench table + diffcheck campaign)",
 "seed": $seed,
 "apps_per_profile": $count,
 "jobs": $jobs,
 "flags_off_play_digest": "$(json_field "$work/off.json" 1 digest)",
 "flags_off_malware_digest": "$(json_field "$work/off.json" 2 digest)",
 "flags_on_play_digest": "$(json_field "$work/on.json" 1 digest)",
 "flags_on_malware_digest": "$(json_field "$work/on.json" 2 digest)",
 "explained_keys_flags_off": $off_explained,
 "explained_keys_flags_on": $on_explained,
 "fixed_keys_flags_on": $on_fixed,
 "inert_when_off": $([ "$fail" = 0 ] && echo true || echo "\"see log\""),
 "pass": $([ "$fail" = 0 ] && echo true || echo false)
}
EOF
echo "wrote BENCH_precision.json"

[ "$fail" = 0 ] && echo "== check_precision: PASS" || echo "== check_precision: FAIL"
exit "$fail"
