(* The targeted-mode gate workload: a fleet of large apps, each
   routing a tainted value through its own deep library chain, but
   only ONE of them ever calls the sink under investigation
   (SmsManager.sendTextMessage) — the rest leak into untargeted Log
   sinks.  Full mode must solve every app end to end; targeted mode
   text-indexes each app for the sink, gets an empty slice for all
   but the one offender, and skips their solves entirely.  That is
   the "query one API across a large fleet" scenario demand-driven
   slicing exists for.

     targeted_bench [--fleet N] [--depth D] [--jobs N]
                    [--mode full|targeted] [--targeted SIG]
                    [--json FILE]

   In --mode full the --targeted patterns only post-filter the
   findings (via [Infoflow.restrict_findings]) so the printed digest
   is comparable; in --mode targeted they drive [Config.targeted].
   The digests must be bit-identical across modes and at any --jobs,
   which bench/check_targeted.sh asserts before folding the timings
   into BENCH_targeted.json. *)

let fleet = ref 8
let depth = ref 300
let jobs = ref (Fd_util.Pool.default_jobs ())
let mode = ref `Full
let patterns = ref []
let json_out = ref None

let usage () =
  prerr_endline
    "usage: targeted_bench [--fleet N] [--depth D] [--jobs N] [--mode \
     full|targeted] [--targeted SIG] [--json FILE]";
  exit 1

let split_targeted v =
  String.split_on_char ',' v
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let () =
  let rec parse = function
    | [] -> ()
    | "--fleet" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> fleet := n
        | _ -> usage ());
        parse rest
    | "--depth" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 2 -> depth := n
        | _ -> usage ());
        parse rest
    | "--jobs" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--mode" :: "full" :: rest ->
        mode := `Full;
        parse rest
    | "--mode" :: "targeted" :: rest ->
        mode := `Targeted;
        parse rest
    | "--targeted" :: v :: rest ->
        patterns := !patterns @ split_targeted v;
        parse rest
    | "--json" :: v :: rest ->
        json_out := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !patterns = [] then patterns := [ "SmsManager.sendTextMessage" ]

(* ------------------------------------------------------------------ *)
(* per-app deep library: lib.BoxN + lib.ChainN of [depth] steps        *)
(* ------------------------------------------------------------------ *)

(* each app carries its OWN copy of the chain (classes lib.BoxI /
   lib.ChainI) so full mode pays the whole solve per app — no store,
   no cross-app sharing; this is exactly the cost targeting avoids *)

let lib_box i =
  Printf.sprintf
    "class lib.Box%d {\n\
    \  field val : java.lang.String;\n\
    \  field aux : java.lang.String;\n\
    \  method void <init>() {\n\
    \    this := @this: lib.Box%d;\n\
    \    return;\n\
    \  }\n\
     }\n"
    i i

let chain_step ~app ~depth i =
  if i = depth - 1 then
    Printf.sprintf
      "  static method java.lang.String step%d(java.lang.String) {\n\
      \    local p : java.lang.Object;\n\
      \    local b : lib.Box%d;\n\
      \    local t : java.lang.Object;\n\
      \    p := @parameter0;\n\
      \    b = new lib.Box%d;\n\
      \    specialinvoke b.lib.Box%d#<init>();\n\
      \    b.lib.Box%d#val = p;\n\
      \    t = b.lib.Box%d#val;\n\
      \    return t;\n\
      \  }\n"
      i app app app app app
  else
    Printf.sprintf
      "  static method java.lang.String step%d(java.lang.String) {\n\
      \    local p : java.lang.Object;\n\
      \    local b : lib.Box%d;\n\
      \    local t : java.lang.Object;\n\
      \    p := @parameter0;\n\
      \    b = new lib.Box%d;\n\
      \    specialinvoke b.lib.Box%d#<init>();\n\
      \    b.lib.Box%d#val = p;\n\
      \    t = b.lib.Box%d#val;\n\
      \    t = staticinvoke lib.Chain%d#step%d(t);\n\
      \    b.lib.Box%d#aux = t;\n\
      \    t = b.lib.Box%d#aux;\n\
      \    return t;\n\
      \  }\n"
      i app app app app app app (i + 1) app app

let lib_chain ~app ~depth =
  let buf = Buffer.create (depth * 256) in
  Buffer.add_string buf (Printf.sprintf "class lib.Chain%d {\n" app);
  for i = 0 to depth - 1 do
    Buffer.add_string buf (chain_step ~app ~depth i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* app 0 ends in the targeted SMS sink; every other app leaks the
   same taint into an untargeted Log sink *)
let app_class ~targeted_sink i =
  let sink_lines =
    if targeted_sink then
      "    sms = staticinvoke android.telephony.SmsManager#getDefault();\n\
      \    virtualinvoke sms.android.telephony.SmsManager#sendTextMessage(\"+1\", \
       null, out, null, null) @\"sink-sms\";\n"
    else
      "    staticinvoke android.util.Log#i(\"fleet\", out) @\"sink-log\";\n"
  in
  Printf.sprintf
    "class fleet.App%d extends android.app.Activity {\n\
    \  method void onCreate(android.os.Bundle) {\n\
    \    local savedState : java.lang.Object;\n\
    \    local tm : android.telephony.TelephonyManager;\n\
    \    local imei : java.lang.Object;\n\
    \    local out : java.lang.Object;\n\
    \    local sms : android.telephony.SmsManager;\n\
    \    this := @this: fleet.App%d;\n\
    \    savedState := @parameter0;\n\
    \    tm = new android.telephony.TelephonyManager;\n\
    \    imei = virtualinvoke \
     tm.android.telephony.TelephonyManager#getDeviceId() @\"src-imei\";\n\
    \    out = staticinvoke lib.Chain%d#step0(imei);\n\
     %s\
    \    return;\n\
    \  }\n\
     }\n"
    i i i sink_lines

let manifest i =
  Printf.sprintf
    "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n\
     <manifest package=\"fleet\">\n\
    \  <application>\n\
    \    <activity android:name=\"fleet.App%d\">\n\
    \      <intent-filter>\n\
    \        <action android:name=\"android.intent.action.MAIN\"/>\n\
    \        <category android:name=\"android.intent.category.LAUNCHER\"/>\n\
    \      </intent-filter>\n\
    \    </activity>\n\
    \  </application>\n\
     </manifest>\n"
    i

let make_apk ~depth i =
  Fd_frontend.Apk.make_text
    (Printf.sprintf "targeted-fleet-%d" i)
    ~manifest:(manifest i) ~layouts:[]
    [ lib_box i; lib_chain ~app:i ~depth; app_class ~targeted_sink:(i = 0) i ]

(* ------------------------------------------------------------------ *)

let render_findings findings =
  List.map
    (fun (f : Fd_core.Bidi.finding) ->
      Printf.sprintf "%s -> %s%s"
        (match f.Fd_core.Bidi.f_source.Fd_core.Taint.si_tag with
        | Some t -> t
        | None -> f.Fd_core.Bidi.f_source.Fd_core.Taint.si_desc)
        (Fd_callgraph.Icfg.string_of_node f.Fd_core.Bidi.f_sink_node)
        (match f.Fd_core.Bidi.f_sink_tag with
        | Some t -> " @" ^ t
        | None -> ""))
    findings
  |> List.sort_uniq compare |> String.concat "\n"

let () =
  let fleet = !fleet and depth = !depth and jobs = !jobs in
  let patterns = !patterns in
  let config =
    match !mode with
    | `Full -> Fd_core.Config.default
    | `Targeted -> { Fd_core.Config.default with Fd_core.Config.targeted = patterns }
  in
  let apks = List.init fleet (make_apk ~depth) in
  (* timing covers only the analysis loop: app construction and
     process startup are identical in both modes *)
  let t0 = Unix.gettimeofday () in
  let rendered =
    Fd_util.Pool.map ~jobs
      (fun apk ->
        let r = Fd_core.Infoflow.analyze_apk ~config apk in
        let findings =
          match !mode with
          | `Targeted -> r.Fd_core.Infoflow.r_findings
          | `Full ->
              (* restrict to the queried sinks so digests compare *)
              Fd_core.Infoflow.restrict_findings
                ~icfg:r.Fd_core.Infoflow.r_icfg ~patterns
                r.Fd_core.Infoflow.r_findings
        in
        render_findings findings)
      apks
  in
  let dt = Unix.gettimeofday () -. t0 in
  let digest = Digest.to_hex (Digest.string (String.concat "\n---\n" rendered)) in
  let leaks =
    List.fold_left
      (fun a r -> a + (if String.equal r "" then 0 else 1))
      0 rendered
  in
  let probes = Fd_obs.Metrics.counter_value "targeted.index_probes" in
  Printf.printf
    "fleet=%d depth=%d jobs=%d mode=%s: %.4f s, %d/%d apps leak into %s, \
     digest=%s\n"
    fleet depth jobs
    (match !mode with `Full -> "full" | `Targeted -> "targeted")
    dt leaks fleet
    (String.concat "," patterns)
    digest;
  if !mode = `Targeted then
    Printf.printf "targeted.index_probes=%d\n" probes;
  (match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n \"fleet\": %d,\n \"depth\": %d,\n \"jobs\": %d,\n \"mode\": \
         \"%s\",\n \"seconds\": %.4f,\n \"leaking_apps\": %d,\n \"digest\": \
         \"%s\",\n \"index_probes\": %d\n}\n"
        fleet depth jobs
        (match !mode with `Full -> "full" | `Targeted -> "targeted")
        dt leaks digest probes;
      close_out oc);
  (* exactly the one offender app must leak into the targeted sink,
     in either mode, or the workload is meaningless *)
  if leaks <> 1 then begin
    Printf.eprintf
      "FAIL: %d of %d apps leak into the targeted sink (expected 1)\n"
      leaks fleet;
    exit 1
  end
