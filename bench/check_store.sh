#!/bin/sh
# Persistent summary-store gate, in four acts:
#
#   1. speedup: a fleet of apps sharing one deep library (store_bench)
#      runs store-off, cold (populating the store) and hot (reusing
#      it); the hot campaign must be >= MIN_SPEEDUP faster than the
#      cold one, fully served from the store (no misses), and all
#      three findings digests must be bit-identical.
#   2. metrics: a malware-corpus campaign cold then hot against the
#      same store; verdict tables byte-identical to a store-less run
#      (timing lines stripped), store.{hits,misses,bytes_read,
#      bytes_written} present in --stats-json, hot run all hits.
#   3. correctness: the differential campaign's verdict digest must be
#      bit-identical across store off / store cold / store hot, and at
#      --jobs 1 vs --jobs "$JOBS" — caching must not change a verdict.
#   4. integrity: every entry the campaigns wrote must pass the full
#      checksum walk (flowdroid_store verify).
#
#   sh bench/check_store.sh [APPS]          (default APPS: 60)
#
# Writes BENCH_store.json at the repo root and exits non-zero on any
# gate failure, so it can gate CI.
set -eu

apps="${1:-60}"
jobs="${JOBS:-4}"
seed="${SEED:-20140609}"
count="${COUNT:-200}"
fleet="${FLEET:-6}"
depth="${DEPTH:-100}"
min_speedup="${MIN_SPEEDUP:-2.0}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
store="$work/store"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_store: building"
dune build --display=quiet bench/store_bench.exe \
  bin/corpus_runner.exe bin/diff_runner.exe bin/flowdroid_store.exe

fleetb=_build/default/bench/store_bench.exe
corpus=_build/default/bin/corpus_runner.exe
diffr=_build/default/bin/diff_runner.exe
storecli=_build/default/bin/flowdroid_store.exe

json_field () {
  # json_field FILE KEY — extract a scalar field from a flat report
  sed -n "s/^ *\"$2\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" \
    | head -n 1
}

echo "== check_store: fleet campaign ($fleet apps, shared library depth $depth)"
"$fleetb" --fleet "$fleet" --depth "$depth" --jobs 1 \
  --json "$work/fleet_off.json" > /dev/null 2>&1
"$fleetb" --fleet "$fleet" --depth "$depth" --jobs 1 \
  --summary-store "$store" --json "$work/fleet_cold.json" > /dev/null 2>&1
"$fleetb" --fleet "$fleet" --depth "$depth" --jobs 1 \
  --summary-store "$store" --json "$work/fleet_hot.json" > /dev/null 2>&1

f_off="$(json_field "$work/fleet_off.json" digest)"
f_cold="$(json_field "$work/fleet_cold.json" digest)"
f_hot="$(json_field "$work/fleet_hot.json" digest)"
if [ -n "$f_off" ] && [ "$f_off" = "$f_cold" ] && [ "$f_off" = "$f_hot" ]; then
  echo "ok: fleet findings digest identical off/cold/hot ($f_off)"
else
  echo "FAIL: fleet digest differs (off=$f_off cold=$f_cold hot=$f_hot)"
  fail=1
fi

f_hits="$(json_field "$work/fleet_hot.json" hits)"
f_misses="$(json_field "$work/fleet_hot.json" misses)"
if [ "${f_hits:-0}" -gt 0 ] && [ "${f_misses:-1}" = 0 ]; then
  echo "ok: hot fleet all hits ($f_hits hits, 0 misses)"
else
  echo "FAIL: hot fleet not fully served (hits=$f_hits misses=$f_misses)"
  fail=1
fi

cold_s="$(json_field "$work/fleet_cold.json" seconds)"
hot_s="$(json_field "$work/fleet_hot.json" seconds)"
off_s="$(json_field "$work/fleet_off.json" seconds)"
speedup="$(awk "BEGIN { printf \"%.2f\", $cold_s / $hot_s }")"
ok_speedup="$(awk "BEGIN { print ($cold_s / $hot_s >= $min_speedup) ? 1 : 0 }")"
if [ "$ok_speedup" = 1 ]; then
  echo "ok: hot ${hot_s}s vs cold ${cold_s}s = ${speedup}x (>= ${min_speedup}x; store off ${off_s}s)"
else
  echo "FAIL: hot ${hot_s}s vs cold ${cold_s}s = ${speedup}x (< ${min_speedup}x)"
  fail=1
fi

echo "== check_store: corpus campaign ($apps apps) off / cold / hot"
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  > "$work/off.out" 2>/dev/null
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  --summary-store "$store" --stats-json "$work/cold.json" \
  > "$work/cold.out" 2>/dev/null
"$corpus" --profile malware -n "$apps" --seed "$seed" \
  --summary-store "$store" --stats-json "$work/hot.json" \
  > "$work/hot.out" 2>/dev/null

# the verdict table must match byte-for-byte; only the wall-clock
# summary lines are allowed to differ
strip_timing () { grep -v "runtime" "$1"; }
strip_timing "$work/off.out" > "$work/off.tbl"
strip_timing "$work/cold.out" > "$work/cold.tbl"
strip_timing "$work/hot.out" > "$work/hot.tbl"
if cmp -s "$work/off.tbl" "$work/cold.tbl" \
   && cmp -s "$work/off.tbl" "$work/hot.tbl"; then
  echo "ok: store off / cold / hot verdict tables byte-identical"
else
  echo "FAIL: verdict table differs between store off / cold / hot"
  fail=1
fi

hits="$(json_field "$work/hot.json" store.hits)"
misses="$(json_field "$work/hot.json" store.misses)"
bytes_read="$(json_field "$work/hot.json" store.bytes_read)"
bytes_written="$(json_field "$work/cold.json" store.bytes_written)"
if [ -n "$hits" ] && [ -n "$misses" ] && [ -n "$bytes_read" ] \
   && [ -n "$bytes_written" ]; then
  echo "ok: store.{hits,misses,bytes_read,bytes_written} in --stats-json"
else
  echo "FAIL: store metrics missing from --stats-json"
  fail=1
fi
if [ "${hits:-0}" -gt 0 ] && [ "${misses:-1}" = 0 ]; then
  echo "ok: hot corpus run all hits ($hits hits, 0 misses)"
else
  echo "FAIL: hot corpus run not fully served (hits=$hits misses=$misses)"
  fail=1
fi

diff_field () {
  # diff_field FILE KEY — scalar field from the one-line campaign JSON
  sed -n 1p "$1" | sed "s/.*\"$2\":\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/"
}

echo "== check_store: diff campaign digests (seed $seed, $count apps)"
"$diffr" --profile malware --seed "$seed" --count "$count" --jobs 1 --json \
  > "$work/diff_off.json" 2>/dev/null || { echo "FAIL: divergences (store off)"; fail=1; }
"$diffr" --profile malware --seed "$seed" --count "$count" --jobs 1 --json \
  --summary-store "$store" \
  > "$work/diff_cold.json" 2>/dev/null || { echo "FAIL: divergences (store cold)"; fail=1; }
"$diffr" --profile malware --seed "$seed" --count "$count" --jobs "$jobs" --json \
  --summary-store "$store" \
  > "$work/diff_hot.json" 2>/dev/null || { echo "FAIL: divergences (store hot)"; fail=1; }

d_off="$(diff_field "$work/diff_off.json" digest)"
d_cold="$(diff_field "$work/diff_cold.json" digest)"
d_hot="$(diff_field "$work/diff_hot.json" digest)"
if [ -n "$d_off" ] && [ "$d_off" = "$d_cold" ] && [ "$d_off" = "$d_hot" ]; then
  echo "ok: verdict digest identical off/cold/hot and --jobs 1/$jobs ($d_off)"
else
  echo "FAIL: verdict digest differs (off=$d_off cold=$d_cold hot=$d_hot)"
  fail=1
fi

echo "== check_store: verifying every entry"
if "$storecli" verify "$store" > "$work/verify.out"; then
  tail -n 1 "$work/verify.out" | sed 's/^/ok: /'
else
  echo "FAIL: damaged entries after the campaigns"
  cat "$work/verify.out"
  fail=1
fi
entries="$("$storecli" ls "$store" | sed -n '1s/.*: \([0-9]*\) entr.*/\1/p')"

cat > BENCH_store.json <<EOF
{
 "workload": "fleet($fleet x depth $depth) + corpus(malware,$apps) + diff(malware,$count)",
 "fleet_off_s": $off_s,
 "fleet_cold_s": $cold_s,
 "fleet_hot_s": $hot_s,
 "speedup": $speedup,
 "min_speedup": $min_speedup,
 "fleet_hot_hits": ${f_hits:-0},
 "fleet_hot_misses": ${f_misses:-0},
 "corpus_hot_hits": ${hits:-0},
 "corpus_hot_misses": ${misses:-0},
 "corpus_cold_bytes_written": ${bytes_written:-0},
 "corpus_hot_bytes_read": ${bytes_read:-0},
 "entries": ${entries:-0},
 "tables_identical": $(cmp -s "$work/off.tbl" "$work/hot.tbl" && echo true || echo false),
 "digest_off": "$d_off",
 "digest_cold_jobs1": "$d_cold",
 "digest_hot_jobsN": "$d_hot",
 "jobs_checked": $jobs
}
EOF
echo "wrote BENCH_store.json"

[ "$fail" = 0 ] && echo "== check_store: PASS" || echo "== check_store: FAIL"
exit "$fail"
