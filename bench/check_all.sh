#!/bin/sh
# Run every bench/check_*.sh gate in sequence and summarise.
#
#   sh bench/check_all.sh
#
# Each gate writes its own BENCH_*.json at the repo root; this wrapper
# exits non-zero if ANY gate fails (but always runs them all, so one
# CI invocation reports every broken gate at once).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

fail=0
ran=0
for gate in bench/check_*.sh; do
  case "$gate" in
    */check_all.sh) continue ;;
  esac
  ran=$((ran + 1))
  echo ""
  echo "######## $gate"
  if sh "$gate"; then
    echo "######## $gate: PASS"
  else
    echo "######## $gate: FAIL"
    fail=1
  fi
done

echo ""
if [ "$fail" = 0 ]; then
  echo "check_all: all $ran gates PASS"
else
  echo "check_all: FAILURES among $ran gates (see above)"
fi
exit "$fail"
