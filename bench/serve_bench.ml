(* Load generator for the serve daemon (bench/check_serve.sh gate).

   Boots a fresh flowdroid_serve.exe daemon process per phase and
   fires a few hundred generated apps at it from concurrent client
   lanes, with a planted adversarial tail: hang-like inputs (1 ms deadlines that blow every
   rung), crashing inputs (malformed strict-mode bundles) and
   oversized frames.  Phases cover {chaos off, chaos on} at each
   requested concurrency level.

   Measures, per phase: replies vs requests sent (the exactly-one-
   reply invariant — a missing reply surfaces as `dropped`), client-
   observed latency p50/p99, per-outcome counts, worker restarts and
   retries (counter deltas).  After the first phase it measures the
   warm per-request cost on the live daemon and compares against cold
   per-process runs (`--cold-probe` re-executes this binary so each
   sample pays frontend + framework template construction from
   scratch).

   Gates (exit 1 when any fails):
     (a) zero requests dropped without a reply, every phase;
     (b) warm mean >= WARM_FACTOR x faster than cold mean (default 3);
     (c) chaos-on p99 <= RATIO x chaos-off p99 per level (default 2).

   Writes the JSON report to --out (default BENCH_serve.json). *)

module Json = Fd_obs.Json
module Gen = Fd_appgen.Generator
module Client = Fd_serve.Client
module Protocol = Fd_serve.Protocol
module Squeue = Fd_serve.Squeue

let apps_per_phase = ref 100
let concurrency = ref [ 4; 16 ]
let seed = ref 20140609
let chaos_rate = ref 0.1
let out_path = ref "BENCH_serve.json"
let warm_factor = ref 3.0
let p99_ratio_limit = ref 2.0
let cold_samples = ref 5
let warm_samples = ref 200
let warm_lanes = ref 2
let cold_probe = ref (-1)

let serve_exe =
  ref
    (Filename.concat
       (Filename.dirname Sys.executable_name)
       "../bin/flowdroid_serve.exe")

let phase_timeout_s = 180.

let speclist =
  [
    ("--apps", Arg.Set_int apps_per_phase, "apps per phase (default 100)");
    ( "--concurrency",
      Arg.String
        (fun s ->
          concurrency :=
            List.map int_of_string (String.split_on_char ',' s)),
      "comma-separated client-lane counts (default 4,16)" );
    ("--seed", Arg.Set_int seed, "corpus seed");
    ("--chaos-rate", Arg.Set_float chaos_rate, "chaos-on phase rate (0.1)");
    ("--out", Arg.Set_string out_path, "report path (BENCH_serve.json)");
    ("--warm-factor", Arg.Set_float warm_factor, "warm-speedup gate (3.0)");
    ("--p99-ratio", Arg.Set_float p99_ratio_limit, "chaos p99 gate (2.0)");
    ("--cold-samples", Arg.Set_int cold_samples, "cold probe runs (5)");
    ( "--cold-probe",
      Arg.Set_int cold_probe,
      "internal: analyse one app cold and print milliseconds" );
    ("--serve-exe", Arg.Set_string serve_exe, "path to flowdroid_serve.exe");
    ("--warm-lanes", Arg.Set_int warm_lanes, "warm-path client lanes (2)");
  ]

(* ---------------- daemon process control ---------------- *)

let boot_daemon ~socket ~chaos =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let argv =
    [|
      !serve_exe; "--socket"; socket; "--workers"; "4"; "--queue"; "32";
      "--max-frame-bytes"; string_of_int (256 * 1024); "--deadline-s"; "10";
      "--chaos-rate"; string_of_float chaos; "--chaos-seed";
      string_of_int !seed; "-q";
    |]
  in
  let pid =
    Unix.create_process !serve_exe argv Unix.stdin Unix.stdout Unix.stderr
  in
  (* the daemon warms its templates before listening; wait for the
     socket to answer *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec await () =
    match Client.connect socket with
    | c ->
        Client.close c;
        pid
    | exception Unix.Unix_error _ ->
        if Unix.gettimeofday () >= deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          failwith ("daemon did not come up on " ^ socket)
        end;
        Thread.delay 0.05;
        await ()
  in
  await ()

let daemon_alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

(* graceful shutdown via the protocol; true iff the daemon exits 0 *)
let shutdown_daemon ~socket pid =
  (try
     let c = Client.connect socket in
     ignore (Client.drain c);
     Client.close c
   with _ -> ());
  let deadline = Unix.gettimeofday () +. 30. in
  let rec await () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        if Unix.gettimeofday () >= deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          false
        end
        else begin
          Thread.delay 0.05;
          await ()
        end
    | _, Unix.WEXITED 0 -> true
    | _, _ -> false
    | exception Unix.Unix_error _ -> false
  in
  await ()

(* ---------------- cold probe (child process) ---------------- *)

let run_cold_probe index =
  let t0 = Unix.gettimeofday () in
  let app = Gen.generate ~profile:Gen.Malware ~seed:!seed index in
  let loaded = Fd_frontend.Apk.load ~mode:`Lenient app.Gen.ga_apk in
  let r = Fd_core.Infoflow.analyze_loaded loaded in
  ignore (List.length r.Fd_core.Infoflow.r_findings);
  Printf.printf "%.3f\n" ((Unix.gettimeofday () -. t0) *. 1000.)

(* (process wall-clock, analysis-only) in ms.  The process wall-clock
   is what a cold flowdroid_cli invocation actually costs per app —
   exec + runtime init + frontend/framework template construction +
   the analysis — and is the number the warm path amortises. *)
let cold_probe_ms index =
  let cmd =
    Printf.sprintf "%s --cold-probe %d --seed %d"
      (Filename.quote Sys.executable_name)
      index !seed
  in
  let t0 = Unix.gettimeofday () in
  let ic = Unix.open_process_in cmd in
  let line = try input_line ic with End_of_file -> "nan" in
  ignore (Unix.close_process_in ic);
  let total = (Unix.gettimeofday () -. t0) *. 1000. in
  (total, float_of_string line)

(* ---------------- workload ---------------- *)

type job_kind = J_normal | J_hang | J_crash | J_oversized

let job_kind i =
  if i mod 17 = 13 then J_oversized
  else if i mod 13 = 7 then J_crash
  else if i mod 10 = 4 then J_hang
  else J_normal

let gen_spec i =
  let profile = if i mod 2 = 0 then Gen.Play else Gen.Malware in
  Protocol.App_gen { g_profile = profile; g_seed = !seed; g_index = i }

(* an inline bundle whose frame comfortably exceeds the server limit *)
let oversized_app i =
  Protocol.App_inline
    {
      in_name = Printf.sprintf "oversized%d" i;
      in_manifest = "<manifest/>";
      in_layouts = [];
      in_sources = [ String.make (512 * 1024) 'x' ];
    }

let crash_app i =
  Protocol.App_inline
    {
      in_name = Printf.sprintf "crash%d" i;
      in_manifest = "<manifest package=\"bench.crash\"/>";
      in_layouts = [];
      in_sources = [ "this is not µJimple {{{" ];
    }

let job_request i =
  let kind = job_kind i in
  let base app =
    {
      Protocol.rq_id = Some (Json.Int i);
      rq_app = app;
      rq_apps = [];
      rq_deadline_ms = None;
      rq_k = None;
      rq_rules = "default";
      rq_strict = false;
      rq_fresh_metrics = false;
      rq_icc = false;
      rq_targeted = [];
    }
  in
  match kind with
  | J_normal -> (kind, base (gen_spec i))
  | J_hang ->
      (* a 1 ms deadline blows every ladder rung: the daemon must
         deadline it out and reply partial/failed, never stall *)
      (kind, { (base (gen_spec i)) with Protocol.rq_deadline_ms = Some 1 })
  | J_crash -> (kind, { (base (crash_app i)) with Protocol.rq_strict = true })
  | J_oversized -> (kind, base (oversized_app i))

(* ---------------- one phase ---------------- *)

type phase_result = {
  ph_name : string;
  ph_concurrency : int;
  ph_chaos : float;
  ph_sent : int;
  ph_replies : int;
  ph_outcomes : (string * int) list;
  ph_p50_ms : float;
  ph_p99_ms : float;
  ph_wall_s : float;
  ph_restarts : int;
  ph_retries : int;
  ph_alive : bool;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let classify reply =
  match Json.member "ok" reply with
  | Some (Json.Bool true) -> (
      match Json.member "completeness" reply with
      | Some (Json.String c) ->
          if c = "precise" then "precise"
          else if has_prefix "degraded" c then "degraded"
          else if has_prefix "partial" c then "partial"
          else "ok-other"
      | _ -> "ok-other")
  | Some (Json.Bool false) -> (
      match Json.member "error" reply with
      | Some (Json.String e) -> e
      | _ -> "error-other")
  | _ -> "malformed"

let bump tbl key =
  let n = try Hashtbl.find tbl key with Not_found -> 0 in
  Hashtbl.replace tbl key (n + 1)

let stat_int reply key =
  match Json.member key reply with Some (Json.Int n) -> n | _ -> 0

let query_stats socket =
  try
    let c = Client.connect socket in
    let r = Client.stats c in
    Client.close c;
    (stat_int r "worker_restarts", stat_int r "retries")
  with _ -> (0, 0)

let run_phase ~name ~lanes ~chaos socket =
  let pid = boot_daemon ~socket ~chaos in
  let n = !apps_per_phase in
  let results = Squeue.create ~capacity:(n + lanes) in
  let lane l =
    Thread.create
      (fun () ->
        let c = Client.connect socket in
        let rec go i =
          if i < n then begin
            let kind, rq = job_request i in
            let t0 = Unix.gettimeofday () in
            (* overload rejections are legitimate backpressure: honour
               retry_after_ms and resubmit, like a real client *)
            let rec submit attempts =
              let reply = Client.analyze c rq in
              match (Json.member "error" reply, attempts) with
              | Some (Json.String "overloaded"), a when a < 50 ->
                  (match Json.member "retry_after_ms" reply with
                  | Some (Json.Int ms) ->
                      Thread.delay (float_of_int ms /. 1000.)
                  | _ -> Thread.delay 0.05);
                  submit (attempts + 1)
              | _ -> reply
            in
            let reply = submit 0 in
            Squeue.push_force results
              (kind, reply, (Unix.gettimeofday () -. t0) *. 1000.);
            go (i + lanes)
          end
        in
        (try go l with _ -> ());
        Client.close c)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init lanes lane in
  (* watchdog join: a dropped reply must surface as a count mismatch,
     not hang the bench *)
  let deadline = t0 +. phase_timeout_s in
  while
    Squeue.length results < n && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.05
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let timed_out = Squeue.length results < n in
  if not timed_out then List.iter Thread.join threads;
  Squeue.close results;
  let rec drain acc =
    match Squeue.pop results with Some r -> drain (r :: acc) | None -> acc
  in
  let replies = drain [] in
  let outcomes = Hashtbl.create 16 in
  let latencies =
    List.map
      (fun (_kind, reply, ms) ->
        bump outcomes (classify reply);
        ms)
      replies
  in
  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  (* each phase gets a fresh daemon, so stats counters ARE the phase
     deltas; read them before draining *)
  let restarts, retries = query_stats socket in
  let alive = daemon_alive pid in
  let clean_exit = shutdown_daemon ~socket pid in
  {
    ph_name = name;
    ph_concurrency = lanes;
    ph_chaos = chaos;
    ph_sent = n;
    ph_replies = List.length replies;
    ph_outcomes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcomes []
      |> List.sort compare;
    ph_p50_ms = percentile sorted 0.50;
    ph_p99_ms = percentile sorted 0.99;
    ph_wall_s = wall;
    ph_restarts = restarts;
    ph_retries = retries;
    ph_alive = alive && clean_exit;
  }

(* ---------------- warm measurement ---------------- *)

(* the cold and warm paths must analyse the same apps, or the
   comparison measures corpus skew instead of amortisation *)
let probe_indices () =
  let stride = max 1 (!apps_per_phase / !cold_samples) in
  List.init !cold_samples (fun i -> i * stride)

(* per-app cost of serving N well-formed apps through a warm daemon at
   saturation — the number that amortises the per-process cold cost *)
let measure_warm socket =
  let indices = Array.of_list (probe_indices ()) in
  let pid = boot_daemon ~socket ~chaos:0. in
  let n = !warm_samples in
  let lane l =
    Thread.create
      (fun () ->
        let c = Client.connect socket in
        let i = ref l in
        while !i < n do
          let rq =
            {
              Protocol.rq_id = None;
              (* same profile as run_cold_probe — the two sides of the
                 amortisation comparison must analyse identical apps *)
              rq_app =
                Protocol.App_gen
                  {
                    g_profile = Gen.Malware;
                    g_seed = !seed;
                    g_index = indices.(!i mod Array.length indices);
                  };
              rq_apps = [];
              rq_deadline_ms = None;
              rq_k = None;
              rq_rules = "default";
              rq_strict = false;
              rq_fresh_metrics = false;
              rq_icc = false;
              rq_targeted = [];
            }
          in
          ignore (Client.analyze c rq);
          i := !i + !warm_lanes
        done;
        Client.close c)
      ()
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init !warm_lanes lane in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  ignore (shutdown_daemon ~socket pid);
  wall *. 1000. /. float_of_int n

(* ---------------- report ---------------- *)

let json_of_phase p =
  Json.Obj
    [
      ("name", Json.String p.ph_name);
      ("concurrency", Json.Int p.ph_concurrency);
      ("chaos_rate", Json.Float p.ph_chaos);
      ("sent", Json.Int p.ph_sent);
      ("replies", Json.Int p.ph_replies);
      ("dropped", Json.Int (p.ph_sent - p.ph_replies));
      ( "outcomes",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) p.ph_outcomes) );
      ("p50_ms", Json.Float p.ph_p50_ms);
      ("p99_ms", Json.Float p.ph_p99_ms);
      ("wall_s", Json.Float p.ph_wall_s);
      ( "throughput_rps",
        Json.Float
          (if p.ph_wall_s > 0. then float_of_int p.ph_replies /. p.ph_wall_s
           else 0.) );
      ("worker_restarts", Json.Int p.ph_restarts);
      ("retries", Json.Int p.ph_retries);
      ("daemon_alive", Json.Bool p.ph_alive);
    ]

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_bench [options]";
  if !cold_probe >= 0 then begin
    run_cold_probe !cold_probe;
    exit 0
  end;
  let sock i =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fdbench-%d-%d.sock" (Unix.getpid ()) i)
  in
  Printf.printf "== serve_bench: %d apps/phase, concurrency %s\n%!"
    !apps_per_phase
    (String.concat "," (List.map string_of_int !concurrency));
  let phases = ref [] in
  let idx = ref 0 in
  List.iter
    (fun lanes ->
      List.iter
        (fun chaos ->
          incr idx;
          let name =
            Printf.sprintf "c%d-%s" lanes
              (if chaos > 0. then "chaos" else "plain")
          in
          Printf.printf "-- phase %s\n%!" name;
          let p = run_phase ~name ~lanes ~chaos (sock !idx) in
          Printf.printf
            "   %d/%d replies, p50 %.1fms p99 %.1fms, %d restarts, %d \
             retries, %.1fs\n\
             %!"
            p.ph_replies p.ph_sent p.ph_p50_ms p.ph_p99_ms p.ph_restarts
            p.ph_retries p.ph_wall_s;
          phases := p :: !phases)
        [ 0.; !chaos_rate ])
    !concurrency;
  let phases = List.rev !phases in
  Printf.printf "-- warm path (%d requests, %d lanes)\n%!" !warm_samples
    !warm_lanes;
  let warm_ms = measure_warm (sock 0) in
  Printf.printf "-- cold path (%d per-process runs)\n%!" !cold_samples;
  let cold =
    List.map cold_probe_ms (probe_indices ())
    |> List.filter (fun (t, _) -> Float.is_finite t)
  in
  let mean f =
    match cold with
    | [] -> nan
    | l -> List.fold_left (fun a x -> a +. f x) 0. l /. float_of_int (List.length l)
  in
  let cold_ms = mean fst in
  let cold_analysis_ms = mean snd in
  let speedup = cold_ms /. warm_ms in
  Printf.printf
    "   warm %.2fms vs cold %.2fms/process (%.2fms analysis) -> %.1fx\n%!"
    warm_ms cold_ms cold_analysis_ms speedup;
  (* gates *)
  let dropped_ok =
    List.for_all (fun p -> p.ph_sent = p.ph_replies && p.ph_alive) phases
  in
  let warm_ok = Float.is_finite speedup && speedup >= !warm_factor in
  let ratios =
    List.filter_map
      (fun lanes ->
        let find c =
          List.find_opt
            (fun p -> p.ph_concurrency = lanes && (p.ph_chaos > 0.) = c)
            phases
        in
        match (find false, find true) with
        | Some off, Some on when off.ph_p99_ms > 0. ->
            Some (lanes, on.ph_p99_ms /. off.ph_p99_ms)
        | _ -> None)
      !concurrency
  in
  let chaos_ok =
    ratios <> [] && List.for_all (fun (_, r) -> r <= !p99_ratio_limit) ratios
  in
  let report =
    Json.Obj
      [
        ("bench", Json.String "serve");
        ("apps_per_phase", Json.Int !apps_per_phase);
        ("seed", Json.Int !seed);
        ("phases", Json.List (List.map json_of_phase phases));
        ("warm_ms_mean", Json.Float warm_ms);
        ("cold_ms_mean", Json.Float cold_ms);
        ("cold_analysis_ms_mean", Json.Float cold_analysis_ms);
        ("warm_speedup", Json.Float speedup);
        ( "chaos_p99_ratios",
          Json.Obj
            (List.map
               (fun (l, r) -> (Printf.sprintf "c%d" l, Json.Float r))
               ratios) );
        ( "gates",
          Json.Obj
            [
              ("zero_dropped", Json.Bool dropped_ok);
              ( Printf.sprintf "warm_speedup_ge_%.0f" !warm_factor,
                Json.Bool warm_ok );
              ( Printf.sprintf "chaos_p99_ratio_le_%.0f" !p99_ratio_limit,
                Json.Bool chaos_ok );
            ] );
        ("pass", Json.Bool (dropped_ok && warm_ok && chaos_ok));
      ]
  in
  Fd_obs.Export.write_file !out_path (Json.to_string ~indent:2 report ^ "\n");
  Printf.printf "== serve_bench: report -> %s\n%!" !out_path;
  Printf.printf "   gates: dropped %s, warm %s, chaos-p99 %s\n%!"
    (if dropped_ok then "ok" else "FAIL")
    (if warm_ok then "ok" else "FAIL")
    (if chaos_ok then "ok" else "FAIL");
  if not (dropped_ok && warm_ok && chaos_ok) then exit 1

