#!/bin/sh
# Smoke test for the performance work, in two acts:
#
#   1. determinism: the gate workload (full DroidBench table with all
#      three engines + the full SecuriBench-µ table) must render
#      bit-identical output at --jobs 1 and --jobs "$JOBS" — the
#      app-level parallelism contract.
#   2. speedup: the sequential per-iteration best must beat the
#      recorded pre-optimisation baseline by at least MIN_SPEEDUP.
#
#   sh bench/check_perf.sh [JOBS]           (default JOBS: 2)
#
# Writes BENCH_perf.json at the repo root and exits non-zero on a
# digest mismatch or a missed speedup, so it can gate CI.
set -eu

jobs="${1:-2}"
# wall-clock seconds per iteration of the same workload measured at
# the pre-optimisation tree (structural solver keys, no interning, no
# scene/ICFG caches), best of 5 on the reference machine
baseline_s="0.061"
min_speedup="${MIN_SPEEDUP:-1.5}"
repeat="${REPEAT:-5}"

root="$(cd "$(dirname "$0")/.." && pwd)"
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

cd "$root"
fail=0

echo "== check_perf: building"
dune build --display=quiet bench/perf_bench.exe

echo "== check_perf: sequential run (--jobs 1, --repeat $repeat)"
dune exec --display=quiet bench/perf_bench.exe -- \
  --jobs 1 --repeat "$repeat" --json "$work/seq.json"

echo "== check_perf: parallel run (--jobs $jobs, --repeat 1)"
dune exec --display=quiet bench/perf_bench.exe -- \
  --jobs "$jobs" --repeat 1 --json "$work/par.json"

json_field () {
  # json_field FILE KEY — extract a scalar field from the flat report
  sed -n "s/^ *\"$2\": *\"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1"
}

seq_digest="$(json_field "$work/seq.json" digest)"
par_digest="$(json_field "$work/par.json" digest)"
best_s="$(json_field "$work/seq.json" best_s)"
mean_s="$(json_field "$work/seq.json" mean_s)"
dedup="$(json_field "$work/seq.json" worklist_dedup_hits)"

if [ "$seq_digest" = "$par_digest" ] && [ -n "$seq_digest" ]; then
  echo "ok: --jobs 1 and --jobs $jobs render identical output ($seq_digest)"
else
  echo "FAIL: output digest differs between job counts"
  echo "  --jobs 1:     $seq_digest"
  echo "  --jobs $jobs:     $par_digest"
  fail=1
fi

speedup="$(awk "BEGIN { printf \"%.2f\", $baseline_s / $best_s }")"
ok_speedup="$(awk "BEGIN { print ($baseline_s / $best_s >= $min_speedup) ? 1 : 0 }")"
if [ "$ok_speedup" = 1 ]; then
  echo "ok: best ${best_s}s vs baseline ${baseline_s}s = ${speedup}x (>= ${min_speedup}x)"
else
  echo "FAIL: best ${best_s}s vs baseline ${baseline_s}s = ${speedup}x (< ${min_speedup}x)"
  fail=1
fi

cat > BENCH_perf.json <<EOF
{
 "workload": "droidbench(flowdroid+appscan+fortify) + securibench-u",
 "baseline_s": $baseline_s,
 "best_s": $best_s,
 "mean_s": $mean_s,
 "repeat": $repeat,
 "speedup": $speedup,
 "min_speedup": $min_speedup,
 "jobs_checked": $jobs,
 "digest_jobs1": "$seq_digest",
 "digest_jobsN": "$par_digest",
 "deterministic": $([ "$seq_digest" = "$par_digest" ] && echo true || echo false),
 "worklist_dedup_hits": $dedup
}
EOF
echo "wrote BENCH_perf.json"

[ "$fail" = 0 ] && echo "== check_perf: PASS" || echo "== check_perf: FAIL"
exit "$fail"
